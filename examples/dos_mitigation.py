#!/usr/bin/env python3
"""Use case #1 demo: DoS detection and mitigation (paper Section 8.3.1
/ Figure 15).

Benign paced TCP flows share a bottleneck with a 25 Gbps UDP flood.
The Mantis reaction estimates per-sender rates from (sampled source,
total byte counter) measurements and installs a drop rule for the
flooder within a few hundred microseconds, after which the benign
flows recover.

Run:  python examples/dos_mitigation.py
"""

from repro.apps.dos import build_dos_scenario

WARMUP_US = 3_000.0
ATTACK_US = 2_000.0
RECOVERY_US = 3_000.0
ATTACKER = 0x0AFF0001


def main() -> None:
    app, sim, flows, sink, attacker = build_dos_scenario(
        n_benign=12,
        benign_rate_gbps=0.04,
        attack_rate_gbps=25.0,
        bottleneck_gbps=5.0,
        threshold_gbps=2.0,
        min_duration_us=100.0,
    )
    app.prologue()
    print(f"{len(flows)} benign TCP flows -> 5 Gbps bottleneck; "
          f"attacker at 25 Gbps; block threshold 2 Gbps")

    for flow in flows:
        flow.start(at_us=10.0)
    sim.run_until(WARMUP_US)
    before = sum(f.acked for f in flows)
    print(f"\n[t={sim.clock.now:8.1f}us] warmed up: {before} benign acks")

    attack_start = sim.clock.now
    attacker.start()
    print(f"[t={attack_start:8.1f}us] ATTACK: UDP flood begins")
    sim.run_until(attack_start + ATTACK_US)

    block_time = app.block_times.get(ATTACKER)
    if block_time is None:
        print("attacker was NOT blocked (unexpected)")
        return
    print(f"[t={block_time:8.1f}us] MITIGATED: drop rule installed "
          f"({block_time - attack_start:.1f}us after the first "
          "malicious packet)")
    during = sum(f.acked for f in flows) - before

    sim.run_until(sim.clock.now + RECOVERY_US)
    after = sum(f.acked for f in flows) - before - during

    print("\nBenign goodput (acks per 1000us):")
    print(f"  before attack : {before / WARMUP_US * 1000:6.1f}")
    print(f"  attack window : {during / ATTACK_US * 1000:6.1f}")
    print(f"  after block   : {after / RECOVERY_US * 1000:6.1f}")

    print("\nPer-sender estimates held by the reaction:")
    shown = 0
    for src, stats in sorted(app.senders.items()):
        flag = "BLOCKED" if stats.blocked else "ok"
        print(f"  src={src:#010x} bytes~{stats.bytes_attributed:>9} {flag}")
        shown += 1
        if shown >= 6:
            remaining = len(app.senders) - shown
            if remaining > 0:
                print(f"  ... and {remaining} more")
            break
    print(f"\nDialogue iterations: {app.system.agent.iterations}, "
          f"avg {app.system.agent.avg_reaction_time_us:.1f} us")


if __name__ == "__main__":
    main()
