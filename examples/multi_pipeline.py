#!/usr/bin/env python3
"""Multi-pipeline demo: per-pipeline Mantis agents (paper Sections 4
and 6) and the future-work synchronized-commit extension.

A 3-pipeline switch runs one program; each pipeline has its own
register state and its own agent instance.  Reactions adapt each
pipeline independently; the synchronized-commit extension then shrinks
the cross-pipeline inconsistency window.

Run:  python examples/multi_pipeline.py
"""

from repro.multipipe import MultiPipelineSwitch
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; out : 32; } }
header h_t hdr;
register load { width : 32; instance_count : 4; }
malleable value threshold { width : 32; init : 100; }
action observe() {
    register_write(load, 0, hdr.f);
    modify_field(hdr.out, ${threshold});
}
table t { actions { observe; } default_action : observe(); }
control ingress { apply(t); }

reaction adapt(reg load[0:3]) {
    // Track the observed load and set the threshold to double it.
    ${threshold} = load[0] * 2;
}
"""


def main() -> None:
    switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=3)
    switch.prologue()
    print(f"{len(switch)} pipelines, one compiled program, one clock\n")

    # Different traffic load per pipeline.
    loads = [10, 55, 200]
    for pipeline, value in zip(switch.pipelines, loads):
        pipeline.asic.process(Packet({"hdr.f": value}))

    switch.run_round()
    print("After one round-robin dialogue round:")
    for pipeline in switch.pipelines:
        threshold = pipeline.agent.read_malleable("threshold")
        print(f"  pipeline {pipeline.index}: observed load "
              f"{loads[pipeline.index]:3d} -> threshold {threshold}")

    # Unsynchronized commits spread across the round; the extension
    # packs them back to back.
    start = switch.clock.now
    switch.run_round()
    round_us = switch.clock.now - start
    skew = switch.run_round_synchronized()
    print(f"\nCommit skew across pipelines:")
    print(f"  plain round-robin : up to {round_us:.1f} us")
    print(f"  synchronized      : {skew:.1f} us "
          "(the paper's future-work direction)")


if __name__ == "__main__":
    main()
