#!/usr/bin/env python3
"""Use case #2 demo: gray-failure detection and route recomputation
(paper Section 8.3.2 / Figure 16).

Four neighbors send 1 us heartbeats; the switch counts them per port
in the data plane.  The reaction compares each port's marginal count
against delta = floor(eta * T_d / T_s) and, after two consecutive
violations, recomputes routes (networkx shortest paths) and installs
them through the malleable routing table.

Two failures are injected: a hard failure (heartbeats stop) and a gray
failure (the link stays up but drops 90% of heartbeats).

Run:  python examples/gray_failure_reroute.py
"""

from repro.apps.failover import build_failover_scenario
from repro.switch.packet import Packet


def show_route(app, dst, label):
    packet = Packet({"ipv4.dstAddr": dst, "ipv4.proto": 6})
    result = app.system.asic.process(packet)
    route = f"port {result[0]}" if result else "DROPPED"
    print(f"  {label}: dst {dst:#010x} -> {route}")


def main() -> None:
    app, sim, generators = build_failover_scenario(
        n_neighbors=4, heartbeat_period_us=1.0, eta=0.5
    )
    app.prologue()
    for generator in generators.values():
        generator.start(at_us=0.0)

    print("Ring of 4 neighbors, heartbeats every 1us, eta=0.5\n")
    sim.run_until(500.0)
    print(f"[t={sim.clock.now:7.1f}us] healthy:")
    for index in range(4):
        show_route(app, 0x0A000100 + index, f"n{index}")

    # --- hard failure: neighbor 2 goes silent -------------------------
    hard_fail = sim.clock.now
    generators[2].stop()
    print(f"\n[t={hard_fail:7.1f}us] HARD FAILURE on port 2 "
          "(heartbeats stop)")
    sim.run_until(hard_fail + 1_000.0)
    detect = app.detected_ports.get(2)
    reroute = app.reroute_times.get(2)
    print(f"  detected at t={detect:.1f}us "
          f"({detect - hard_fail:.1f}us after failure)")
    print(f"  rerouted at t={reroute:.1f}us "
          f"({reroute - hard_fail:.1f}us end-to-end, paper: 100-200us)")
    show_route(app, 0x0A000102, "n2 (via detour)")

    # --- gray failure: neighbor 1 drops 90% of heartbeats --------------
    gray_fail = sim.clock.now
    generators[1].set_gray_loss(0.9)
    print(f"\n[t={gray_fail:7.1f}us] GRAY FAILURE on port 1 "
          "(90% heartbeat loss, link nominally up)")
    sim.run_until(gray_fail + 2_000.0)
    if 1 in app.detected_ports:
        delay = app.detected_ports[1] - gray_fail
        print(f"  detected {delay:.1f}us after onset "
              "(a control-plane detector at 10s of ms would miss this "
              "for ~100x longer)")
        show_route(app, 0x0A000101, "n1 (via detour)")
    else:
        print("  not detected (unexpected)")

    print(f"\nRecomputations: {app.recomputations}; dialogue iterations: "
          f"{app.system.agent.iterations}")


if __name__ == "__main__":
    main()
