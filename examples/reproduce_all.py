#!/usr/bin/env python3
"""Run every paper benchmark and assemble a single results report.

Executes ``pytest benchmarks/ --benchmark-only`` (each benchmark
regenerates one of the paper's tables/figures and writes its rendered
rows to ``benchmarks/results/``), then concatenates the rendered
outputs into ``benchmarks/results/REPORT.txt``.

Run:  python examples/reproduce_all.py
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

# Presentation order: paper figures/tables first, then extras.
ORDER = [
    "figure_10a", "figure_10b", "figure_11", "figure_12",
    "figure_13a", "figure_13b", "figure_14", "figure_15",
    "figure_16a", "figure_16b", "table_1",
    "motivation", "background", "use_case", "ablation",
]


def sort_key(filename: str):
    for rank, prefix in enumerate(ORDER):
        if filename.startswith(prefix):
            return (rank, filename)
    return (len(ORDER), filename)


def main() -> int:
    print("Running the benchmark suite (this regenerates every paper "
          "table and figure)...\n")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
         "-q", "--benchmark-disable-gc"],
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        print("benchmark suite failed", file=sys.stderr)
        return proc.returncode

    chunks = []
    for filename in sorted(os.listdir(RESULTS_DIR), key=sort_key):
        if not filename.endswith(".txt") or filename == "REPORT.txt":
            continue
        with open(os.path.join(RESULTS_DIR, filename)) as handle:
            chunks.append(handle.read().rstrip())
    report = (
        "MANTIS REPRODUCTION - ALL EXPERIMENT RESULTS\n"
        "(paper: Yu, Sonchack, Liu - SIGCOMM 2020; see EXPERIMENTS.md "
        "for paper-vs-measured commentary)\n\n"
        + "\n\n".join(chunks)
        + "\n"
    )
    report_path = os.path.join(RESULTS_DIR, "REPORT.txt")
    with open(report_path, "w") as handle:
        handle.write(report)
    print(f"\n{len(chunks)} experiment tables collected into {report_path}")
    print("\n" + report[:1200] + "\n...")
    return 0


if __name__ == "__main__":
    sys.exit(main())
