#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 program, end to end.

Compiles a P4R program with a malleable value, a malleable field, and
a malleable table; loads it into the emulated RMT switch; starts the
Mantis agent; and shows a reaction reconfiguring the data plane based
on polled register state -- all with serializable isolation.

Run:  python examples/quickstart.py
"""

from repro.p4.printer import print_program
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

FIGURE1_P4R = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header hdr_t hdr;

register qdepths { width : 32; instance_count : 16; }

// A runtime-tunable constant ...
malleable value value_var { width : 16; init : 1; }

// ... a runtime-shiftable field reference ...
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}

// ... and a table with fast serializable updates.
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; mark; }
    default_action : mark();
}

action my_action() {
    add(hdr.qux, hdr.baz, ${value_var});
}
action mark() { modify_field(hdr.qux, 0xdead); }

action track() {
    register_write(qdepths, standard_metadata.ingress_port, hdr.baz);
}
table tracker { actions { track; } default_action : track(); }

control ingress {
    apply(table_var);
    apply(tracker);
}

// The Figure 1 reaction: find the deepest queue, point value_var at it.
reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
"""


def main() -> None:
    # 1. Compile: P4R -> (malleable P4, control-plane spec).
    system = MantisSystem.from_source(FIGURE1_P4R)
    spec = system.spec
    print("=== Compiled artifacts ===")
    print(f"init tables : {[t.table for t in spec.init_tables]}")
    print(f"malleables  : values={list(spec.values)} "
          f"fields={list(spec.fields)} "
          f"tables={[n for n, t in spec.tables.items() if t.malleable]}")
    print(f"mirrors     : {list(spec.mirrors)}")
    print()
    print("First lines of the generated P4:")
    for line in print_program(system.artifacts.p4).splitlines()[:12]:
        print("   ", line)
    print("    ...")

    # 2. Prologue: memoization + initial entries.  The table entry is
    # *prepared* now and becomes visible at the next vv commit.
    system.agent.prologue()
    handle = system.agent.table("table_var")
    handle.add([7], "my_action")

    # Not committed yet: the packet still hits the default action.
    packet = Packet({"hdr.foo": 7, "hdr.baz": 100})
    system.asic.process(packet)
    print("\n=== Before the commit (three-phase: prepare only) ===")
    print(f"hdr.qux = {hex(packet.get('hdr.qux'))}   (default action mark())")

    # 3. Simulate queue buildup on port 6, visible via the register.
    deep = Packet({"hdr.foo": 0, "hdr.baz": 42}, ingress_port=6)
    system.asic.process(deep)

    # 4. One dialogue iteration: poll -> react -> commit (serializable).
    # The reaction sees qdepths[6] = 42 and points value_var at port 6;
    # the same commit also flips in the prepared table entry.
    duration = system.agent.run_iteration()
    print("\n=== One dialogue iteration ===")
    print(f"busy time        : {duration:.2f} us of simulated time")
    print(f"value_var is now : {system.agent.read_malleable('value_var')}"
          "   (the port with the deepest queue)")

    packet = Packet({"hdr.foo": 7, "hdr.baz": 100})
    system.asic.process(packet)
    print(f"hdr.qux = {packet.get('hdr.qux')}   (baz + new value_var = 100 + 6)")

    # 5. Shift the malleable field: match on hdr.bar instead.
    system.agent.shift_field("field_var", "hdr.bar")
    system.agent.run_iteration()
    moved = Packet({"hdr.foo": 0, "hdr.bar": 7, "hdr.baz": 1})
    system.asic.process(moved)
    print("\n=== After shifting ${field_var} to hdr.bar ===")
    print(f"packet with bar=7 -> hdr.qux = {moved.get('hdr.qux')} "
          "(baz + value_var = 1 + 6)")

    print(f"\nAverage dialogue iteration: "
          f"{system.agent.avg_reaction_time_us:.2f} us "
          f"(the paper's '10s of microseconds')")


if __name__ == "__main__":
    main()
