#!/usr/bin/env python3
"""Use case #3 demo: hash-polarization mitigation (paper Section
8.3.3).

The ECMP hash inputs are malleable fields.  The demo workload is
adversarially polarized: every flow shares the destination address,
which is the initial hash input, so all traffic lands on one path.
The reaction watches per-egress counters, computes the (mean absolute)
deviation of port loads, and -- when the imbalance persists -- shifts
the hash inputs to the next configuration until balance is restored.

Run:  python examples/ecmp_rebalancing.py
"""

from repro.apps.ecmp import build_polarized_scenario


def loads(sinks):
    return [sink.rx_packets for sink in sinks]


def main() -> None:
    app, sim, senders, sinks = build_polarized_scenario(n_flows=24)
    app.prologue()
    for sender in senders:
        sender.start(at_us=0.0)

    print("24 flows, 4 ECMP paths; initial hash inputs: "
          "(ipv4.dstAddr, ipv4.proto) -- constant across flows!\n")

    checkpoints = [500.0, 1_000.0, 2_000.0, 4_000.0]
    previous = [0, 0, 0, 0]
    for checkpoint in checkpoints:
        sim.run_until(checkpoint)
        current = loads(sinks)
        window = [c - p for c, p in zip(current, previous)]
        previous = current
        config = app.configs[app.config_index]
        spec = app.system.spec
        inputs = (
            spec.fields["hash_in1"].alts[config[0]],
            spec.fields["hash_in2"].alts[config[1]],
        )
        print(f"t={checkpoint:7.1f}us  per-path pkts {window}  "
              f"imbalance={app.recent_imbalance():.2f}  "
              f"hash inputs={inputs}")

    print(f"\nShifts performed: {len(app.shift_times)} "
          f"(first at t={app.shift_times[0]:.1f}us)" if app.shift_times
          else "\nNo shifts performed")
    final = app.recent_imbalance()
    print(f"Final imbalance (MAD/mean): {final:.2f} "
          f"({'balanced' if final < 0.5 else 'still imbalanced'})")
    print("\nWhy Mantis: the MAD needs a median -- trivial on the CPU, "
          "but a streaming-median workaround in the pipeline; and the "
          "egress counters feed an ingress decision, which would need "
          "recirculation in a pure data plane design.")


if __name__ == "__main__":
    main()
