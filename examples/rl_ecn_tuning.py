#!/usr/bin/env python3
"""Use case #4 demo: reinforcement learning in the reaction loop
(paper Section 8.3.4).

The DCTCP ECN marking threshold is a malleable value.  Every dialogue
iteration the agent observes (queue depth, packet counter), computes
a reward (utilization minus a queue-length penalty), performs an
off-policy Q-learning update, and writes the epsilon-greedy threshold
choice back to the data plane.

Run:  python examples/rl_ecn_tuning.py
"""

from collections import Counter

from repro.apps.rl import THRESHOLD_ACTIONS, build_rl_scenario


def main() -> None:
    app, sim, flows, sink = build_rl_scenario(
        n_flows=6, bottleneck_gbps=1.5, queue_pkts=96
    )
    app.prologue()
    for flow in flows:
        flow.start(at_us=5.0)

    print("6 DCTCP flows -> 1.5 Gbps bottleneck; RL tunes the ECN "
          "threshold\n")
    print(f"candidate thresholds: {THRESHOLD_ACTIONS} (pkts of queue)")

    horizon_us = 10_000.0
    step = 2_000.0
    t = 0.0
    while t < horizon_us:
        t += step
        sim.run_until(t)
        recent = app.rewards[-200:]
        avg_reward = sum(recent) / len(recent) if recent else 0.0
        picks = Counter(
            THRESHOLD_ACTIONS[a] for a in app.action_history[-200:]
        )
        common = picks.most_common(2)
        print(f"t={t:8.0f}us  reward(avg/200)={avg_reward:7.3f}  "
              f"qdepth={sim.queue_depth(0):3d}  "
              f"top thresholds={common}")

    print(f"\nIterations: {app.system.agent.iterations}; "
          f"explorations: {app.explorations} "
          f"({app.explorations / max(1, len(app.action_history)):.0%})")
    print(f"Learned greedy threshold (empty queue state): "
          f"{app.greedy_threshold(0)} pkts")
    acked = sum(f.acked for f in flows)
    marked = any(f.dctcp_alpha > 0 for f in flows)
    print(f"TCP progress: {acked} acks; ECN feedback active: {marked}")
    print("\nWhy Mantis: the feedback loop needs state, multiplication, "
          "argmax, and randomness -- none of which fit a switch ALU; "
          "the reaction abstraction gives the loop a CPU and can host "
          "arbitrary models (the paper notes even neural networks).")


if __name__ == "__main__":
    main()
