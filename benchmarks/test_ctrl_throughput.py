"""Control-plane service sustained throughput (the ``bench-ctrl``
gates, at CI-friendly scale).

The speedup ratios are pure simulated-time ratios of the identical
update stream, so they are deterministic and independent of the op
count -- a small stream here must show exactly the gates the full
1M-entry ``BENCH_ctrl.json`` artifact is held to: pipelined >= 2x
sync, bulk >= 5x sync.  The contended scenario and the fleet
route-install ride along at reduced scale.
"""

import pytest

from benchmarks.conftest import report, report_json
from repro.ctrl.bench import (
    BULK_GATE,
    PIPELINED_GATE,
    measure_bulk_updates,
    measure_contended,
    measure_pipelined_updates,
    measure_route_install,
    measure_sync_updates,
)

ENTRIES = 30_000
WINDOW = 4_096


def run_modes():
    sync = measure_sync_updates(ENTRIES, WINDOW)
    pipelined = measure_pipelined_updates(ENTRIES, WINDOW)
    bulk = measure_bulk_updates(ENTRIES, WINDOW)
    return sync, pipelined, bulk


def test_ctrl_throughput_gates(bench_once, bench_json_path):
    sync, pipelined, bulk = bench_once(run_modes)
    pipelined_speedup = sync["sim_us"] / pipelined["sim_us"]
    bulk_speedup = sync["sim_us"] / bulk["sim_us"]

    report(
        "Control-plane sustained update throughput (sync-pipelined-bulk)",
        ["mode", "sim us/op", "sim updates/s", "speedup", "gate"],
        [
            ("sync", f"{sync['us_per_op']:.3f}",
             f"{sync['sim_updates_per_sec']:,.0f}", "1.00x", "-"),
            ("pipelined", f"{pipelined['us_per_op']:.3f}",
             f"{pipelined['sim_updates_per_sec']:,.0f}",
             f"{pipelined_speedup:.2f}x", f">={PIPELINED_GATE:.0f}x"),
            ("bulk", f"{bulk['us_per_op']:.3f}",
             f"{bulk['sim_updates_per_sec']:,.0f}",
             f"{bulk_speedup:.2f}x", f">={BULK_GATE:.0f}x"),
        ],
    )
    report_json(
        {
            "entries": ENTRIES,
            "modes": {"sync": sync, "pipelined": pipelined, "bulk": bulk},
            "pipelined_speedup": pipelined_speedup,
            "bulk_speedup": bulk_speedup,
        },
        bench_json_path,
        name="ctrl_throughput",
    )

    # The CI gates, at any op count.
    assert pipelined_speedup >= PIPELINED_GATE
    assert bulk_speedup >= BULK_GATE
    # Pipelined throughput is device-bound: us/op collapses to the
    # memoized table-modify device cost.
    assert pipelined["us_per_op"] == pytest.approx(0.5, rel=0.01)
    # The window kept the device saturated.
    assert pipelined["channel_utilization"] > 0.95
    # The bounded timeline ring held across the million^-scale stream.
    assert sync["timeline_records"] <= 8_192
    assert sync["timeline_total"] > sync["timeline_records"]


def test_ctrl_contended_latency_is_sane(bench_once):
    contended = bench_once(
        measure_contended, duration_us=8_000.0, loader_ops=10_000
    )
    assert contended["agent_iterations"] > 100
    assert contended["legacy_updates"] > 500
    assert contended["loader_ops_completed"] == 10_000
    # Legacy keeps its Fig. 12-scale latency despite a saturating
    # bulk loader underneath: arbitration holds the p99 within the
    # in-flight window's worth of bulk chunks, not unbounded queueing.
    assert contended["legacy_p50_us"] < 5.0
    assert contended["legacy_p99_us"] < 60.0
    # Backpressure engaged on the loader session (bounded queue).
    assert contended["loader_parked"] > 0
    # The offline Fig. 12 model stays in the same regime at p50.
    assert contended["offline_p50_us"] == pytest.approx(
        contended["legacy_p50_us"], abs=1.0
    )


def test_fleet_route_install_is_fast(bench_once):
    install = bench_once(measure_route_install, k=4)
    assert install["bulk"]["bulk_txns"] == install["bulk"]["switches"]
    assert install["bulk"]["driver_ops"] == \
        install["per_entry"]["driver_ops"]
    assert install["sub_second"]
    # Coalescing wins an order of magnitude of simulated install time.
    assert install["sim_speedup"] >= 5.0
