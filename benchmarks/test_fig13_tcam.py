"""Figure 13: TCAM usage of malleable-field transformations.

The paper's microbenchmark: a K-bit malleable field ${X} with A
alternatives, used by

- ``tblWriteX``: matches the 5-tuple (ternary) and *writes* ${X} in an
  action (the Figure 5 transform) -- TCAM grows linearly in A,
  constant in K;
- ``tblReadX``: matches the 5-tuple plus ${X} and *reads* ${X} in an
  action (the Figure 6 transform) -- TCAM grows asymptotically
  quadratically in A (A entries x A extra K-bit ternary columns) and
  proportionally to K.

Occupancies are user-level entry counts (512/1024), not concrete
entries, exactly as the paper counts them.
"""

import pytest

from benchmarks.conftest import report
from repro.analysis.resources import tcam_bytes_for_table
from repro.compiler import compile_p4r
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.driver import Driver
from repro.agent.handles import MalleableTableHandle

ALTS_SWEEP = [1, 2, 4, 6, 8]
WIDTH_SWEEP = [8, 16, 32, 48, 64]


def build_program(kind: str, width: int, n_alts: int) -> str:
    """One of the paper's two microbenchmark tables."""
    alt_fields = "\n".join(
        f"        alt{i} : {width};" for i in range(n_alts)
    )
    alts = ", ".join(f"alts.alt{i}" for i in range(n_alts))
    if kind == "write":
        table = """
action store(v) { modify_field(${X}, v); }
action nop() { no_op(); }
table tblWriteX {
    reads {
        five.src : ternary;
        five.dst : ternary;
        five.sport : ternary;
        five.dport : ternary;
        five.proto : ternary;
    }
    actions { store; nop; }
    default_action : nop();
    size : 32768;
}
control ingress { apply(tblWriteX); }
"""
    else:
        table = """
action consume() { modify_field(five.scratch, ${X}); }
action nop() { no_op(); }
table tblReadX {
    reads {
        five.src : ternary;
        five.dst : ternary;
        five.sport : ternary;
        five.dport : ternary;
        five.proto : ternary;
        ${X} : ternary;
    }
    actions { consume; nop; }
    default_action : nop();
    size : 65536;
}
control ingress { apply(tblReadX); }
"""
    return STANDARD_METADATA_P4 + f"""
header_type five_t {{
    fields {{
        src : 32; dst : 32; sport : 16; dport : 16; proto : 8;
        scratch : {width};
    }}
}}
header five_t five;
header_type alts_t {{
    fields {{
{alt_fields}
    }}
}}
header alts_t alts;

malleable field X {{
    width : {width}; init : alts.alt0;
    alts {{ {alts} }}
}}
{table}
"""


def measure_tcam(kind: str, width: int, n_alts: int, occupancy: int) -> int:
    """Install ``occupancy`` user entries and count installed TCAM."""
    artifacts = compile_p4r(build_program(kind, width, n_alts))
    asic = SwitchAsic(artifacts.p4)
    driver = Driver(asic)
    table_name = "tblWriteX" if kind == "write" else "tblReadX"
    transform = artifacts.spec.tables[table_name]
    alt_counts = {"X": n_alts}
    handle = MalleableTableHandle(
        driver, transform, active_version=lambda: 0,
        field_alt_counts=alt_counts,
    )
    wildcard = (0, 0)
    for index in range(occupancy):
        if kind == "write":
            key = [(index, 0xFFFFFFFF), wildcard, wildcard, wildcard, wildcard]
            handle.add(key, "store", [1])
        else:
            key = [
                (index, 0xFFFFFFFF), wildcard, wildcard, wildcard, wildcard,
                (0, (1 << width) - 1),
            ]
            handle.add(key, "consume", [])
    return tcam_bytes_for_table(artifacts.p4, asic, table_name)


def run_alts_sweep():
    rows = []
    for n_alts in ALTS_SWEEP:
        write_512 = measure_tcam("write", 32, n_alts, 512)
        read_512 = measure_tcam("read", 32, n_alts, 512)
        write_1024 = measure_tcam("write", 32, n_alts, 1024)
        read_1024 = measure_tcam("read", 32, n_alts, 1024)
        rows.append((n_alts, write_512, read_512, write_1024, read_1024))
    return rows


def run_width_sweep():
    rows = []
    for width in WIDTH_SWEEP:
        rows.append(
            (
                width,
                measure_tcam("write", width, 4, 512),
                measure_tcam("read", width, 4, 512),
            )
        )
    return rows


def test_fig13a_tcam_vs_alternatives(bench_once):
    rows = bench_once(run_alts_sweep)
    report(
        "Figure 13a: TCAM usage vs number of alternatives (K=32)",
        ["A", "tblWriteX@512 (B)", "tblReadX@512 (B)",
         "tblWriteX@1024 (B)", "tblReadX@1024 (B)"],
        rows,
    )
    by_alts = {r[0]: r for r in rows}

    # tblWriteX: linear in A (A action-specialized entries per user
    # entry, fixed key width).
    w1, w8 = by_alts[1][1], by_alts[8][1]
    assert w8 == pytest.approx(8 * w1, rel=0.15)

    # tblReadX: asymptotically quadratic in A (A entries x A extra
    # ternary columns).  Doubling A should much-more-than-double the
    # TCAM, and the doubling ratio should itself keep growing toward 4.
    r2, r4, r8 = by_alts[2][2], by_alts[4][2], by_alts[8][2]
    assert r8 / r4 > 2.5  # super-linear at the tail
    assert r8 / r4 > r4 / r2  # accelerating (quadratic signature)
    # ... while tblWriteX's doubling ratio stays ~2 (linear).
    w2, w4, w8 = by_alts[2][1], by_alts[4][1], by_alts[8][1]
    assert w8 / w4 == pytest.approx(2.0, rel=0.05)

    # Occupancy scales everything proportionally.
    assert by_alts[4][3] == pytest.approx(2 * by_alts[4][1], rel=0.01)
    assert by_alts[4][4] == pytest.approx(2 * by_alts[4][2], rel=0.01)


def test_fig13b_tcam_vs_field_width(bench_once):
    rows = bench_once(run_width_sweep)
    report(
        "Figure 13b: TCAM usage vs field width K (A=4, 512 entries)",
        ["K bits", "tblWriteX (B)", "tblReadX (B)"],
        rows,
    )
    by_width = {r[0]: r for r in rows}
    # tblWriteX constant in K (the key never contains X).
    assert by_width[64][1] == by_width[8][1]
    # tblReadX grows ~proportionally with K (A ternary columns of K).
    r8, r64 = by_width[8][2], by_width[64][2]
    assert r64 > 2 * r8
    # Slope check: the K-dependent part is A columns of K bits per
    # concrete entry (x2 for value+mask), on top of the fixed 5-tuple.
    per_bit = (r64 - r8) / (64 - 8)
    expected_per_bit = 512 * 4 * 4 * 2 / 8  # entries*A(alts)*A(cols)*2 /8
    assert per_bit == pytest.approx(expected_per_bit, rel=0.1)
