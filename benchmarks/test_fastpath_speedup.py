"""Fast-path microbenchmark: compiled pipeline vs reference interpreter.

Pumps the Figure 15 DoS data-plane workload (blocklist, accounting
with register read-modify-write, exact routing -- as compiled from
P4R by the Mantis compiler) through ``SwitchAsic.process`` under both
execution modes and asserts the compiled engine is at least 3x the
interpreter's packet rate.  Both numbers land in a JSON artifact so
the speedup is tracked across PRs.
"""

from __future__ import annotations

from benchmarks.conftest import report, report_json
from repro.fastbench import run_fastpath_benchmark

N_PACKETS = 12_000
MIN_SPEEDUP = 3.0


def test_fastpath_speedup(bench_once, bench_json_path):
    result = bench_once(run_fastpath_benchmark, n_packets=N_PACKETS)

    report(
        "Fast path speedup (Figure 15 DoS workload)",
        ["engine", "pkt/s", "elapsed (s)"],
        [
            ["interpreter", f"{result['interpreter_pps']:,.0f}",
             f"{result['interpreter_elapsed_sec']:.4f}"],
            ["compiled", f"{result['compiled_pps']:,.0f}",
             f"{result['compiled_elapsed_sec']:.4f}"],
            ["speedup", f"{result['speedup']:.2f}x", ""],
        ],
    )
    report_json(result, bench_json_path, name="fastpath_speedup")

    assert result["compiled_pps"] > result["interpreter_pps"]
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"compiled path only {result['speedup']:.2f}x over interpreter "
        f"(target {MIN_SPEEDUP}x): {result}"
    )
