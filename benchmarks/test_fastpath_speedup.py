"""Fast-path microbenchmark: interpreter vs compiled vs batch vs
columnar.

Pumps the Figure 15 DoS data-plane workload (blocklist, accounting
with register read-modify-write, exact routing -- as compiled from
P4R by the Mantis compiler) through ``SwitchAsic.process`` under both
execution modes, then through the burst-mode ``process_batch`` path
(pooled packets, op-major sweeps, fused actions), then through the
columnar struct-of-arrays sweep (``process_batch_columnar`` over a
``ColumnarPool``, best of the batch-size sweep), and asserts the
compiled engine is at least 3x the interpreter's packet rate, the
batch path at least 2x the compiled per-packet rate, and the columnar
path at least 5x the batch rate.  The ECMP rotating-hash workload
(vectorized crc16 + dynamic-index egress counter) must also hit 5x
over batch with no ``drain:`` fallbacks.  All numbers land in a JSON
artifact so the speedups are tracked across PRs.
"""

from __future__ import annotations

from benchmarks.conftest import report, report_json
from repro.fastbench import run_fastpath_benchmark

N_PACKETS = 12_000
MIN_SPEEDUP = 3.0
MIN_BATCH_SPEEDUP = 2.0
MIN_COLUMNAR_SPEEDUP = 5.0
MIN_ECMP_COLUMNAR_SPEEDUP = 5.0


def test_fastpath_speedup(bench_once, bench_json_path):
    result = bench_once(run_fastpath_benchmark, n_packets=N_PACKETS)

    columnar_rows = [
        [f"columnar (x{size})", f"{pps:,.0f}", ""]
        for size, pps in result["columnar_pps_by_batch"].items()
    ]
    report(
        "Fast path speedup (Figure 15 DoS workload)",
        ["engine", "pkt/s", "elapsed (s)"],
        [
            ["interpreter", f"{result['interpreter_pps']:,.0f}",
             f"{result['interpreter_elapsed_sec']:.4f}"],
            ["compiled", f"{result['compiled_pps']:,.0f}",
             f"{result['compiled_elapsed_sec']:.4f}"],
            [f"batch (x{result['batch_size']})",
             f"{result['batch_pps']:,.0f}",
             f"{result['batch_elapsed_sec']:.4f}"],
        ] + columnar_rows + [
            ["ecmp batch", f"{result['ecmp_batch_pps']:,.0f}", ""],
            ["ecmp columnar", f"{result['ecmp_columnar_pps']:,.0f}", ""],
            ["speedup", f"{result['speedup']:.2f}x", ""],
            ["batch speedup", f"{result['batch_speedup_vs_compiled']:.2f}x",
             ""],
            ["columnar speedup",
             f"{result['columnar_speedup_vs_batch']:.2f}x", ""],
        ],
    )
    report_json(result, bench_json_path, name="fastpath_speedup")

    assert result["compiled_pps"] > result["interpreter_pps"]
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"compiled path only {result['speedup']:.2f}x over interpreter "
        f"(target {MIN_SPEEDUP}x): {result}"
    )
    assert result["batch_pps"] > result["compiled_pps"]
    assert result["batch_speedup_vs_compiled"] >= MIN_BATCH_SPEEDUP, (
        f"batch path only {result['batch_speedup_vs_compiled']:.2f}x over "
        f"compiled per-packet (target {MIN_BATCH_SPEEDUP}x): {result}"
    )
    # The DoS ingress is fully op-major-admissible, so no lane may fall
    # back: a nonempty fallback map means the lowering regressed.
    assert not result["columnar_fallbacks"], result["columnar_fallbacks"]
    assert result["columnar_speedup_vs_batch"] >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar path only {result['columnar_speedup_vs_batch']:.2f}x "
        f"over batch (target {MIN_COLUMNAR_SPEEDUP}x): {result}"
    )
    # ECMP's crc16-over-malleable-inputs action and the dynamic-index
    # egress counter must lower into the vectorized sweeps: any
    # ``drain:`` reason means the hash/'g'-kind lowering regressed to
    # per-lane scalar drains.
    ecmp_fallbacks = result["fallbacks_by_workload"]["ecmp-rotating-hash"]
    hash_drains = {
        reason: count
        for reason, count in ecmp_fallbacks.items()
        if reason.startswith("drain:")
    }
    assert not hash_drains, ecmp_fallbacks
    assert result["ecmp_columnar_speedup_vs_batch"] >= (
        MIN_ECMP_COLUMNAR_SPEEDUP
    ), (
        f"ecmp columnar only {result['ecmp_columnar_speedup_vs_batch']:.2f}x "
        f"over batch (target {MIN_ECMP_COLUMNAR_SPEEDUP}x): {result}"
    )
