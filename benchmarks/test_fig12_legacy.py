"""Figure 12: latency of concurrent legacy table updates, with and
without Mantis.

A parallel legacy control plane submits a continuous stream of table
entry updates while the Mantis dialogue loop runs.  The paper reports:
the distribution becomes bimodal (updates that queue behind a Mantis
operation wait for it), but the median and p99 stay within 4.64% and
6.45% of the no-Mantis baseline.
"""

import pytest

from benchmarks.conftest import report
from repro.agent.legacy import LegacyClient, LegacyStats
from repro.analysis.stats import percentile
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; } }
header hdr_t hdr;
register probe { width : 32; instance_count : 8; }
malleable value knob { width : 32; init : 0; }
action stamp() { modify_field(hdr.a, ${knob}); }
table t { actions { stamp; } default_action : stamp(); }
action set_a(v) { modify_field(hdr.a, v); }
action nop() { no_op(); }
table legacy_table {
    reads { hdr.a : exact; }
    actions { set_a; nop; }
    default_action : nop();
    size : 128;
}
control ingress { apply(t); apply(legacy_table); }

reaction tick(reg probe[0:7]) {
    ${knob} = ${knob} + 1;
}
"""

WINDOW_US = 30_000.0
LEGACY_INTERVAL_US = 11.0


def run_experiment():
    system = MantisSystem.from_source(PROGRAM, record_timeline=True)
    system.agent.prologue()
    start = system.clock.now
    system.agent.run_until(start + WINDOW_US)
    client = LegacyClient(system.driver, interval_us=LEGACY_INTERVAL_US)
    with_mantis = client.latencies_with_mantis(start, start + WINDOW_US)
    without = client.latencies_without_mantis(start, start + WINDOW_US)
    return with_mantis, without, system.agent.iterations


def test_fig12_legacy_interference(bench_once):
    with_mantis, without, iterations = bench_once(run_experiment)
    stats_with = LegacyStats.from_latencies(with_mantis)
    stats_without = LegacyStats.from_latencies(without)

    median_delta = (
        (stats_with.median_us - stats_without.median_us)
        / stats_without.median_us
    )
    p99_delta = (
        (stats_with.p99_us - stats_without.p99_us) / stats_without.p99_us
    )

    report(
        "Figure 12: legacy table update latency with-without Mantis",
        ["metric", "no Mantis (us)", "with Mantis (us)", "delta %",
         "paper delta %"],
        [
            ("median", f"{stats_without.median_us:.2f}",
             f"{stats_with.median_us:.2f}", f"{median_delta * 100:.2f}",
             "4.64"),
            ("p99", f"{stats_without.p99_us:.2f}",
             f"{stats_with.p99_us:.2f}", f"{p99_delta * 100:.2f}", "6.45"),
            ("mean", f"{stats_without.mean_us:.2f}",
             f"{stats_with.mean_us:.2f}", "-", "-"),
        ],
    )

    # Shape 1: the impact is small -- same ballpark as the paper's
    # 4.64% / 6.45%.
    assert 0.0 <= median_delta < 0.25
    assert 0.0 <= p99_delta < 0.60

    # Shape 2: the distribution is bimodal -- a cluster at the raw op
    # cost and a cluster that waited behind a Mantis op.
    base_cost = stats_without.median_us
    fast = [l for l in with_mantis if l < base_cost * 1.05]
    slow = [l for l in with_mantis if l > base_cost * 1.3]
    assert fast and slow, "expected a bimodal latency distribution"
    # The slow mode sits roughly one Mantis op above the fast mode.
    slow_mode = percentile(slow, 50)
    assert slow_mode > base_cost * 1.2

    # Sanity: the dialogue loop really was running concurrently.
    assert iterations > 1000
