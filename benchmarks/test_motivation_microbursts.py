"""Motivation (Section 1): congestion events are microscopic, so
reaction latency determines whether a controller can act at all.

The paper: "90% of continuous periods of high utilization lasted for
less than 200 us" [57] -- hence OpenFlow-style control loops (ms-scale)
miss most events entirely, while Mantis's 10s-of-us loop can observe
and act within a burst's lifetime.

We generate a synthetic burst schedule with the cited duration
distribution and compute, for each control-loop granularity, the
fraction of bursts the loop can react to *while the burst is still in
progress* (at least one full poll-react cycle inside the burst).
"""

import pytest

from benchmarks.conftest import report
from repro.net.flows import microburst_schedule

LOOP_GRANULARITIES_US = {
    "Mantis dialogue (10us)": 10.0,
    "Mantis paced 20% CPU (50us)": 50.0,
    "fast SDN controller (1ms)": 1_000.0,
    "typical SDN controller (10ms)": 10_000.0,
    "sFlow-based pipeline (100ms)": 100_000.0,
}


def reactable_fraction(bursts, loop_us: float) -> float:
    """Fraction of bursts whose duration admits one full reaction
    cycle (poll + react + install) before the burst ends, assuming
    the loop phase is uniform -- i.e. expected over phase."""
    total = 0.0
    for burst in bursts:
        if burst.duration_us <= loop_us:
            # The loop fires at most once during the burst and the
            # remaining-lifetime at that point is < one cycle:
            # essentially never actionable in time.
            total += max(0.0, (burst.duration_us - loop_us) / loop_us)
        else:
            # At least duration/loop cycles land inside; actionable.
            total += 1.0
    return total / len(bursts)


def run_experiment():
    bursts = microburst_schedule(horizon_us=2_000_000.0, seed=11)
    short = sum(1 for b in bursts if b.duration_us < 200.0)
    rows = []
    for name, loop_us in LOOP_GRANULARITIES_US.items():
        rows.append((name, loop_us, reactable_fraction(bursts, loop_us)))
    return bursts, short / len(bursts), rows


def test_motivation_microburst_reactability(bench_once):
    bursts, short_fraction, rows = bench_once(run_experiment)
    report(
        "Motivation: fraction of congestion events a control loop can "
        "react to in time",
        ["control loop", "granularity (us)", "reactable fraction"],
        [(n, g, f"{f:.2f}") for n, g, f in rows],
    )
    # The workload matches the cited measurement study's shape.
    assert short_fraction == pytest.approx(0.9, abs=0.03)

    by_name = {n: f for n, _g, f in rows}
    # Mantis reacts within the lifetime of nearly all bursts...
    assert by_name["Mantis dialogue (10us)"] > 0.9
    # ... even paced down to 20% CPU it catches the majority ...
    assert by_name["Mantis paced 20% CPU (50us)"] > 0.5
    # ... while ms-scale controllers miss almost everything.
    assert by_name["typical SDN controller (10ms)"] < 0.05
    assert by_name["sFlow-based pipeline (100ms)"] < 0.01
