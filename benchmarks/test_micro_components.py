"""Component micro-benchmarks (wall-clock, via pytest-benchmark).

Unlike the figure benchmarks (which measure *simulated* time on the
calibrated cost model), these measure the reproduction's own Python
performance: table lookup throughput, compile time, and dialogue
iteration rate.  They exist to keep the emulator fast enough for the
packet-level experiments and to catch performance regressions.
"""

import pytest

from repro.compiler import compile_p4r
from repro.p4 import ast
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.switch.tables import TableRuntime
from repro.system import MantisSystem

FIGURE1 = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header hdr_t hdr;
register qdepths { width : 32; instance_count : 16; }
malleable value value_var { width : 16; init : 1; }
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; mark; }
    default_action : mark();
}
action my_action() { add(hdr.qux, hdr.baz, ${value_var}); }
action mark() { modify_field(hdr.qux, 0xdead); }
control ingress { apply(table_var); }
reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
"""


def test_bench_exact_lookup(benchmark):
    decl = ast.TableDecl(
        "t",
        reads=[ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.EXACT)],
        action_names=["nop"],
        default_action=("nop", []),
    )
    table = TableRuntime(decl, [32])
    for key in range(4096):
        table.add_entry([key], "nop")
    packet = Packet({"h.f": 2048})
    result = benchmark(table.lookup, packet)
    assert result == ("nop", [])


def test_bench_ternary_scan(benchmark):
    decl = ast.TableDecl(
        "t",
        reads=[ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.TERNARY)],
        action_names=["nop"],
        default_action=("nop", []),
    )
    table = TableRuntime(decl, [32])
    for key in range(256):
        table.add_entry([(key, 0xFFFFFFFF)], "nop")
    packet = Packet({"h.f": 255})
    result = benchmark(table.lookup, packet)
    assert result == ("nop", [])


def test_bench_compile_figure1(benchmark):
    artifacts = benchmark(compile_p4r, FIGURE1)
    assert "table_var" in artifacts.spec.tables


def test_bench_packet_through_pipeline(benchmark):
    system = MantisSystem.from_source(FIGURE1)
    system.agent.prologue()
    system.agent.table("table_var").add([7], "my_action")
    system.agent.run_iteration()

    def shoot():
        packet = Packet({"hdr.foo": 7, "hdr.baz": 1})
        system.asic.process(packet)
        return packet

    packet = benchmark(shoot)
    assert packet.get("hdr.qux") != 0


def test_bench_dialogue_iteration(benchmark):
    system = MantisSystem.from_source(FIGURE1)
    system.agent.prologue()
    benchmark(system.agent.run_iteration)
    assert system.agent.iterations > 0
