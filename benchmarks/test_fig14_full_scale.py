"""Figure 14 at the paper's full scale.

The paper's exact configuration: trace chunks of ~8.9 M packets and
~370 K flows (20 s of a CAIDA backbone trace), Mantis at ~1-in-5
packets, sFlow at 1:30000, and 8192-entry data-plane structures (plus
the 16 K variant, for which "Mantis's performance was unchanged").

The trace itself is synthetic (heavy-tailed; see DESIGN.md), but every
estimator parameter is the paper's.  Error statistics are computed
over a 30 K-flow random sample of the ground truth (the full 370 K
scan only changes runtimes, not the averages).
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.apps.sketch import (
    CountMinSketch,
    HashTableEstimator,
    MantisSamplingEstimator,
    SFlowEstimator,
)
from repro.net.flows import TraceConfig, synthetic_trace

TRACE = TraceConfig(packets=8_900_000, flows=370_000, seed=2020,
                    duration_us=20_000_000.0)
BUCKET_EDGES = [0, 1_000, 10_000, 100_000, 1_000_000, 10**12]
EVAL_FLOWS = 30_000


def sampled_bucket_errors(estimator, truth_items):
    buckets = {}
    for src, true_bytes in truth_items:
        for lo, hi in zip(BUCKET_EDGES[:-1], BUCKET_EDGES[1:]):
            if lo <= true_bytes < hi:
                rel = abs(estimator.estimate(src) - true_bytes) / true_bytes
                total, count = buckets.get(lo, (0.0, 0))
                buckets[lo] = (total + rel, count + 1)
                break
    return {
        lo: total / count for lo, (total, count) in buckets.items() if count
    }


def run_experiment():
    trace = synthetic_trace(TRACE)
    truth = trace.true_flow_sizes()
    rng = np.random.default_rng(7)
    keys = list(truth.keys())
    picks = rng.choice(len(keys), size=min(EVAL_FLOWS, len(keys)),
                       replace=False)
    truth_items = [(keys[i], truth[keys[i]]) for i in picks.tolist()]

    estimators = {
        "mantis (1 in 5)": MantisSamplingEstimator(poll_every=5),
        "sflow (1:30000)": SFlowEstimator(sample_rate=30_000, seed=5),
        "hash table 8192": HashTableEstimator(entries=8192),
        "cms 2x8192": CountMinSketch(entries=8192, stages=2),
        "cms 2x16384": CountMinSketch(entries=16_384, stages=2),
    }
    results = {}
    for name, estimator in estimators.items():
        estimator.process(trace)
        results[name] = sampled_bucket_errors(estimator, truth_items)
    return results


def test_fig14_full_scale(bench_once):
    results = bench_once(run_experiment)
    los = BUCKET_EDGES[:-1]
    report(
        "Figure 14 (full scale): avg relative error by true flow size",
        ["estimator"] + [f">={lo}B" for lo in los],
        [
            [name] + [f"{errors.get(lo, float('nan')):.3f}" for lo in los]
            for name, errors in results.items()
        ],
    )
    mantis = results["mantis (1 in 5)"]
    sflow = results["sflow (1:30000)"]
    cms = results["cms 2x8192"]
    cms_big = results["cms 2x16384"]

    # Mantis beats sFlow across every bucket where sFlow has signal,
    # by an order of magnitude and more for sizeable flows (1:30000
    # sampling ~ one sample per ~20 MB of traffic).
    assert mantis[los[2]] < sflow[los[2]] / 5
    for lo in los[3:]:
        assert mantis[lo] < sflow[lo] / 10

    # Orders of magnitude better than the sketch for small flows
    # (370K flows over 8192 slots: ~45-way collisions).
    assert mantis[los[0]] < cms[los[0]] / 100

    # Comparable for the largest flows.
    assert mantis[los[-1]] < 0.1

    # "The overall trend holds across table sizes": the 16K sketch is
    # better than the 8K one but the small-flow gap persists.
    assert cms_big[los[0]] < cms[los[0]]
    assert mantis[los[0]] < cms_big[los[0]] / 50
