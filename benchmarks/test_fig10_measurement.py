"""Figure 10a: latency of raw measurements vs. size of state read.

Paper series:
- 32-bit *field* arguments: latency grows linearly with the number of
  packed 32-bit registers the control plane must read;
- 32-bit *register* arguments: reads of multiple entries of a single
  register array are cheap -- each additional byte costs only 10s of
  nanoseconds.

We generate programs with N field args / N-entry register slices, run
the agent's real polling path, and check both shapes.  The cost-model
prediction (repro.analysis.costmodel) is printed alongside.
"""

import pytest

from benchmarks.conftest import report
from repro.analysis.costmodel import predict_measurement_us
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

FIELD_COUNTS = [1, 2, 4, 8, 16]
REG_ENTRIES = [1, 4, 16, 64, 256]


def field_args_program(n_fields: int) -> str:
    fields = "\n".join(f"        f{i} : 32;" for i in range(n_fields))
    args = ", ".join(f"ing hdr.f{i}" for i in range(n_fields))
    return STANDARD_METADATA_P4 + f"""
header_type hdr_t {{
    fields {{
{fields}
    }}
}}
header hdr_t hdr;
action nop() {{ no_op(); }}
table t {{ actions {{ nop; }} default_action : nop(); }}
control ingress {{ apply(t); }}
reaction poll({args}) {{
    int x = 0;
}}
"""


def register_args_program(entries: int) -> str:
    return STANDARD_METADATA_P4 + f"""
header_type hdr_t {{ fields {{ f : 32; }} }}
header hdr_t hdr;
register data {{ width : 32; instance_count : {entries}; }}
action touch() {{ register_write(data, 0, hdr.f); }}
table t {{ actions {{ touch; }} default_action : touch(); }}
control ingress {{ apply(t); }}
reaction poll(reg data[0:{entries - 1}]) {{
    int x = 0;
}}
"""


def measure_poll_latency(source: str) -> float:
    """Average time of the measurement phase over 50 iterations."""
    system = MantisSystem.from_source(source)
    system.agent.prologue()
    agent = system.agent
    runtime = agent._reactions[0]
    clock = system.clock
    total = 0.0
    rounds = 50
    for _ in range(rounds):
        agent._write_master(mv=agent.mv ^ 1)
        agent.mv ^= 1
        start = clock.now
        agent._poll_args(runtime, agent.mv ^ 1)
        total += clock.now - start
    return total / rounds


def run_experiment():
    field_rows = []
    for count in FIELD_COUNTS:
        measured = measure_poll_latency(field_args_program(count))
        predicted = predict_measurement_us(
            MantisSystem.from_source(field_args_program(1)).driver.model,
            containers=count,
        )
        field_rows.append((count * 4, count, measured, predicted))
    register_rows = []
    for entries in REG_ENTRIES:
        measured = measure_poll_latency(register_args_program(entries))
        predicted = predict_measurement_us(
            MantisSystem.from_source(register_args_program(1)).driver.model,
            register_entries=entries,
            register_arrays=1,
        )
        register_rows.append((entries * 4, entries, measured, predicted))
    return field_rows, register_rows


def test_fig10a_measurement_latency(bench_once):
    field_rows, register_rows = bench_once(run_experiment)

    report(
        "Figure 10a: measurement latency vs state size (field args)",
        ["bytes", "32b fields", "measured us", "model us"],
        [(b, n, f"{m:.2f}", f"{p:.2f}") for b, n, m, p in field_rows],
    )
    report(
        "Figure 10a register args: measurement latency vs entries",
        ["bytes", "entries", "measured us", "model us"],
        [(b, n, f"{m:.2f}", f"{p:.2f}") for b, n, m, p in register_rows],
    )

    # Shape 1: field args scale linearly with packed registers.
    lat = {n: m for _b, n, m, _p in field_rows}
    per_field = (lat[16] - lat[1]) / 15
    assert per_field > 0.2  # each extra container costs real time
    assert lat[16] == pytest.approx(lat[1] + 15 * per_field, rel=0.2)

    # Shape 2: register-array reads are nearly flat -- 10s of ns/byte.
    rlat = {n: m for _b, n, m, _p in register_rows}
    bytes_span = (256 - 1) * 4
    per_byte_us = (rlat[256] - rlat[1]) / bytes_span
    assert 0.005 <= per_byte_us <= 0.05  # "10s of ns" per extra byte

    # Shape 3 (crossover): reading 16 words from ONE array is much
    # cheaper than reading 16 separate field containers.
    assert rlat[16] < lat[16] / 2.5

    # The cost model tracks the measured latencies.
    for _b, _n, measured, predicted in field_rows + register_rows:
        assert measured == pytest.approx(predicted, rel=0.35)
