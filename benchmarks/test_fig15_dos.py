"""Figure 15: DoS mitigation timeline.

Paper setup: 250 legitimate TCP flows utilize 20% of a 10 Gbps
bottleneck; a single malicious sender blasts UDP at 25 Gbps.  The
Mantis reaction installs a mitigation rule within ~100 us of the first
malicious packet, and benign flows return to steady state within
~500 us.

Scaled setup: 12 paced TCP flows at ~10% of a 5 Gbps bottleneck, the
same 25 Gbps flood.  The mitigation delay is dominated by the
configured minimum-observation window (the paper's spurious-detection
guard); we report both the raw delay and the delay beyond that window
(the Mantis detection+install component, which is the paper's ~1-2
dialogue iterations).
"""

import pytest

from benchmarks.conftest import report
from repro.apps.dos import build_dos_scenario

SETUP = dict(
    n_benign=12,
    benign_rate_gbps=0.04,
    attack_rate_gbps=25.0,
    bottleneck_gbps=5.0,
    threshold_gbps=2.0,
    min_duration_us=100.0,
)
WARMUP_US = 3_000.0
ATTACK_WINDOW_US = 2_000.0
RECOVERY_WINDOW_US = 3_000.0
ATTACKER = 0x0AFF0001


def run_experiment():
    app, sim, flows, sink, attacker = build_dos_scenario(**SETUP)
    app.prologue()
    for flow in flows:
        flow.start(at_us=10.0)
    sim.run_until(WARMUP_US)
    acked_before = sum(f.acked for f in flows)

    attack_start = sim.clock.now
    attacker.start()
    sim.run_until(attack_start + ATTACK_WINDOW_US)
    acked_during = sum(f.acked for f in flows) - acked_before

    recovery_start = sim.clock.now
    sim.run_until(recovery_start + RECOVERY_WINDOW_US)
    acked_after = sum(f.acked for f in flows) - acked_before - acked_during

    timeline = sink.timeline_gbps(sim.clock.now)
    return {
        "app": app,
        "attack_start": attack_start,
        "acked_before": acked_before,
        "acked_during": acked_during,
        "acked_after": acked_after,
        "timeline": timeline,
        "block_time": app.block_times.get(ATTACKER),
        "benign_blocked": [
            s for s in app.block_times if s != ATTACKER
        ],
        "samples": app.samples,
    }


def test_fig15_dos_mitigation_timeline(bench_once):
    result = bench_once(run_experiment)
    attack_start = result["attack_start"]
    block_time = result["block_time"]
    assert block_time is not None, "attacker was never blocked"
    block_delay = block_time - attack_start

    # Throughput timeline around the attack (100us windows).
    around = [
        (t, f"{gbps:.3f}")
        for t, gbps in result["timeline"]
        if attack_start - 500 <= t <= block_time + 1_000
    ]
    report(
        "Figure 15: aggregate benign TCP throughput timeline",
        ["window start (us)", "goodput (Gbps)"],
        around,
    )
    report(
        "Figure 15 summary",
        ["metric", "measured", "paper"],
        [
            ("block delay (us)", f"{block_delay:.1f}", "~100"),
            ("  beyond min-duration guard (us)",
             f"{block_delay - SETUP['min_duration_us']:.1f}", "1-2 loops"),
            ("benign flows blocked", len(result["benign_blocked"]), "0"),
            ("acks before attack", result["acked_before"], "-"),
            ("acks during attack window", result["acked_during"], "-"),
            ("acks after mitigation", result["acked_after"], "-"),
        ],
    )

    # Shape 1: mitigation installs ~one dialogue loop after the flow
    # becomes eligible (paper: ~100us total with their guard).
    assert block_delay < SETUP["min_duration_us"] + 60.0

    # Shape 2: no benign flow is ever blocked.
    assert result["benign_blocked"] == []

    # Shape 3: benign goodput recovers after mitigation -- the
    # post-mitigation window beats the attack window.
    assert result["acked_after"] > result["acked_during"]

    # Shape 4: recovery reaches steady state: post-attack rate within
    # 2x of the pre-attack rate (per-us normalization).
    pre_rate = result["acked_before"] / WARMUP_US
    post_rate = result["acked_after"] / RECOVERY_WINDOW_US
    assert post_rate > pre_rate / 2


def test_fig15_vs_traditional_control_plane(bench_once):
    """The caption's comparison: Mantis suppresses the flood "orders
    of magnitude faster than traditional reconfiguration" (cf.
    Poseidon).  The traditional baseline polls switch counters on a
    conventional slow-path cadence (10 ms, generous for an OpenFlow-
    style loop) and pays a controller round trip before installing the
    rule -- even granting it oracle-quality measurements.
    """

    def run():
        # Mantis path (same harness as the main experiment).
        app, sim, flows, sink, attacker = build_dos_scenario(**SETUP)
        app.prologue()
        for flow in flows:
            flow.start(at_us=10.0)
        sim.run_until(WARMUP_US)
        attack_start = sim.clock.now
        attacker.start()
        sim.run_until(attack_start + 2_000.0)
        mantis_delay = app.block_times[ATTACKER] - attack_start

        # Traditional baseline on the same event timeline: the next
        # controller poll after the flow becomes detectable, plus a
        # controller round trip and a slow-path rule install.
        poll_interval_us = 10_000.0  # 10 ms polling loop
        controller_rtt_us = 1_000.0  # switch -> controller -> switch
        install_us = 50.0  # slow-path table write
        detectable_at = attack_start + SETUP["min_duration_us"]
        polls_before = int(detectable_at // poll_interval_us) + 1
        next_poll = polls_before * poll_interval_us
        traditional_delay = (
            next_poll + controller_rtt_us + install_us - attack_start
        )
        return mantis_delay, traditional_delay

    mantis_delay, traditional_delay = bench_once(run)
    report(
        "Figure 15 comparison: Mantis vs traditional control plane",
        ["approach", "mitigation delay (us)"],
        [
            ("Mantis reaction loop", f"{mantis_delay:.1f}"),
            ("10ms polling + controller RTT", f"{traditional_delay:.1f}"),
            ("speedup", f"{traditional_delay / mantis_delay:.0f}x"),
        ],
    )
    assert mantis_delay < traditional_delay / 10  # orders of magnitude
