"""Agent fast-path benchmark: compiled reactions + dirty-diff commits
+ delta polling on the Figure 15 DoS control loop.

Runs the full dialogue loop (mv flip, poll, creaction, vv commit)
against the emulated switch under attack traffic, once per engine and
commit configuration, and gates the PR's two acceptance criteria:

- compiled reactions sustain at least 2x the interpreted engine's
  reactions/sec (wall clock; the *simulated* phase timelines must be
  identical -- op-count parity is what makes the engines
  interchangeable);
- dirty-diff commits issue strictly fewer driver ops than full
  commits on the same workload.

The payload lands in ``benchmarks/results/BENCH_agent.json`` (and at
``--bench-json`` when given) as the PR's tracked artifact.
"""

from __future__ import annotations

from benchmarks.conftest import report, report_json
from repro.fastbench import run_agent_benchmark

ITERATIONS = 200
MIN_SPEEDUP = 2.0


def test_agent_fastpath_speedup(bench_once, bench_json_path):
    result = bench_once(run_agent_benchmark, iterations=ITERATIONS)

    report(
        "Agent fast path (Figure 15 DoS control loop)",
        ["configuration", "reactions/s", "driver ops"],
        [
            ["interp + diff", f"{result['interp_rps']:,.0f}",
             f"{result['diff_commit_ops']}"],
            ["compiled + diff", f"{result['compiled_rps']:,.0f}",
             f"{result['diff_commit_ops']}"],
            ["compiled + full", "", f"{result['full_commit_ops']}"],
            ["compiled + diff + delta", "", f"{result['delta_poll_ops']}"],
            ["speedup", f"{result['speedup']:.2f}x", ""],
        ],
    )
    report_json(result, bench_json_path, name="BENCH_agent")

    assert result["speedup"] >= MIN_SPEEDUP, (
        f"compiled engine only {result['speedup']:.2f}x over interpreted "
        f"(target {MIN_SPEEDUP}x): {result}"
    )
    # Simulated-time parity: identical op counts mean identical
    # simulated phase splits, so the engines differ only in wall clock.
    assert result["compiled_phase_us"] == result["interp_phase_us"]
    # Dirty-diff commits must beat the rewrite-everything baseline.
    assert result["diff_commit_ops"] < result["full_commit_ops"], result
    assert 0.0 < result["dirty_diff_hit_rate"] <= 1.0
    # Delta polling saves further ops on this mostly-quiet workload.
    assert result["delta_poll_ops"] < result["diff_commit_ops"], result
    assert result["delta_poll_skip_rate"] > 0.5
    # The control loop did its job: the attacker ended up blocklisted.
    assert result["blocked_attacker"] == 1
