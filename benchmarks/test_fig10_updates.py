"""Figure 10b: latency of raw updates vs. number of updates.

Paper series:
- scalar malleable entities (values and fields): latency is constant
  as long as everything fits in a single ``p4r_init_`` table (one
  atomic default-action update, however many scalars changed);
- malleable table entries: latency increases linearly with the number
  of entries modified.
"""

import pytest

from benchmarks.conftest import report
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

UPDATE_COUNTS = [1, 2, 4, 8, 16, 32, 64]


def scalars_program(n_values: int) -> str:
    decls = "\n".join(
        f"malleable value v{i} {{ width : 4; init : 0; }}"
        for i in range(n_values)
    )
    uses = "\n".join(
        f"    add_to_field(hdr.f, ${{v{i}}});" for i in range(n_values)
    )
    return STANDARD_METADATA_P4 + f"""
header_type hdr_t {{ fields {{ f : 32; }} }}
header hdr_t hdr;
{decls}
action bump() {{
{uses}
}}
table t {{ actions {{ bump; }} default_action : bump(); }}
control ingress {{ apply(t); }}
"""


TABLE_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { key : 32; } }
header hdr_t hdr;
action set_key(v) { modify_field(hdr.key, v); }
action nop() { no_op(); }
malleable table big {
    reads { hdr.key : exact; }
    actions { set_key; nop; }
    default_action : nop();
    size : 1024;
}
control ingress { apply(big); }
"""


def measure_scalar_updates(n_values: int) -> float:
    """Time from staging N scalar writes to commit completion."""
    system = MantisSystem.from_source(scalars_program(n_values))
    system.agent.prologue()
    agent = system.agent
    # Warm: one empty iteration.
    agent.run_iteration()
    clock = system.clock
    start = clock.now
    for index in range(n_values):
        agent.write_malleable(f"v{index}", 1)
    agent._commit()
    return clock.now - start


def measure_table_updates(n_entries: int) -> float:
    """Time of the prepare phase for N entry modifications (the
    commit is one more constant-cost op; mirroring doubles prepare)."""
    system = MantisSystem.from_source(TABLE_PROGRAM)
    system.agent.prologue()
    handle = system.agent.table("big")
    entry_ids = [handle.add([i], "set_key", [0]) for i in range(n_entries)]
    system.agent.run_iteration()
    clock = system.clock
    start = clock.now
    for entry_id in entry_ids:
        handle.modify(entry_id, args=[7])
    prepare = clock.now - start
    system.agent.run_iteration()  # commit + mirror (not timed)
    return prepare


def run_experiment():
    scalar_rows = [(n, measure_scalar_updates(n)) for n in UPDATE_COUNTS]
    table_rows = [(n, measure_table_updates(n)) for n in UPDATE_COUNTS]
    return scalar_rows, table_rows


def test_fig10b_update_latency(bench_once):
    scalar_rows, table_rows = bench_once(run_experiment)

    report(
        "Figure 10b: update latency vs number of updates",
        ["updates", "scalar malleables (us)", "table entries (us)"],
        [
            (n, f"{s:.2f}", f"{t:.2f}")
            for (n, s), (_n, t) in zip(scalar_rows, table_rows)
        ],
    )

    scalars = dict(scalar_rows)
    tables = dict(table_rows)

    # Shape 1: scalar updates are constant in the number of scalars
    # (one init-table write commits them all) -- up to the platform's
    # single-init-action budget.  Past it (here 62 scalars + vv + mv),
    # the Section 5.1.1 multi-init protocol kicks in, exactly as the
    # paper's "after that point" caveat describes.
    assert scalars[32] == pytest.approx(scalars[1], rel=0.05)
    assert scalars[1] < scalars[64] <= 4 * scalars[1]

    # Shape 2: table entry updates are linear.
    per_entry = (tables[64] - tables[1]) / 63
    assert per_entry > 0.5
    assert tables[32] == pytest.approx(tables[1] + 31 * per_entry, rel=0.1)

    # Shape 3 (crossover): updating 64 scalars is far cheaper than
    # updating 64 table entries.
    assert scalars[64] < tables[64] / 10
