"""Figure 11: CPU utilization vs. reaction time.

The agent's busy loop occupies one core; pacing the dialogue with
``nanosleep`` (our ``pacing_sleep_us``) trades utilization for
reaction time.  The paper's claim: "reducing utilization to 20% still
keeps the average reaction time to 10s of us."
"""

import pytest

from benchmarks.conftest import report
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

# The Figure 11 workload: update of a single malleable field.
PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; b : 32; out : 32; key : 8; } }
header hdr_t hdr;
malleable field src {
    width : 32; init : hdr.a;
    alts { hdr.a, hdr.b }
}
action copy() { modify_field(hdr.out, ${src}); }
action nop() { no_op(); }
table t {
    reads { hdr.key : exact; }
    actions { copy; nop; }
    default_action : nop();
}
control ingress { apply(t); }

reaction flip() {
    ${src} = 1 - ${src};
}
"""

SLEEPS_US = [0.0, 2.0, 5.0, 10.0, 25.0, 60.0, 150.0]


def run_experiment():
    rows = []
    for sleep_us in SLEEPS_US:
        system = MantisSystem.from_source(PROGRAM, pacing_sleep_us=sleep_us)
        system.agent.prologue()
        system.agent.run(300)
        rows.append(
            (
                sleep_us,
                system.agent.cpu_utilization * 100.0,
                system.agent.avg_reaction_time_us,
            )
        )
    return rows


def test_fig11_cpu_utilization_tradeoff(bench_once):
    rows = bench_once(run_experiment)
    report(
        "Figure 11: CPU utilization vs reaction time (nanosleep pacing)",
        ["sleep us", "cpu %", "avg reaction us"],
        [(s, f"{u:.1f}", f"{r:.2f}") for s, u, r in rows],
    )

    by_sleep = {s: (u, r) for s, u, r in rows}
    # Busy loop: 100% CPU, fastest reactions.
    assert by_sleep[0.0][0] == pytest.approx(100.0)
    # Utilization decreases monotonically with pacing...
    utils = [u for _s, u, _r in rows]
    assert utils == sorted(utils, reverse=True)
    # ...while reaction time increases monotonically.
    reactions = [r for _s, _u, r in rows]
    assert reactions == sorted(reactions)

    # The paper's headline point: at ~20% utilization, reaction time
    # is still in the tens of microseconds.
    low_cpu = [(u, r) for _s, u, r in rows if u <= 25.0]
    assert low_cpu, "sweep should reach <=25% utilization"
    best_util, its_reaction = low_cpu[0]
    assert its_reaction < 100.0  # "10s of us"
