"""LinkGuardian-style loss-sweep benchmark: FCT / throughput vs link
loss rate, no-protection baseline vs Mantis protection.

Setup: the two-switch parallel-link fabric, a window-limited TCP flow
over the primary link (WAN-ish 25 us ACK latency, so per the Mathis
relation sustained throughput collapses as 1/sqrt(loss)), per-link
sequence-number probes feeding the gap counters, and the linkguard
reaction rerouting the data path onto the clean parallel link once
the measured loss crosses 5e-3.

Gate (acceptance criterion): at loss 1e-2 the protected run delivers
>= 2x the baseline throughput or completes transfers in <= 0.5x the
baseline FCT.  At 1e-4 (clean regime, protection never fires) the two
runs coincide; 1e-3 sits below the protection threshold, so both runs
ride the same lossy link and only simulation noise separates them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, report_json
from repro.apps.linkguard import run_linkguard_sweep

LOSS_RATES = (1e-4, 1e-3, 1e-2, 1e-1)
DURATION_US = 4000.0


@pytest.fixture(scope="module")
def sweep():
    return run_linkguard_sweep(
        loss_rates=LOSS_RATES, duration_us=DURATION_US
    )


def _fmt(value, pattern="{:.2f}"):
    return pattern.format(value) if value is not None else "-"


def test_loss_sweep_curves(sweep, bench_json_path):
    rows = []
    for loss in LOSS_RATES:
        point = sweep["points"][repr(loss)]
        base, prot = point["baseline"], point["protected"]
        rows.append([
            f"{loss:.0e}",
            _fmt(base["throughput_gbps"]),
            _fmt(prot["throughput_gbps"]),
            _fmt(point["throughput_ratio"]),
            _fmt(base["avg_fct_us"], "{:.0f}"),
            _fmt(prot["avg_fct_us"], "{:.0f}"),
            _fmt(point["fct_ratio"]),
            _fmt(prot["protect_time_us"], "{:.0f}"),
        ])
    report(
        "LinkGuard: throughput/FCT vs loss rate "
        "(baseline vs Mantis protection)",
        ["loss", "base Gbps", "prot Gbps", "tput x",
         "base FCT us", "prot FCT us", "FCT x", "protect@us"],
        rows,
    )
    report_json(sweep, bench_json_path, name="BENCH_linkguard")

    # Shape: protection monotonically matters more as loss grows.
    ratios = [sweep["points"][repr(l)]["throughput_ratio"]
              for l in (1e-2, 1e-1)]
    assert ratios[0] > 1.5 and ratios[1] > 1.5


def test_gate_2x_at_1e2(sweep):
    gate = sweep["gate"]
    assert gate["loss_rate"] == 1e-2
    assert gate["pass"], (
        f"protection gate failed at 1e-2: tput ratio "
        f"{gate['throughput_ratio']:.2f} (need >= 2.0) and FCT ratio "
        f"{gate['fct_ratio']} (need <= 0.5)"
    )


def test_protection_fires_only_above_threshold(sweep):
    clean = sweep["points"][repr(1e-4)]["protected"]
    assert clean["protections"] == 0  # 1e-4 << 5e-3 threshold
    for loss in (1e-2, 1e-1):
        lossy = sweep["points"][repr(loss)]["protected"]
        assert lossy["protections"] >= 1
        assert lossy["protect_time_us"] < DURATION_US / 2


def test_clean_regime_runs_coincide(sweep):
    point = sweep["points"][repr(1e-4)]
    # No protection event: both runs are the same flow modulo the
    # agent's (tiny) polling load; loose bounds absorb the noise.
    assert 0.7 <= point["throughput_ratio"] <= 1.3


def test_protected_never_worse_at_high_loss(sweep):
    point = sweep["points"][repr(1e-1)]
    assert point["throughput_ratio"] >= 1.0
    base, prot = point["baseline"], point["protected"]
    assert prot["delivered_packets"] >= base["delivered_packets"]
