"""Figure 16: gray-failure detection + route recomputation time.

Paper setup: heartbeat generators at T_s = 1 us on every adjacent
node; the detector triggers after two consecutive polling periods with
fewer than delta = floor(eta * T_d / T_s) heartbeats; reaction time is
measured from the link-down event to installation of the new routes.

Paper results:
- Figure 16a: connectivity restored within 100-200 us with low
  variance, for T_s in {1, 2, 4} us (smaller T_s -> slightly faster);
- Figure 16b: the impact of eta is low, because most of the reaction
  time is measuring all ports and ensuring isolation.
"""

import statistics

import pytest

from benchmarks.conftest import report
from repro.apps.failover import build_failover_scenario

TS_SWEEP = [1.0, 2.0, 4.0]
ETA_SWEEP = [0.2, 0.4, 0.6, 0.8]
TRIALS = 5


def measure_reaction_time(heartbeat_period_us, eta, trial):
    """One failure injection; returns detect+reroute latency in us."""
    app, sim, generators = build_failover_scenario(
        n_neighbors=4,
        heartbeat_period_us=heartbeat_period_us,
        eta=eta,
    )
    app.prologue()
    for generator in generators.values():
        generator.start(at_us=0.0)
    # Vary the failure's phase within the dialogue window per trial
    # (the paper attributes its variance to exactly this phase).
    sim.run_until(400.0 + trial * 7.3)
    fail_time = sim.clock.now
    generators[1].stop()
    sim.run_until(fail_time + 3_000.0)
    if 1 not in app.reroute_times:
        return None
    return app.reroute_times[1] - fail_time


def run_ts_sweep():
    rows = []
    for period in TS_SWEEP:
        times = [
            measure_reaction_time(period, eta=0.5, trial=t)
            for t in range(TRIALS)
        ]
        times = [t for t in times if t is not None]
        rows.append(
            (period, statistics.mean(times), statistics.pstdev(times),
             min(times), max(times))
        )
    return rows


def run_eta_sweep():
    rows = []
    for eta in ETA_SWEEP:
        times = [
            measure_reaction_time(1.0, eta=eta, trial=t)
            for t in range(TRIALS)
        ]
        times = [t for t in times if t is not None]
        rows.append((eta, statistics.mean(times), statistics.pstdev(times)))
    return rows


def test_fig16a_reaction_time_vs_heartbeat_period(bench_once):
    rows = bench_once(run_ts_sweep)
    report(
        "Figure 16a: failure detect+reroute time vs T_s (eta=0.5)",
        ["T_s (us)", "mean (us)", "stdev (us)", "min", "max"],
        [
            (ts, f"{m:.1f}", f"{sd:.1f}", f"{lo:.1f}", f"{hi:.1f}")
            for ts, m, sd, lo, hi in rows
        ],
    )
    means = {ts: m for ts, m, *_rest in rows}
    stdevs = {ts: sd for ts, _m, sd, *_rest in rows}

    # Shape 1 (paper: 100-200us): all reaction times land in the
    # low-hundreds-of-us band.
    for ts, mean_us in means.items():
        assert 10.0 < mean_us < 400.0

    # Shape 2: low variance -- stdev well below the mean (the paper's
    # variance comes only from the failure's phase in the window).
    for ts in means:
        assert stdevs[ts] < means[ts] / 2

    # Shape 3: detection needs ~2 violation windows, so larger T_s
    # (fewer expected heartbeats per window) does not *reduce* latency.
    assert means[4.0] >= means[1.0] * 0.8


def test_fig16b_reaction_time_vs_eta(bench_once):
    rows = bench_once(run_eta_sweep)
    # The paper contrasts with an idealized in-dataplane detector [15]
    # limited only by sampling accuracy: "eta = 20% and T_s = 1us
    # implies a minimum reaction time of 15us" -- i.e. ~3*T_s/eta.
    report(
        "Figure 16b: failure detect+reroute time vs eta (T_s=1us)",
        ["eta", "mean (us)", "stdev (us)", "idealized bound (us)"],
        [
            (eta, f"{m:.1f}", f"{sd:.1f}", f"{3.0 * 1.0 / eta:.1f}")
            for eta, m, sd in rows
        ],
    )
    means = [m for _eta, m, _sd in rows]
    # Shape: the impact of eta is low (paper: "Overall, the impact of
    # eta is low") -- max/min mean within ~2x across the sweep, all in
    # the same band.
    assert max(means) < 2.0 * min(means)
    for mean_us in means:
        assert 10.0 < mean_us < 400.0
