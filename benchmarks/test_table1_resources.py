"""Table 1: per-use-case resource and code-size metrics.

The paper reports, for each of the four example reactions, the kinds
of malleables used, lines of P4R vs. generated P4, and the marginal
control-flow/memory cost over a basic router: stages, tables,
registers, SRAM, TCAM, metadata bits.

We compile the four shipped use-case P4R programs and account the
same quantities from the compiled artifacts.  Absolute numbers differ
from the paper's (their programs sit on a production-grade router
baseline; ours are self-contained), but the qualitative content --
which malleable kinds each use case needs, and that the marginal cost
is a handful of tables/registers and a few hundred metadata bits --
must match.
"""

import pytest

from benchmarks.conftest import report
from repro.analysis.resources import resource_report
from repro.apps.dos import DOS_P4R
from repro.apps.ecmp import ECMP_P4R
from repro.apps.failover import FAILOVER_P4R
from repro.apps.rl import RL_P4R
from repro.compiler import compile_p4r
from repro.p4.printer import print_program

USE_CASES = {
    "dos_mitigation": DOS_P4R,
    "route_recomputation": FAILOVER_P4R,
    "hash_polarization": ECMP_P4R,
    "reinforcement_learning": RL_P4R,
}

# Paper Table 1: which malleable kinds each use case employs.
EXPECTED_MALLEABLES = {
    "dos_mitigation": {"val": 0, "fld": 0, "tbl": 1},
    "route_recomputation": {"val": 0, "fld": 0, "tbl": 1},
    "hash_polarization": {"val": 0, "fld": 2, "tbl": 0},
    "reinforcement_learning": {"val": 1, "fld": 0, "tbl": 0},
}


def loc(text: str) -> int:
    return sum(
        1 for line in text.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


def run_experiment():
    rows = []
    for name, source in USE_CASES.items():
        artifacts = compile_p4r(source)
        spec = artifacts.spec
        resources = resource_report(artifacts.p4)
        malleables = {
            "val": len(spec.values),
            "fld": len(spec.fields),
            "tbl": len([t for t in spec.tables.values()
                        if t.malleable and not t.name.startswith("p4r_init")]),
        }
        rows.append(
            {
                "name": name,
                "malleables": malleables,
                "p4r_loc": loc(source),
                "p4_loc": loc(artifacts.p4_source),
                "resources": resources,
                "spec": spec,
            }
        )
    return rows


def test_table1_resources(bench_once):
    rows = bench_once(run_experiment)
    report(
        "Table 1: use-case metrics (compiled artifacts)",
        ["use case", "val", "fld", "tbl", "LoC P4R", "LoC P4",
         "stages", "tables", "regs", "SRAM KB", "TCAM KB", "meta bits"],
        [
            (
                row["name"],
                row["malleables"]["val"],
                row["malleables"]["fld"],
                row["malleables"]["tbl"],
                row["p4r_loc"],
                row["p4_loc"],
                row["resources"].stages,
                row["resources"].tables,
                row["resources"].registers,
                f"{row['resources'].sram_bytes / 1024:.2f}",
                f"{row['resources'].tcam_bytes / 1024:.2f}",
                row["resources"].metadata_bits,
            )
            for row in rows
        ],
    )

    by_name = {row["name"]: row for row in rows}

    # The malleable-kind profile matches the paper's Table 1.
    for name, expected in EXPECTED_MALLEABLES.items():
        assert by_name[name]["malleables"] == expected, name

    for row in rows:
        resources = row["resources"]
        # Generated P4 is larger than the P4R source (the paper's LoC
        # columns, e.g. 81 -> 95, 30 -> 158).
        assert row["p4_loc"] > row["p4r_loc"]
        # Marginal costs stay modest: a handful of extra tables and
        # registers, metadata in the hundreds of bits (Table 1 reports
        # 160-498 bits).
        assert resources.tables <= 15
        assert resources.registers <= 15
        assert resources.metadata_bits <= 600
        assert resources.stages <= 13  # Table 1 max is 13
        # Every use case fits a real switch's per-pipe SRAM budget.
        assert resources.sram_bytes < 1 << 22

    # The RL use case polls two registers; the failover one mirrors
    # the heartbeat array -- spot-check the generated spec contents.
    assert len(by_name["reinforcement_learning"]["spec"].mirrors) == 2
    assert "hb_count" in by_name["route_recomputation"]["spec"].mirrors
