"""Use case #4 evaluation: does the RL loop actually optimize?

The paper describes the setup (Section 8.3.4) without a figure; this
bench supplies the missing evaluation: the learned epsilon-greedy
policy's reward vs. each *fixed* threshold on the same workload.  The
learned policy should end up competitive with the best fixed
threshold and clearly better than the worst -- i.e. the feedback loop
is doing real optimization, not noise.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.rl import (
    THRESHOLD_ACTIONS,
    QLearningConfig,
    QLearningEcnApp,
    build_rl_scenario,
)

HORIZON_US = 12_000.0
EVAL_WINDOW = 300  # rewards averaged over the final N iterations


def run_policy(fixed_threshold=None):
    """Run the scenario with either the learner or a fixed threshold;
    returns the average reward over the tail window."""
    app, sim, flows, sink = build_rl_scenario(
        n_flows=5, bottleneck_gbps=1.5, queue_pkts=96
    )
    if fixed_threshold is not None:
        def fixed(ctx, value=fixed_threshold):
            # Observe (so rewards are recorded) but always pick the
            # fixed threshold.
            app._reaction(ctx)
            ctx.write("ecn_thresh", value)

        app.prologue()
        app.system.agent.attach_python("q_learn", fixed)
    else:
        app.prologue()
    for flow in flows:
        flow.start(at_us=5.0)
    sim.run_until(HORIZON_US)
    tail = app.rewards[-EVAL_WINDOW:]
    return sum(tail) / len(tail), app


def run_experiment():
    rows = []
    fixed_scores = {}
    for threshold in THRESHOLD_ACTIONS:
        score, _app = run_policy(fixed_threshold=threshold)
        fixed_scores[threshold] = score
        rows.append((f"fixed {threshold}", score))
    learned_score, learned_app = run_policy()
    rows.append(("learned (Q)", learned_score))
    return rows, fixed_scores, learned_score, learned_app


def test_rl_policy_value(bench_once):
    rows, fixed_scores, learned_score, app = bench_once(run_experiment)
    report(
        "Use case 4: tail reward of learned vs fixed ECN thresholds",
        ["policy", "avg reward (tail)"],
        [(name, f"{score:.3f}") for name, score in rows],
    )
    best_fixed = max(fixed_scores.values())
    worst_fixed = min(fixed_scores.values())
    spread = best_fixed - worst_fixed

    # The environment must actually differentiate thresholds...
    assert spread > 0.0
    # ...and the learner must land much closer to the best fixed
    # policy than to the worst (within the top third of the range,
    # despite paying for its epsilon exploration).
    assert learned_score > worst_fixed + 0.4 * spread
    # Sanity: the learner explored and updated.
    assert app.explorations > 0
    assert (app.q != 0).any()
