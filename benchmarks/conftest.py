"""Shared benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment on the emulated stack, prints the same rows/series
the paper reports (paper value alongside measured where applicable),
asserts the qualitative *shape* (who wins, by roughly what factor,
where crossovers fall), and appends the rendered table to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="also write machine-readable benchmark results (JSON) "
        "to PATH; single-file path for one benchmark, or a directory "
        "(trailing separator) for per-benchmark files",
    )


@pytest.fixture
def bench_json_path(request):
    """The ``--bench-json`` destination, or ``None`` when not given.

    Benchmarks that produce a JSON payload call
    :func:`report_json` with this path in addition to their default
    artifact under ``benchmarks/results/``.
    """
    return request.config.getoption("--bench-json")


def report_json(payload, path=None, name="benchmark"):
    """Persist a machine-readable result under benchmarks/results/
    and, if ``path`` is given (the --bench-json option), there too."""
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    destinations = [os.path.join(RESULTS_DIR, f"{name}.json")]
    if path:
        if path.endswith(os.sep) or os.path.isdir(path):
            os.makedirs(path, exist_ok=True)
            destinations.append(os.path.join(path, f"{name}.json"))
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            destinations.append(path)
    for destination in destinations:
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return destinations


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def report(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Print a table and persist it under benchmarks/results/."""
    text = render_table(title, headers, rows)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in title.lower()
    )[:60].strip("_")
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


@pytest.fixture
def bench_once(benchmark):
    """Adapter: run an experiment exactly once under pytest-benchmark
    (so ``--benchmark-only`` collects it) and return its result.

    Experiment harnesses are deterministic simulations -- statistical
    repetition is unnecessary and often impossible (simulated clocks
    advance monotonically), so one round is the honest measurement.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
