"""Background (Section 2): the cost of the recirculation workaround.

The paper motivates Mantis by quantifying the standard alternative:
"Recirculating every packet twice, for instance, drops usable
throughput of the switch to 38%; three times reduces throughput to
just 16%" (numbers from [51]).

An RMT switch is limited by packet-level pipeline bandwidth, so a
packet that traverses the pipeline 1+R times consumes 1+R slots and
usable throughput falls to ~1/(1+R).  We run the same workload through
programs that recirculate each packet 0/1/2/3 times and measure the
delivered-packets-per-pipeline-pass ratio -- the quantity Mantis's
control-plane offload keeps at 1.0.
"""

import pytest

from benchmarks.conftest import report
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.packet import Packet


def recirculating_program(times: int) -> str:
    return STANDARD_METADATA_P4 + f"""
header_type h_t {{ fields {{ passes : 8; }} }}
header h_t hdr;
action again() {{
    add_to_field(hdr.passes, 1);
    recirculate();
    modify_field(standard_metadata.egress_spec, 1);
}}
action done() {{
    modify_field(standard_metadata.egress_spec, 1);
}}
table bounce {{
    reads {{ hdr.passes : exact; }}
    actions {{ again; done; }}
    default_action : done();
    size : 8;
}}
control ingress {{ apply(bounce); }}
"""


def run_experiment():
    rows = []
    for recirculations in (0, 1, 2, 3):
        asic = SwitchAsic(parse_p4(recirculating_program(recirculations)))
        for pass_index in range(recirculations):
            asic.tables["bounce"].add_entry([pass_index], "again")
        delivered = 0
        total = 500
        for index in range(total):
            result = asic.process(Packet({"hdr.passes": 0}))
            if result is not None:
                delivered += 1
        throughput = delivered / asic.pipeline_passes
        rows.append((recirculations, delivered, asic.pipeline_passes,
                     throughput))
    return rows


def test_background_recirculation_throughput(bench_once):
    rows = bench_once(run_experiment)
    report(
        "Background: usable throughput under per-packet recirculation",
        ["recirculations", "delivered", "pipeline passes",
         "usable throughput"],
        [(r, d, p, f"{t:.2f}") for r, d, p, t in rows],
    )
    by_recirc = {r: t for r, _d, _p, t in rows}
    assert by_recirc[0] == pytest.approx(1.0)
    # One recirculation halves usable bandwidth; two cut it to ~1/3
    # (the paper's 38% includes packet-size effects we don't model);
    # three to ~1/4 (paper: 16%).
    assert by_recirc[1] == pytest.approx(0.5, rel=0.02)
    assert by_recirc[2] == pytest.approx(1 / 3, rel=0.02)
    assert by_recirc[3] == pytest.approx(1 / 4, rel=0.02)
    # Every packet still arrives -- the cost is bandwidth, not loss.
    for _r, delivered, _p, _t in rows:
        assert delivered == 500
