"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Three-phase incremental updates vs. a Reitblatt-style two-phase
   full reinstall (Section 5.1.2's motivation): latency per update
   group and table-space headroom.
2. Sorted-first-fit packing vs. naive one-parameter-per-register
   packing (Section 4.1/4.2): init-table count and measurement cost.
3. Driver-instruction memoization on vs. off (Section 6): dialogue
   iteration latency.
4. The Section 5.2 timestamp cache on vs. off: stale reads surfaced
   to reactions.
"""

import pytest

from benchmarks.conftest import report
from repro.compiler.packing import (
    first_fit_decreasing,
    naive_one_per_bin,
    pack_stats,
)
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.driver import DriverCostModel
from repro.switch.packet import Packet
from repro.system import MantisSystem

TABLE_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { key : 32; } }
header hdr_t hdr;
action set_key(v) { modify_field(hdr.key, v); }
action nop() { no_op(); }
malleable table big {
    reads { hdr.key : exact; }
    actions { set_key; nop; }
    default_action : nop();
    size : 4096;
}
control ingress { apply(big); }
"""


def three_phase_cost(total_entries: int, changed: int) -> float:
    """Simulated latency of committing ``changed`` entry updates out
    of ``total_entries`` installed, with Mantis's incremental
    three-phase protocol."""
    system = MantisSystem.from_source(TABLE_PROGRAM)
    system.agent.prologue()
    handle = system.agent.table("big")
    entry_ids = [
        handle.add([index], "set_key", [0]) for index in range(total_entries)
    ]
    system.agent.run_iteration()
    start = system.clock.now
    for entry_id in entry_ids[:changed]:
        handle.modify(entry_id, args=[1])
    system.agent.run_iteration()
    return system.clock.now - start


def two_phase_reinstall_cost(total_entries: int, changed: int) -> float:
    """Reitblatt-style: every update group installs the COMPLETE new
    configuration under the next version tag, flips, then (later)
    removes the old -- per-group cost is total_entries adds plus
    total_entries deletes, regardless of the delta size."""
    system = MantisSystem.from_source(TABLE_PROGRAM)
    system.agent.prologue()
    driver = system.driver
    memo = driver.memoize("table", "big")
    # Current configuration at version 0.
    old_ids = [
        driver.add_entry("big", [index, 0], "set_key", [0], memo=memo)
        for index in range(total_entries)
    ]
    start = system.clock.now
    # Phase 1: install the ENTIRE new config at version 1.
    for index in range(total_entries):
        value = 1 if index < changed else 0
        driver.add_entry("big", [index, 1], "set_key", [value], memo=memo)
    # Phase 2: flip the version tag (one init write).
    driver.set_default("p4r_init_", "p4r_init_action_", [1, 0])
    # Old-version teardown (the paper notes removal doubles latency
    # when the control plane is the bottleneck).
    for entry_id in old_ids:
        driver.delete_entry("big", entry_id, memo=memo)
    return system.clock.now - start


def test_ablation_three_phase_vs_reinstall(bench_once):
    def run():
        rows = []
        for changed in (1, 4, 16, 64):
            rows.append(
                (
                    changed,
                    three_phase_cost(256, changed),
                    two_phase_reinstall_cost(256, changed),
                )
            )
        return rows

    rows = bench_once(run)
    report(
        "Ablation: three-phase incremental vs two-phase full reinstall "
        "(256 installed entries)",
        ["entries changed", "Mantis 3-phase (us)", "reinstall (us)"],
        [(c, f"{m:.1f}", f"{r:.1f}") for c, m, r in rows],
    )
    for changed, mantis, reinstall in rows:
        # Incremental cost ~ delta size; reinstall ~ table size.
        assert mantis < reinstall
    small_delta = rows[0]
    assert small_delta[1] < small_delta[2] / 20  # 1-entry update: >>20x


def test_ablation_packing(bench_once):
    def run():
        widths = [32, 16, 16, 9, 8, 8, 4, 2, 1, 1, 19, 13, 6, 32, 24]
        ffd = first_fit_decreasing(widths, lambda w: w, 32)
        naive = naive_one_per_bin(widths)
        ffd_count, ffd_util = pack_stats(ffd, lambda w: w, 32)
        naive_count, naive_util = pack_stats(naive, lambda w: w, 32)
        # Measurement cost scales with container count (Figure 10a).
        model = DriverCostModel()
        per_container = (
            model.memoized_prep_us + model.register_read_cost(1, 32)
        )
        return (
            (ffd_count, ffd_util, model.pcie_rtt_us + ffd_count * per_container),
            (naive_count, naive_util,
             model.pcie_rtt_us + naive_count * per_container),
        )

    (ffd_count, ffd_util, ffd_cost), (naive_count, naive_util, naive_cost) = (
        bench_once(run)
    )
    report(
        "Ablation: sorted-first-fit vs one-param-per-register packing",
        ["strategy", "containers", "utilization", "poll cost (us)"],
        [
            ("first-fit-decreasing", ffd_count, f"{ffd_util:.2f}",
             f"{ffd_cost:.2f}"),
            ("naive", naive_count, f"{naive_util:.2f}", f"{naive_cost:.2f}"),
        ],
    )
    assert ffd_count < naive_count / 1.8
    assert ffd_cost < naive_cost / 1.5
    assert ffd_util > naive_util


MEMO_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { f : 32; } }
header hdr_t hdr;
register data { width : 32; instance_count : 16; }
malleable value knob { width : 32; init : 0; }
action keep() { register_write(data, 0, hdr.f); }
table t { actions { keep; } default_action : keep(); }
control ingress { apply(t); }
reaction tick(reg data[0:15]) {
    ${knob} = ${knob} + 1;
}
"""


def test_ablation_memoization(bench_once):
    def run():
        memoized = MantisSystem.from_source(MEMO_PROGRAM)
        memoized.agent.prologue()
        memoized.agent.run(200)

        plain = MantisSystem.from_source(MEMO_PROGRAM)
        plain.agent.prologue()
        plain.driver.memoization_enabled = False
        plain.agent.run(200)
        return (
            memoized.agent.avg_reaction_time_us,
            plain.agent.avg_reaction_time_us,
        )

    with_memo, without_memo = bench_once(run)
    report(
        "Ablation: driver instruction memoization",
        ["configuration", "avg dialogue iteration (us)"],
        [
            ("memoized (prologue cache)", f"{with_memo:.2f}"),
            ("unmemoized", f"{without_memo:.2f}"),
        ],
    )
    # Memoization buys a measurable chunk of each iteration.
    assert with_memo < without_memo * 0.8


TS_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { v : 32; } }
header hdr_t hdr;
register acc { width : 32; instance_count : 2; }
action record() { register_write(acc, 0, hdr.v); }
table t { actions { record; } default_action : record(); }
control ingress { apply(t); }
reaction watch(reg acc[0:1]) {
    int x = acc[0];
}
"""


def test_ablation_timestamp_cache(bench_once):
    def run():
        system = MantisSystem.from_source(TS_PROGRAM)
        system.agent.prologue()
        observed_cached = []
        observed_raw = []
        mirror = system.spec.mirrors["acc"]
        dup = system.asic.registers[mirror.duplicate]

        def reaction(ctx):
            observed_cached.append(ctx.args["acc"][0])
            # What a cache-less implementation would have returned:
            # the raw checkpoint-copy word.
            checkpoint = system.agent.mv ^ 1
            observed_raw.append(
                dup.read(checkpoint * mirror.padded_count + 0)
            )

        system.agent.attach_python("watch", reaction)
        system.asic.process(Packet({"hdr.v": 10}))
        system.agent.run_iteration()
        system.asic.process(Packet({"hdr.v": 20}))
        # Several quiet iterations: the raw copies alternate 10/20.
        for _ in range(6):
            system.agent.run_iteration()
        return observed_cached, observed_raw

    cached, raw = bench_once(run)
    report(
        "Ablation: Section 5.2 timestamp cache",
        ["iteration", "with ts-cache", "raw checkpoint read"],
        [(i, c, r) for i, (c, r) in enumerate(zip(cached, raw))],
    )
    # The raw reads exhibit the paper's stale alternation...
    assert 10 in raw[2:], "expected a stale raw read"
    # ...while the cached view, once it has seen 20, never regresses.
    saw_20 = cached.index(20)
    assert all(value == 20 for value in cached[saw_20:])
