"""Figure 14: average flow-size estimation error, Mantis vs.
alternatives.

Paper setup: CAIDA backbone trace chunks (~8.9 M packets, ~370 K flows
per 20 s), estimators configured as:

- Mantis: ~10 us sampling loop == ~1 in 5 packets;
- sFlow: 1:30000 sampling (the Facebook production rate);
- data plane: hash table and 2-stage count-min sketch with 8192
  entries (also 16 K; "Mantis's performance was unchanged").

Substitution: we use a synthetic heavy-tailed trace at 1/100 scale
(90 K packets / 3.7 K flows) and scale the *ratios* that drive the
result -- Mantis-vs-sFlow sampling rate ratio, and the sketches'
flows-per-slot collision load.  Scale up via TraceConfig to the full
size if desired.

Expected shape (paper): Mantis beats sFlow by orders of magnitude;
vs. data plane structures, Mantis is comparable for large flows and
orders of magnitude better for small flows; the trend holds across
table sizes.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.sketch import (
    CountMinSketch,
    HashTableEstimator,
    MantisSamplingEstimator,
    SFlowEstimator,
    estimation_errors,
)
from repro.net.flows import TraceConfig, synthetic_trace

# 1/100 scale of the paper's 20s CAIDA chunk.
TRACE = TraceConfig(packets=90_000, flows=3_700, seed=2020)
# Paper: 1:30000 on the full trace; keep the Mantis:sFlow rate ratio
# (5 : 30000 = 1 : 6000) at reduced scale by shrinking both by 3x.
SFLOW_RATE = 2000
MANTIS_POLL = 5
# Paper: 8192-entry tables against 370K flows (~45 flows/slot); match
# the collision load at our flow count, and also run the "bigger
# table" variant (paper's 16K analogue).
FLOWS_PER_SLOT = 45


def run_experiment():
    trace = synthetic_trace(TRACE)
    flows = len(trace.true_flow_sizes())
    matched = max(64, flows // FLOWS_PER_SLOT)

    estimators = {
        "mantis": MantisSamplingEstimator(poll_every=MANTIS_POLL),
        "sflow": SFlowEstimator(sample_rate=SFLOW_RATE, seed=5),
        "hash_table": HashTableEstimator(entries=matched),
        "cms_2stage": CountMinSketch(entries=matched, stages=2),
        "hash_table_2x": HashTableEstimator(entries=2 * matched),
        "cms_2stage_2x": CountMinSketch(entries=2 * matched, stages=2),
    }
    buckets = {}
    for name, estimator in estimators.items():
        estimator.process(trace)
        buckets[name] = estimation_errors(estimator, trace)
    return trace, buckets


def test_fig14_estimation_error(bench_once):
    trace, buckets = bench_once(run_experiment)

    bucket_labels = [
        f"[{b.lo_bytes}-{b.hi_bytes})" for b in buckets["mantis"]
    ]
    rows = []
    for name, series in buckets.items():
        rows.append(
            [name] + [f"{b.avg_rel_error:.3f}" for b in series]
        )
    report(
        "Figure 14: avg relative estimation error by true flow size",
        ["estimator"] + bucket_labels,
        rows,
    )

    def series(name):
        return [b.avg_rel_error for b in buckets[name]]

    mantis = series("mantis")
    sflow = series("sflow")
    cms = series("cms_2stage")
    hash_table = series("hash_table")
    cms_2x = series("cms_2stage_2x")

    # Claim 1: Mantis beats sFlow wherever sFlow has signal at all
    # (large flows), by more than an order of magnitude.
    for m, s in zip(mantis[-2:], sflow[-2:]):
        assert m < s / 10

    # Claim 2: vs data plane structures -- orders of magnitude better
    # for small flows (collision-dominated)...
    assert mantis[0] < cms[0] / 50
    assert mantis[0] < hash_table[0] / 50

    # ... and comparable for large flows.
    assert mantis[-1] < 0.1
    assert abs(mantis[-1] - cms[-1]) < 0.5

    # Claim 3: the trend holds across table sizes (bigger tables help
    # the sketch but the small-flow gap persists).
    assert mantis[0] < cms_2x[0] / 10

    # Claim 4: sketch error decreases with flow size (collisions
    # misattribute a ~constant byte mass); Mantis error does too
    # (sampling error amortizes) -- both monotone trends in the data.
    assert cms[0] > cms[-1]
    assert mantis[0] > mantis[-1]
