"""Property-based tests of the C-like reaction interpreter.

Randomly generated integer expressions are rendered as C source and
evaluated both by the interpreter and by a direct Python model with C
semantics; the results must agree.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.p4r.creaction import CReaction, ReactionEnv


def c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


@st.composite
def int_expr(draw, depth=0):
    """Returns (source_text, python_value)."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=1000))
        return str(value), value
    op = draw(st.sampled_from(
        ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
         "<", "<=", ">", ">=", "==", "!="]
    ))
    left_src, left_val = draw(int_expr(depth=depth + 1))
    right_src, right_val = draw(int_expr(depth=depth + 1))
    if op in ("/", "%") and right_val == 0:
        right_src, right_val = "7", 7
    if op in ("<<", ">>"):
        right_src, right_val = str(right_val % 8), right_val % 8
    src = f"({left_src} {op} {right_src})"
    table = {
        "+": lambda: left_val + right_val,
        "-": lambda: left_val - right_val,
        "*": lambda: left_val * right_val,
        "/": lambda: c_div(left_val, right_val),
        "%": lambda: c_mod(left_val, right_val),
        "&": lambda: left_val & right_val,
        "|": lambda: left_val | right_val,
        "^": lambda: left_val ^ right_val,
        "<<": lambda: left_val << right_val,
        ">>": lambda: left_val >> right_val,
        "<": lambda: 1 if left_val < right_val else 0,
        "<=": lambda: 1 if left_val <= right_val else 0,
        ">": lambda: 1 if left_val > right_val else 0,
        ">=": lambda: 1 if left_val >= right_val else 0,
        "==": lambda: 1 if left_val == right_val else 0,
        "!=": lambda: 1 if left_val != right_val else 0,
    }
    return src, table[op]()


@settings(max_examples=150, deadline=None)
@given(int_expr())
def test_expression_semantics_match_c_model(expr):
    source, expected = expr
    assert CReaction(f"return {source};").run(ReactionEnv()) == expected


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000),
             min_size=1, max_size=20)
)
def test_loop_sum_matches(values):
    """A C loop over an input array sums like Python does."""
    array = {i: v for i, v in enumerate(values)}
    source = f"""
    int total = 0;
    for (int i = 0; i < {len(values)}; ++i)
        total += data[i];
    return total;
    """
    result = CReaction(source).run(ReactionEnv(args={"data": array}))
    assert result == sum(values)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(["uint8_t", "uint16_t", "uint32_t"]),
)
def test_unsigned_arithmetic_wraps_at_declared_width(a, b, ctype):
    width = {"uint8_t": 8, "uint16_t": 16, "uint32_t": 32}[ctype]
    mask = (1 << width) - 1
    source = f"{ctype} x = {a}; x += {b}; return x;"
    assert CReaction(source).run(ReactionEnv()) == (a + b) & mask


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000),
                min_size=1, max_size=12))
def test_figure1_max_scan_matches_python_max(depths):
    """The paper's Figure 1 loop computes argmax like Python does."""
    array = {i + 1: v for i, v in enumerate(depths)}
    n = len(depths)
    source = f"""
    uint32_t current_max = 0, max_port = 0;
    for (int i = 1; i <= {n}; ++i)
        if (qdepths[i] > current_max) {{
            current_max = qdepths[i]; max_port = i;
        }}
    return max_port;
    """
    result = CReaction(source).run(ReactionEnv(args={"qdepths": array}))
    if max(depths) == 0:
        assert result == 0
    else:
        # First index achieving the max (strict > keeps the first).
        expected = depths.index(max(depths)) + 1
        assert result == expected
