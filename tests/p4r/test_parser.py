"""P4R parser tests, built around the paper's Figure 1 example."""

import pytest

from repro.errors import P4SemanticError, P4SyntaxError
from repro.p4 import ast as p4ast
from repro.p4r.parser import parse_p4r

# The Figure 1 snippet, embedded in enough P4 boilerplate to validate.
FIGURE1 = """
header_type hdr_t {
    fields {
        foo : 32;
        bar : 32;
        baz : 32;
        qux : 16;
    }
}
header hdr_t hdr;

register qdepths {
    width : 32;
    instance_count : 16;
}

malleable value value_var { width : 16; init : 1; }

malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}

malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; drop_action; }
}

action my_action() {
    add(${field_var}, hdr.baz, ${value_var});
}

action drop_action() {
    drop();
}

control ingress {
    apply(table_var);
}

reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
"""


@pytest.fixture
def program():
    return parse_p4r(FIGURE1)


def test_malleable_value(program):
    value = program.malleable_values["value_var"]
    assert value.width == 16
    assert value.init == 1


def test_malleable_field(program):
    fld = program.malleable_fields["field_var"]
    assert fld.width == 32
    assert fld.init == p4ast.FieldRef("hdr", "foo")
    assert [str(a) for a in fld.alts] == ["hdr.foo", "hdr.bar"]
    assert fld.selector_width == 1
    assert fld.init_index == 0
    assert fld.alt_index(p4ast.FieldRef("hdr", "bar")) == 1


def test_malleable_table(program):
    table = program.tables["table_var"]
    assert table.malleable
    assert isinstance(table.reads[0].ref, p4ast.MalleableRef)
    assert table.reads[0].ref.name == "field_var"
    assert program.malleable_tables() == ["table_var"]


def test_malleable_ref_in_action(program):
    action = program.actions["my_action"]
    call = action.body[0]
    assert call.name == "add"
    assert isinstance(call.args[0], p4ast.MalleableRef)
    assert isinstance(call.args[2], p4ast.MalleableRef)


def test_reaction_args(program):
    reaction = program.reactions["my_reaction"]
    (arg,) = reaction.args
    assert arg.kind == "reg"
    assert arg.ref == "qdepths"
    assert (arg.lo, arg.hi) == (1, 10)
    assert arg.entry_count == 10
    assert arg.c_name == "qdepths"


def test_reaction_body_is_raw_source(program):
    body = program.reactions["my_reaction"].body_source
    assert "uint16_t current_max" in body
    assert "${value_var} = max_port;" in body
    # The body is raw text -- braces balanced, no P4 parsing applied.
    assert body.count("{") == body.count("}")


def test_parsing_continues_after_reaction():
    program = parse_p4r(
        FIGURE1
        + """
table after_reaction {
    actions { drop_action; }
}
"""
    )
    assert "after_reaction" in program.tables


def test_field_arg_kinds():
    program = parse_p4r(
        """
header_type h_t { fields { f : 16; g : 16; } }
header h_t hdr;
metadata h_t meta;
action nop() { no_op(); }
malleable value v { width : 8; init : 0; }
reaction r(ing hdr.f, egr meta.g, ${v}) {
    ${v} = hdr_f + meta_g;
}
"""
    )
    args = program.reactions["r"].args
    assert [a.kind for a in args] == ["ing", "egr", "mbl"]
    assert args[0].c_name == "hdr_f"
    assert args[1].c_name == "meta_g"
    assert args[2].c_name == "v"


def test_malleable_value_init_overflow_rejected():
    with pytest.raises(P4SemanticError):
        parse_p4r("malleable value v { width : 4; init : 16; }")


def test_malleable_field_unknown_alt_rejected():
    with pytest.raises(P4SemanticError):
        parse_p4r(
            """
header_type h_t { fields { f : 16; } }
header h_t hdr;
malleable field m { width : 16; init : hdr.f; alts { hdr.f, hdr.ghost } }
"""
        )


def test_malleable_field_alt_wider_than_width_rejected():
    with pytest.raises(P4SemanticError):
        parse_p4r(
            """
header_type h_t { fields { f : 32; } }
header h_t hdr;
malleable field m { width : 16; init : hdr.f; alts { hdr.f } }
"""
        )


def test_reaction_register_slice_bounds_checked():
    with pytest.raises(P4SemanticError):
        parse_p4r(
            """
register r { width : 32; instance_count : 4; }
reaction bad(reg r[0:7]) { int x = 0; }
"""
        )


def test_reaction_unknown_register_rejected():
    with pytest.raises(P4SemanticError):
        parse_p4r("reaction bad(reg ghost[0:1]) { int x = 0; }")


def test_malleable_requires_kind_keyword():
    with pytest.raises(P4SyntaxError):
        parse_p4r("malleable gizmo v { width : 8; }")


def test_duplicate_malleable_rejected():
    with pytest.raises(P4SemanticError):
        parse_p4r(
            "malleable value v { width : 8; init : 0; }\n"
            "malleable value v { width : 8; init : 0; }\n"
        )


def test_init_is_prepended_when_missing_from_alts():
    program = parse_p4r(
        """
header_type h_t { fields { f : 16; g : 16; } }
header h_t hdr;
malleable field m { width : 16; init : hdr.f; alts { hdr.g } }
"""
    )
    fld = program.malleable_fields["m"]
    assert [str(a) for a in fld.alts] == ["hdr.f", "hdr.g"]
    assert fld.init_index == 0
