"""Tests for the C-like reaction interpreter."""

import pytest

from repro.errors import ReactionError
from repro.p4r.creaction import CReaction, ReactionEnv


def run(source, **env_kwargs):
    return CReaction(source).run(ReactionEnv(**env_kwargs))


def test_arithmetic_and_return():
    assert run("return (2 + 3) * 4 - 6 / 2;") == 17


def test_c_division_truncates_toward_zero():
    assert run("return -7 / 2;") == -3
    assert run("return 7 / -2;") == -3
    assert run("return -7 % 2;") == -1


def test_division_by_zero_raises():
    with pytest.raises(ReactionError):
        run("return 1 / 0;")


def test_unsigned_wraparound():
    assert run("uint8_t x = 250; x += 10; return x;") == 4
    assert run("uint16_t x = 0; x -= 1; return x;") == 0xFFFF


def test_int_does_not_wrap():
    assert run("int x = 1; x = x << 70; return x;") == 1 << 70


def test_float_type():
    assert run("double x = 1; x = x / 4; return x;") == 0.25


def test_figure1_loop_body():
    # The paper's Figure 1 reaction: find the port with the deepest queue.
    qdepths = {i: 0 for i in range(1, 11)}
    qdepths[7] = 42
    writes = {}
    source = """
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
    """
    CReaction(source).run(
        ReactionEnv(
            args={"qdepths": qdepths},
            write_malleable=writes.__setitem__,
            read_malleable=lambda name: 0,
        )
    )
    assert writes == {"value_var": 7}


def test_static_variables_persist_across_runs():
    statics = {}
    reaction = CReaction("static int count = 0; count++; return count;")
    env = ReactionEnv(statics=statics)
    assert reaction.run(env) == 1
    assert reaction.run(env) == 2
    assert reaction.run(env) == 3


def test_static_array_persists():
    statics = {}
    reaction = CReaction(
        "static int hist[4]; hist[2] += 5; return hist[2];"
    )
    env = ReactionEnv(statics=statics)
    assert reaction.run(env) == 5
    assert reaction.run(env) == 10


def test_array_initializer():
    assert run("int a[3] = {10, 20, 30}; return a[0] + a[2];") == 40


def test_while_break_continue():
    source = """
    int total = 0;
    int i = 0;
    while (1) {
        i++;
        if (i > 10) break;
        if (i % 2 == 0) continue;
        total += i;
    }
    return total;
    """
    assert run(source) == 25  # 1+3+5+7+9


def test_ternary_and_logical_short_circuit():
    assert run("int x = 5; return x > 3 ? 100 : 200;") == 100
    # Right side of && must not run when the left is false.
    assert run("int x = 0; return (x != 0 && 1 / x) ? 1 : 2;") == 2


def test_pre_and_post_increment():
    assert run("int i = 5; int j = i++; return j * 100 + i;") == 506
    assert run("int i = 5; int j = ++i; return j * 100 + i;") == 606


def test_compound_assignment_ops():
    assert run("int x = 12; x &= 10; return x;") == 8
    assert run("int x = 12; x |= 3; return x;") == 15
    assert run("int x = 12; x ^= 10; return x;") == 6


def test_malleable_read_and_write():
    store = {"v": 7}
    result = CReaction("${v} = ${v} * 2; return ${v};").run(
        ReactionEnv(
            read_malleable=store.__getitem__,
            write_malleable=store.__setitem__,
        )
    )
    assert result == 14
    assert store["v"] == 14


def test_table_method_dispatch():
    class FakeTable:
        def __init__(self):
            self.entries = []

        def addEntry(self, *args):
            self.entries.append(args)
            return len(self.entries)

    table = FakeTable()
    result = run(
        "return acl.addEntry(1, 2, 3);", tables={"acl": table}
    )
    assert result == 1
    assert table.entries == [(1, 2, 3)]


def test_unknown_table_method_raises():
    class FakeTable:
        pass

    with pytest.raises(ReactionError):
        run("t.ghost(1);", tables={"t": FakeTable()})


def test_extern_functions():
    calls = []

    def reroute(port):
        calls.append(port)
        return 0

    run(
        "if (hb < 3) { reroute(4); }",
        args={"hb": 1},
        externs={"reroute": reroute},
    )
    assert calls == [4]


def test_builtin_min_max_abs():
    assert run("return min(3, 5) + max(3, 5) + abs(0 - 2);") == 10


def test_undefined_identifier_raises():
    with pytest.raises(ReactionError):
        run("return ghost;")


def test_assignment_to_undeclared_raises():
    with pytest.raises(ReactionError):
        run("ghost = 1;")


def test_break_outside_loop_raises():
    with pytest.raises(ReactionError):
        run("break;")


def test_scoping_block_locals():
    source = """
    int x = 1;
    { int x = 10; x++; }
    return x;
    """
    assert run(source) == 1


def test_register_args_use_original_indices():
    # A reg slice [4:6] binds a dict keyed by original indices.
    args = {"counts": {4: 40, 5: 50, 6: 60}}
    assert run("return counts[5];", args=args) == 50
    with pytest.raises(ReactionError):
        run("return counts[0];", args=args)


def test_hex_literals():
    assert run("return 0xff & 0x0f;") == 15


def test_multiplicative_compound_assignment():
    assert run("int x = 6; x *= 7; return x;") == 42
    assert run("int x = 42; x /= 5; return x;") == 8
    assert run("int x = 42; x %= 5; return x;") == 2


def test_shift_compound_assignment():
    assert run("int x = 3; x <<= 4; return x;") == 48
    assert run("int x = 48; x >>= 2; return x;") == 12


def test_string_literals_pass_through_calls():
    logged = []
    run('log("hello world");', externs={"log": logged.append})
    assert logged == ["hello world"]


def test_string_with_escaped_quote():
    logged = []
    run(r'log("say \"hi\"");', externs={"log": logged.append})
    assert logged == ['say "hi"']
