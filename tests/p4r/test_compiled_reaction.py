"""Differential tests: the compiled reaction engine must be
bit-identical to the reference interpreter.

Every program below runs under both :class:`CReaction` (the tuple-AST
interpreter, the semantic reference) and :class:`CompiledReaction`
(the exec-generated closure fast path) with identical environments,
and the full observable outcome must match:

- the returned value (or the exact ``ReactionError`` message),
- ``last_op_count`` (the agent charges simulated time per op, so the
  engines must agree operation-for-operation or timelines diverge),
- the ordered log of malleable reads/writes and table method calls,
- the final malleable state and the persistent static state.

Coverage comes in four layers: a hand-written corpus of semantic
corner cases, one reaction body per paper use case (dos / ecmp / rl /
sketch / failover), randomized whole programs (hypothesis), and
width-mask parity across every declarable C type.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ReactionError
from repro.fastbench import AGENT_DOS_REACTION_BODY
from repro.p4r import compiled_reaction as compiled_mod
from repro.p4r.compiled_reaction import CompiledReaction
from repro.p4r.creaction import (
    _FLOAT_TYPES,
    TYPE_MASKS,
    CReaction,
    ReactionEnv,
)


class FakeTable:
    """Records every method call so call order and arguments can be
    compared across engines."""

    def __init__(self, log, name):
        self.log = log
        self.name = name
        self._next = 0

    def addEntry(self, *args):
        self.log.append((self.name, "addEntry", args))
        self._next += 1
        return self._next

    def modEntry(self, *args):
        self.log.append((self.name, "modEntry", args))
        return 1

    def delEntry(self, *args):
        self.log.append((self.name, "delEntry", args))
        return 1


def make_env(statics, args=None, mbl=None, table_names=(), externs=None):
    mbl = dict(mbl or {})
    log = []

    def read_malleable(name):
        log.append(("read", name))
        return mbl.get(name, 0)

    def write_malleable(name, value):
        log.append(("write", name, value))
        mbl[name] = value

    env = ReactionEnv(
        args=dict(args or {}),
        read_malleable=read_malleable,
        write_malleable=write_malleable,
        tables={name: FakeTable(log, name) for name in table_names},
        statics=statics,
        externs=dict(externs or {}),
    )
    return env, mbl, log


def run_engine(cls, source, cfg, repeats):
    """Run ``repeats`` consecutive invocations (statics persist) and
    return (outcomes, final static state)."""
    cfg = cfg or {}
    statics = {}
    outcomes = []
    try:
        reaction = cls(source, name="rx")
    except ReactionError as exc:
        return [("parse-error", str(exc))], None
    args_seq = cfg.get("args_seq")
    for i in range(repeats):
        args = args_seq[i % len(args_seq)] if args_seq else cfg.get("args")
        env, mbl, log = make_env(
            statics,
            args=args,
            mbl=cfg.get("mbl"),
            table_names=cfg.get("tables", ()),
            externs=cfg.get("externs"),
        )
        try:
            value = reaction.run(env)
            outcomes.append(
                ("ok", value, reaction.last_op_count, tuple(log), dict(mbl))
            )
        except ReactionError as exc:
            outcomes.append(("error", str(exc), tuple(log), dict(mbl)))
    static_state = {
        key: (
            list(var.value) if isinstance(var.value, list) else var.value,
            var.ctype,
        )
        for key, var in statics.items()
    }
    return outcomes, static_state


def assert_differential(source, cfg=None, repeats=3):
    interp = run_engine(CReaction, source, cfg, repeats)
    compiled = run_engine(CompiledReaction, source, cfg, repeats)
    if interp != compiled:
        try:
            generated = CompiledReaction(source).python_source
        except ReactionError:
            generated = "<parse error>"
        pytest.fail(
            "engines diverge\n"
            f"  interp  : {interp}\n"
            f"  compiled: {compiled}\n"
            f"  source  : {source!r}\n"
            f"--- generated ---\n{generated}"
        )


# ---------------------------------------------------------------------------
# Corpus of semantic corner cases.

CORPUS = [
    ("empty", "", {}),
    ("return const", "return 1 + 2 * 3;", {}),
    ("locals", "int x = 5; uint8_t y = 300; return x + y;", {}),
    ("wrap", "uint8_t a = 255; a += 1; return a;", {}),
    ("int no wrap", "int x = 1; x = x << 70; return x;", {}),
    ("float", "float f = 1; f = f / 2; return f;", {}),
    ("div trunc", "int a = 0 - 7; return a / 2;", {}),
    ("mod sign", "int a = 0 - 7; return a % 3;", {}),
    ("ternary", "int x = 3; return x > 2 ? 10 : 20;", {}),
    ("logical",
     "int x = 0; int y = (x && 5) + (x || 7) + (3 && 2); return y;", {}),
    ("while loop",
     "int i = 0; int s = 0; while (i < 10) { s += i; i++; } return s;", {}),
    ("for loop",
     "int s = 0; for (int i = 0; i < 5; ++i) { s += i * i; } return s;", {}),
    ("for continue",
     "int s = 0; for (int i = 0; i < 6; i++) { if (i % 2) continue; s += i; }"
     " return s;", {}),
    ("for break",
     "int s = 0; for (int i = 0; ; i++) { if (i > 4) break; s += 1; }"
     " return s;", {}),
    ("nested loops",
     "int s = 0; for (int i = 0; i < 4; i++) { int j = 0; while (j < 3) {"
     " if (j == 2) { j++; continue; } s += i * j; j++; } } return s;", {}),
    ("array",
     "uint32_t a[4] = {1, 2, 3}; a[3] = a[0] + a[1]; a[1] += 10;"
     " return a[1] + a[3];", {}),
    ("static scalar", "static int calls = 0; calls += 1; return calls;", {}),
    ("static array", "static uint16_t h[4] = {9}; h[1]++; return h[0] + h[1];",
     {}),
    ("mbl rw", "${thresh} = ${thresh} + 5; return ${thresh};",
     {"mbl": {"thresh": 10}}),
    ("mbl compound", "${x} += 3; ${x} *= 2; return ${x};", {"mbl": {"x": 1}}),
    ("args", "return pkt_len * 2 + src;",
     {"args": {"pkt_len": 750, "src": 4}}),
    ("arg array", "return regs[0] + regs[1];", {"args": {"regs": [5, 6]}}),
    ("builtins", "return max(3, min(10, 7)) + abs(0 - 4);", {}),
    ("extern", "return double_it(21);",
     {"externs": {"double_it": lambda v: v * 2}}),
    ("table ops", "int id = t.addEntry(5, 1); t.modEntry(id, 9); return id;",
     {"tables": ("t",)}),
    ("preinc post",
     "int x = 5; int a = x++; int b = ++x; int c = x--; int d = --x;"
     " return a * 1000 + b * 100 + c * 10 + d;", {}),
    ("mbl inc", "${c}++; ++${c}; return ${c};", {"mbl": {"c": 0}}),
    ("array inc",
     "int a[3] = {5, 6, 7}; a[1]++; ++a[2]; return a[1] + a[2];", {}),
    ("shadowing", "int x = 1; { int x = 2; x += 10; } return x;", {}),
    ("cmp chain",
     "int a = 3; int b = 4; return (a < b) + (a <= 3) + (a == b) + (a != b)"
     " + (a > b) + (b >= 4);", {}),
    ("unary", "int x = 5; return !x + !0 + ~x + -x + +x;", {}),
    ("bit ops", "uint16_t x = 0xF0F0; return (x & 0xFF) | (x >> 8) ^ 3;", {}),
    ("side effect order",
     "int i = 0; int a[4] = {0,0,0,0}; a[i++] = i; a[i] = i++;"
     " return a[0] * 100 + a[1] * 10 + i;", {}),
    ("compound index side",
     "int i = 0; int a[3] = {1,2,3}; a[i++] += 10;"
     " return a[0] * 100 + a[1] * 10 + i;", {}),
    ("assign chain", "int x = 0; int y = 0; x = y = 7; return x + y * 10;",
     {}),
    ("static lazy",
     "int q = 1; if (q) { static int s = 99; s += 1; return s; } return 0;",
     {}),
    ("div by zero", "int z = 0; return 5 / z;", {}),
    ("mod by zero", "int z = 0; return 5 % z;", {}),
    ("bad index", "int a[2] = {1,2}; return a[5];", {}),
    ("bad store", "int a[2] = {1,2}; a[9] = 1; return 0;", {}),
    ("undef var", "return nope + 1;", {}),
    ("undeclared assign", "nope = 5;", {}),
    ("assign to arg", "x = 5;", {"args": {"x": 1}}),
    ("unknown fn", "return mystery(1);", {}),
    ("unknown table", "z.addEntry(1);", {}),
    ("no method", "t.frobnicate(1);", {"tables": ("t",)}),
    ("break outside", "break;", {}),
    ("scalar initlist", "int x = {1, 2};", {}),
    ("array bad init", "int a[3] = 5;", {}),
    ("string arg", 'log_it("hello"); return 0;',
     {"externs": {"log_it": lambda s: None}}),
    ("float default", "float f; return f;", {}),
    ("dict arg index", "return regs[0];", {"args": {"regs": {0: 42}}}),
    ("arg in loop",
     "int s = 0; for (int i = 0; i < n; i++) { s += i; } return s;",
     {"args": {"n": 8}}),
    ("static persists",
     "static int c = 0; static int h[2] = {0, 0}; c++; h[0] += c;"
     " return h[0];", {}),
    ("ternary side", "int x = 1; int y = (x ? x++ : --x); return x * 10 + y;",
     {}),
    ("logical side", "int x = 0; int r = (x++ || ++x); return r * 100 + x;",
     {}),
    ("method before args", "z.addEntry(boom());", {}),
    ("call arg order", "int i = 0; t.addEntry(i++, i); return i;",
     {"tables": ("t",)}),
]


@pytest.mark.parametrize(
    "source,cfg", [(src, cfg) for _name, src, cfg in CORPUS],
    ids=[name for name, _src, _cfg in CORPUS],
)
def test_corpus_differential(source, cfg):
    assert_differential(source, cfg)


# ---------------------------------------------------------------------------
# One reaction body per paper use case.  The app modules themselves
# attach host-side Python implementations; these are the equivalent
# creaction bodies, exercising each app's characteristic pattern.

ECMP_LB_WATCH = """
static uint32_t prev[16] = {0};
uint32_t marg[16] = {0};
uint32_t total = 0;
for (int i = 0; i < 16; i++) {
    marg[i] = egr_count[i] - prev[i];
    prev[i] = egr_count[i];
    total += marg[i];
}
uint32_t mean = total / 16;
uint32_t dev = 0;
for (int i = 0; i < 16; i++) {
    dev += marg[i] > mean ? marg[i] - mean : mean - marg[i];
}
if (total > 0 && dev * 4 > total) {
    ${hash_in1} = (${hash_in1} + 1) % 2;
}
return dev;
"""

RL_Q_LEARN = """
static long q[6] = {0, 0, 0, 0, 0, 0};
static int last_a = 0;
long reward = egr_pkts[0] - egr_depth[0] * 4;
q[last_a] = q[last_a] + (reward - q[last_a]) / 4;
int best = 0;
for (int a = 1; a < 6; a++) {
    if (q[a] > q[best]) { best = a; }
}
last_a = best;
${ecn_thresh} = (best + 1) * 10;
return q[best];
"""

SKETCH_CM_WATCH = """
static uint32_t prev_est = 0;
uint32_t est = 0;
for (int i = 0; i < 64; i++) {
    uint32_t v = cm_row0[i] < cm_row1[i] ? cm_row0[i] : cm_row1[i];
    if (v > est) { est = v; }
}
uint32_t delta = est - prev_est;
prev_est = est;
if (delta > ${hh_thresh}) {
    alerts.addEntry(est, "alert");
}
return est;
"""

FAILOVER_HB_WATCH = """
static uint32_t last[16] = {0};
static int down[16] = {0};
int failures = 0;
for (int p = 0; p < 16; p++) {
    if (hb_count[p] == last[p]) {
        if (down[p] == 0) {
            down[p] = 1;
            route.modEntry(p, "forward", (p + 1) % 16);
            failures++;
        }
    } else {
        down[p] = 0;
    }
    last[p] = hb_count[p];
}
${fail_count} += failures;
return failures;
"""


APP_REACTIONS = {
    "dos": (
        AGENT_DOS_REACTION_BODY,
        {
            "mbl": {"hot_src": 0, "hot_bytes": 0, "blocked": 0,
                    "threshold": 4000},
            "tables": ("blocklist",),
            "args_seq": [
                {"ipv4_srcAddr": 0x0AFF0001, "total_bytes": [1500]},
                {"ipv4_srcAddr": 0x0A000001, "total_bytes": [3000]},
                {"ipv4_srcAddr": 0x0AFF0001, "total_bytes": [9000]},
                {"ipv4_srcAddr": 0x0AFF0001, "total_bytes": [15000]},
            ],
        },
    ),
    "ecmp": (
        ECMP_LB_WATCH,
        {
            "mbl": {"hash_in1": 0},
            "args_seq": [
                {"egr_count": [i * 3 for i in range(16)]},
                {"egr_count": [i * 3 + (40 if i == 2 else 1)
                               for i in range(16)]},
                {"egr_count": [i * 3 + (90 if i == 2 else 2)
                               for i in range(16)]},
            ],
        },
    ),
    "rl": (
        RL_Q_LEARN,
        {
            "mbl": {"ecn_thresh": 20},
            "args_seq": [
                {"egr_pkts": [120], "egr_depth": [3]},
                {"egr_pkts": [80], "egr_depth": [30]},
                {"egr_pkts": [200], "egr_depth": [1]},
                {"egr_pkts": [10], "egr_depth": [60]},
            ],
        },
    ),
    "sketch": (
        SKETCH_CM_WATCH,
        {
            "mbl": {"hh_thresh": 500},
            "tables": ("alerts",),
            "args_seq": [
                {"cm_row0": [i * 7 % 97 for i in range(64)],
                 "cm_row1": [i * 13 % 89 for i in range(64)]},
                {"cm_row0": [(i * 7 % 97) + 600 for i in range(64)],
                 "cm_row1": [(i * 13 % 89) + 550 for i in range(64)]},
                {"cm_row0": [(i * 7 % 97) + 610 for i in range(64)],
                 "cm_row1": [(i * 13 % 89) + 560 for i in range(64)]},
            ],
        },
    ),
    "failover": (
        FAILOVER_HB_WATCH,
        {
            "mbl": {"fail_count": 0},
            "tables": ("route",),
            "args_seq": [
                {"hb_count": [5] * 16},
                {"hb_count": [6] * 8 + [5] * 8},  # ports 8-15 go stale
                {"hb_count": [7] * 8 + [5] * 8},  # still stale: no re-fire
                {"hb_count": [8] * 16},           # recovery
                {"hb_count": [9] * 8 + [8] * 8},  # fail again
            ],
        },
    ),
}


@pytest.mark.parametrize("app", sorted(APP_REACTIONS))
def test_app_reaction_differential(app):
    source, cfg = APP_REACTIONS[app]
    assert_differential(source, cfg, repeats=5)


def test_dos_reaction_blocks_attacker_in_both_engines():
    """Sanity beyond equality: the Fig. 15 body actually fires its
    blocklist insertion once the attacker crosses the threshold."""
    source, cfg = APP_REACTIONS["dos"]
    for cls in (CReaction, CompiledReaction):
        outcomes, _ = run_engine(cls, source, cfg, repeats=4)
        assert all(kind == "ok" for kind, *_rest in outcomes)
        final_mbl = outcomes[-1][4]
        assert final_mbl["blocked"] == 1
        adds = [entry for entry in outcomes[-1][3]
                if entry[:2] == ("blocklist", "addEntry")]
        assert len(adds) == 1


# ---------------------------------------------------------------------------
# Randomized whole programs.

_BINOPS = ["+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="]


@st.composite
def _expr(draw, names, depth=0):
    kind = draw(st.integers(0, 9 if depth < 3 else 1))
    if kind == 0:
        return str(draw(st.integers(0, 255)))
    if kind == 1:
        return draw(st.sampled_from(names))
    if kind == 2:
        return "arr[(%s) & 7]" % draw(_expr(names, depth + 1))
    if kind == 3:
        return "(%s %s %s)" % (
            draw(_expr(names, depth + 1)),
            draw(st.sampled_from(_BINOPS)),
            draw(_expr(names, depth + 1)),
        )
    if kind == 4:  # guarded division / modulo
        return "(%s %s ((%s) | 1))" % (
            draw(_expr(names, depth + 1)),
            draw(st.sampled_from(["/", "%"])),
            draw(_expr(names, depth + 1)),
        )
    if kind == 5:  # bounded shift
        return "(%s %s ((%s) & 7))" % (
            draw(_expr(names, depth + 1)),
            draw(st.sampled_from(["<<", ">>"])),
            draw(_expr(names, depth + 1)),
        )
    if kind == 6:
        return "(%s%s)" % (draw(st.sampled_from(["-", "~", "!"])),
                           draw(_expr(names, depth + 1)))
    if kind == 7:
        return "(%s ? %s : %s)" % tuple(
            draw(_expr(names, depth + 1)) for _ in range(3)
        )
    if kind == 8:
        return "(%s %s %s)" % (
            draw(_expr(names, depth + 1)),
            draw(st.sampled_from(["&&", "||"])),
            draw(_expr(names, depth + 1)),
        )
    return "${m0}"


@st.composite
def _stmts(draw, names, depth, in_loop, mutable=None):
    # Loop counters are readable but never assigned, so every
    # generated loop provably terminates.
    mutable = mutable if mutable is not None else names
    count = draw(st.integers(1, 4 if depth == 0 else 2))
    lines = []
    for _ in range(count):
        kind = draw(st.integers(0, 8 if depth < 2 else 4))
        if kind == 0:
            op = draw(st.sampled_from(["=", "+=", "-=", "*=", "&=", "|=",
                                       "^="]))
            # Mask the RHS so unbounded ``int`` locals stay small even
            # under *= in nested loops (bignum blowup otherwise).
            lines.append("%s %s ((%s) & 65535);"
                         % (draw(st.sampled_from(mutable)), op,
                            draw(_expr(names))))
        elif kind == 1:
            op = draw(st.sampled_from(["=", "+=", "^="]))
            lines.append("arr[(%s) & 7] %s ((%s) & 65535);"
                         % (draw(_expr(names)), op, draw(_expr(names))))
        elif kind == 2:
            lines.append("${m0} %s ((%s) & 65535);"
                         % (draw(st.sampled_from(["=", "+="])),
                            draw(_expr(names))))
        elif kind == 3:
            form = draw(st.sampled_from(["%s++;", "++%s;", "%s--;", "--%s;"]))
            lines.append(form % draw(st.sampled_from(mutable)))
        elif kind == 4 and in_loop:
            lines.append("if (%s) { %s }"
                         % (draw(_expr(names)),
                            draw(st.sampled_from(["break;", "continue;"]))))
        elif kind == 5:
            body = draw(_stmts(names, depth + 1, in_loop, mutable))
            if draw(st.booleans()):
                orelse = draw(_stmts(names, depth + 1, in_loop, mutable))
                lines.append("if (%s) { %s } else { %s }"
                             % (draw(_expr(names)), body, orelse))
            else:
                lines.append("if (%s) { %s }" % (draw(_expr(names)), body))
        elif kind == 6:
            var = "i%d" % depth
            bound = draw(st.integers(1, 4))
            body = draw(_stmts(names + [var], depth + 1, True, mutable))
            lines.append("for (int %s = 0; %s < %d; %s++) { %s }"
                         % (var, var, bound, var, body))
        elif kind == 7:
            var = "w%d" % depth
            bound = draw(st.integers(1, 4))
            body = draw(_stmts(names + [var], depth + 1, True, mutable))
            lines.append("{ int %s = %d; while (%s > 0) { %s--; %s } }"
                         % (var, bound, var, var, body))
        else:
            lines.append("t.addEntry(%s, %s);"
                         % (draw(_expr(names)), draw(_expr(names))))
    return " ".join(lines)


@st.composite
def random_program(draw):
    names = ["s0", "s1", "st0", "n"]
    prologue = (
        "int s0 = %d; uint8_t s1 = %d; static int st0 = 0; "
        "int arr[8] = {%s}; "
        % (
            draw(st.integers(0, 100)),
            draw(st.integers(0, 300)),
            ", ".join(str(draw(st.integers(0, 50))) for _ in range(8)),
        )
    )
    body = draw(_stmts(names, 0, False))
    return prologue + body + (" return %s;" % draw(_expr(names)))


@settings(max_examples=120, deadline=None)
@given(random_program())
def test_random_program_differential(source):
    cfg = {"mbl": {"m0": 0}, "tables": ("t",), "args": {"n": 9}}
    assert_differential(source, cfg, repeats=2)


# ---------------------------------------------------------------------------
# Width semantics: both engines consult the one shared mask table.

def test_engines_share_one_mask_table():
    assert compiled_mod.TYPE_MASKS is TYPE_MASKS
    assert compiled_mod._FLOAT_TYPES is _FLOAT_TYPES


@pytest.mark.parametrize("ctype", sorted(TYPE_MASKS))
def test_width_wrap_parity(ctype):
    source = (
        f"{ctype} x = 0; x -= 1; {ctype} y = x + 2; {ctype} z = x * x;"
        " return y;"
    )
    cfg = {}
    interp = run_engine(CReaction, source, cfg, 1)
    compiled = run_engine(CompiledReaction, source, cfg, 1)
    assert interp == compiled
    kind, value, _ops, _log, _mbl = interp[0][0]
    assert kind == "ok"
    mask = TYPE_MASKS[ctype]
    if ctype in _FLOAT_TYPES:
        assert value == 1.0
    elif mask is None:  # int / long carry arbitrary precision
        assert value == 1
    else:  # 0 - 1 wraps to the type's max; +2 wraps back to 1
        assert value == 1
        wrapped = run_engine(
            CReaction, f"{ctype} x = 0; x -= 1; return x;", cfg, 1
        )[0][0][1]
        assert wrapped == mask


def test_compiled_exposes_python_source_and_op_parity():
    source = "int x = 1; return x + 2;"
    reaction = CompiledReaction(source)
    assert "def __bind__" in reaction.python_source
    assert "def __run__" in reaction.python_source
    assert reaction.run(ReactionEnv()) == 3
    reference = CReaction(source)
    reference.run(ReactionEnv())
    assert reaction.last_op_count == reference.last_op_count
