"""Documentation consistency guards.

Every module, benchmark, and example that DESIGN.md / README.md /
EXPERIMENTS.md reference must actually exist, and the README's
embedded quickstart snippet must run.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(REPO, name)) as handle:
        return handle.read()


class TestReferencedPathsExist:
    @pytest.mark.parametrize("doc", ["DESIGN.md", "README.md",
                                     "EXPERIMENTS.md"])
    def test_benchmark_files_exist(self, doc):
        text = read(doc)
        for match in re.findall(r"benchmarks/test_[a-z0-9_]+\.py", text):
            assert os.path.exists(os.path.join(REPO, match)), match

    @pytest.mark.parametrize("doc", ["DESIGN.md", "README.md"])
    def test_modules_exist(self, doc):
        text = read(doc)
        for match in set(re.findall(r"repro\.[a-z_.]+[a-z]", text)):
            parts = match.split(".")
            # Resolve to a module path; tolerate attribute references
            # by checking successively shorter prefixes.
            for depth in range(len(parts), 1, -1):
                candidate = os.path.join(REPO, "src", *parts[:depth])
                if os.path.exists(candidate + ".py") or os.path.isdir(candidate):
                    break
            else:
                pytest.fail(f"{doc} references missing module {match}")

    def test_examples_listed_exist(self):
        text = read("README.md") + read("DESIGN.md")
        for match in set(re.findall(r"examples/[a-z_]+\.py", text)):
            assert os.path.exists(os.path.join(REPO, match)), match

    def test_docs_language_reference_exists(self):
        assert os.path.exists(os.path.join(REPO, "docs", "LANGUAGE.md"))


class TestReadmeQuickstart:
    def test_embedded_snippet_runs(self):
        """Extract the README's first python code block and exec it."""
        text = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README must contain a python quickstart"
        snippet = blocks[0]
        namespace = {}
        exec(compile(snippet, "README-quickstart", "exec"), namespace)
        system = namespace["system"]
        assert system.agent.iterations == 1

    def test_cli_commands_documented_match_parser(self):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands |= set(action.choices)
        text = read("README.md")
        for command in ("compile", "inspect", "run"):
            assert command in subcommands
            assert f"mantis {command}" in text
