"""Differential tests: the control-plane service must be *invisible*
to correctness.

- Blocking ops through a session leave bit-identical ASIC state,
  identical ``ops_issued``, and an identical clock versus the bare
  synchronous driver -- across every app program in the repo, and
  under a seeded fault plan (fault decisions replay identically
  because op timing is identical).
- Pipelined and bulk submission of the same logical op stream reach
  the same final state and the same ``ops_issued`` as synchronous
  execution.
- A seeded fault-plan sweep over the pipelined path proves
  exactly-once application: retries and backpressure rejections never
  double-apply a mutation.
"""

import pytest

from repro.apps.dos import DOS_P4R
from repro.apps.ecmp import ECMP_P4R
from repro.apps.fabric_lb import FABRIC_P4R
from repro.apps.failover import FAILOVER_P4R
from repro.apps.linkguard import LINKGUARD_P4R
from repro.apps.rl import RL_P4R
from repro.apps.sketch import SKETCH_P4R
from repro.faults import FaultPlan, FaultSpec
from repro.runtime.scheduler import Scheduler
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.compiled import asic_state_snapshot
from repro.switch.driver import RetryPolicy
from repro.system import MantisSystem

APP_PROGRAMS = {
    "dos": DOS_P4R,
    "ecmp": ECMP_P4R,
    "fabric_lb": FABRIC_P4R,
    "failover": FAILOVER_P4R,
    "linkguard": LINKGUARD_P4R,
    "rl": RL_P4R,
    "sketch": SKETCH_P4R,
}

STREAM_PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 32; } }
header h_t h;
register acc { width : 32; instance_count : 128; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
action nop() { no_op(); }
table t {
    reads { h.a : exact; }
    actions { fwd; nop; }
    default_action : nop();
    size : 1024;
}
control ingress { apply(t); }
"""


def run_agent(program, iterations=25, **kwargs):
    system = MantisSystem.from_source(
        program, record_timeline=True, **kwargs
    )
    system.agent.prologue()
    for _ in range(iterations):
        system.agent.run_iteration()
    return system


def timeline_tuples(driver):
    return [
        (op.start_us, op.end_us, op.kind, op.target, op.channel,
         op.excl_start_us, op.excl_end_us, op.ops)
        for op in driver.timeline
    ]


@pytest.mark.parametrize("name", sorted(APP_PROGRAMS))
def test_blocking_session_is_bit_identical_across_apps(name):
    plain = run_agent(APP_PROGRAMS[name])
    routed = run_agent(APP_PROGRAMS[name], ctrl_service=True)
    assert routed.driver.ops_issued == plain.driver.ops_issued
    assert routed.clock.now == plain.clock.now  # bit-identical, no approx
    assert asic_state_snapshot(routed.asic) == asic_state_snapshot(plain.asic)
    assert timeline_tuples(routed.driver) == timeline_tuples(plain.driver)


def test_blocking_session_is_bit_identical_under_faults():
    plan = FaultPlan(seed=7, specs=[
        FaultSpec(kind="transient", probability=0.08),
        FaultSpec(kind="latency", probability=0.1, extra_us=5.0),
        FaultSpec(kind="drop", probability=0.05),
    ])
    policy = RetryPolicy()
    plain = run_agent(
        DOS_P4R, iterations=40, fault_plan=plan, retry_policy=policy
    )
    routed = run_agent(
        DOS_P4R, iterations=40, fault_plan=plan, retry_policy=policy,
        ctrl_service=True,
    )
    assert plain.driver.op_attempts > plain.driver.ops_issued  # faults fired
    assert routed.driver.op_attempts == plain.driver.op_attempts
    assert routed.driver.ops_issued == plain.driver.ops_issued
    assert routed.clock.now == plain.clock.now
    assert asic_state_snapshot(routed.asic) == asic_state_snapshot(plain.asic)


def make_stream_ops(count=200):
    """A deterministic heterogeneous op stream over STREAM_PROGRAM."""
    ops = []
    for i in range(count):
        if i % 3 == 0:
            ops.append(("write_register", "acc", i % 128, i * 7))
        else:
            ops.append(("add", "t", [i], "fwd", [i % 16]))
    return ops


def apply_sync(ops):
    system = MantisSystem.from_source(STREAM_PROGRAM)
    driver = system.driver
    for op in ops:
        if op[0] == "write_register":
            driver.write_register(op[1], op[2], op[3])
        else:
            driver.add_entry(op[1], op[2], op[3], op[4])
    return system


def test_pipelined_stream_matches_sync_state_and_op_count():
    ops = make_stream_ops()
    sync = apply_sync(ops)

    system = MantisSystem.from_source(STREAM_PROGRAM, ctrl_service=True)
    scheduler = Scheduler(system.clock)
    system.ctrl.attach_scheduler(scheduler)
    session = system.ctrl.open_session("writer", priority="mantis")
    for op in ops:
        if op[0] == "write_register":
            session.submit_write_register(op[1], op[2], op[3])
        else:
            session.submit_add(op[1], op[2], op[3], op[4])
    session.drain()

    assert system.driver.ops_issued == sync.driver.ops_issued == len(ops)
    assert asic_state_snapshot(system.asic) == asic_state_snapshot(sync.asic)


def test_bulk_stream_matches_sync_state_and_op_count():
    ops = make_stream_ops()
    sync = apply_sync(ops)

    system = MantisSystem.from_source(STREAM_PROGRAM)
    chunk = 32
    for base in range(0, len(ops), chunk):
        system.driver.write_batch(ops[base:base + chunk])

    assert system.driver.ops_issued == sync.driver.ops_issued == len(ops)
    assert system.driver.bulk_txns == (len(ops) + chunk - 1) // chunk
    assert asic_state_snapshot(system.asic) == asic_state_snapshot(sync.asic)
    # Bulk took strictly less simulated time for the same stream.
    assert system.clock.now < sync.clock.now


def test_fault_sweep_pipelined_path_applies_exactly_once():
    """Seeded transient/latency faults + tiny queue (backpressure) on
    the async path: every accepted add lands exactly once -- no
    duplicates from retries, no losses from queue rejections that the
    feeder resubmits."""
    plan = FaultPlan(seed=3, specs=[
        FaultSpec(kind="transient", probability=0.25,
                  op_kinds=frozenset({"table_add"})),
        FaultSpec(kind="latency", probability=0.2, extra_us=4.0),
    ])
    system = MantisSystem.from_source(
        STREAM_PROGRAM, fault_plan=plan, retry_policy=RetryPolicy(),
        ctrl_service=True,
    )
    scheduler = Scheduler(system.clock)
    system.ctrl.attach_scheduler(scheduler)
    session = system.ctrl.open_session(
        "writer", priority="mantis", queue_limit=4
    )
    clock, events = system.clock, scheduler.events
    tickets = []
    keys = list(range(300))
    cursor = 0
    from repro.errors import BackpressureError

    while cursor < len(keys):
        key = keys[cursor]
        try:
            ticket = session.submit_add("t", [key], "fwd", [key % 16])
        except BackpressureError:
            next_time = events.peek_time()
            assert next_time is not None
            if next_time > clock.now:
                clock.advance_to(next_time)
            else:
                events.drain(clock.now)
            continue  # resubmit the same key
        tickets.append((key, ticket))
        cursor += 1
    session.drain()

    succeeded = [key for key, t in tickets if t.error is None]
    failed = [key for key, t in tickets if t.error is not None]
    assert system.driver.errors_total > 0, "sweep must actually inject"
    retried = system.ctrl.class_stats["mantis"].retried
    assert retried > 0, "sweep must actually retry"

    table = system.asic.get_table("t")
    entries = table.entries
    installed_keys = sorted(
        entry.key[0] if isinstance(entry.key, (list, tuple)) else entry.key
        for entry in entries.values()
    )
    # Exactly-once: each successful key appears exactly once, failed
    # keys not at all, and ops_issued counts successes only (retries
    # and rejections never double-count).
    assert installed_keys == sorted(succeeded)
    assert not set(failed) & set(installed_keys)
    assert system.driver.ops_issued == len(succeeded)


def test_bulk_transactions_are_all_or_nothing_under_transients():
    """A transient fault on a bulk txn rejects the whole chunk before
    any mutation lands; the retry then applies it exactly once."""
    plan = FaultPlan(seed=11, specs=[
        FaultSpec(kind="transient", probability=1.0, max_triggers=1,
                  op_kinds=frozenset({"bulk_write"})),
    ])
    system = MantisSystem.from_source(
        STREAM_PROGRAM, fault_plan=plan, retry_policy=RetryPolicy()
    )
    ops = [("write_register", "acc", i, i + 1) for i in range(16)]
    system.driver.write_batch(ops)
    register = system.asic.registers["acc"]
    assert [register.read(i) for i in range(16)] == list(range(1, 17))
    assert system.driver.ops_issued == 16
    assert system.driver.bulk_txns == 1
    assert system.driver.op_attempts == 2  # one rejected + one landed
