"""Unit tests for the pipelined channel model and the control-plane
service: reservation math, in-flight window, strict-priority
arbitration, bounded queues with backpressure, and fairness stats."""

import pytest

from repro.ctrl import CtrlService, PipelinedChannel, PRIORITY_CLASSES
from repro.errors import BackpressureError, DriverError
from repro.runtime.scheduler import Scheduler
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 32; } }
header h_t h;
register scratch { width : 32; instance_count : 64; }
action set_a(v) { modify_field(h.a, v); }
action nop() { no_op(); }
table t {
    reads { h.a : exact; }
    actions { set_a; nop; }
    default_action : nop();
    size : 256;
}
control ingress { apply(t); }
"""


def make_stack(**service_kwargs):
    system = MantisSystem.from_source(PROGRAM)
    scheduler = Scheduler(system.clock)
    service = CtrlService(system.driver, **service_kwargs)
    service.attach_scheduler(scheduler)
    return system, scheduler, service


# ---- channel math ----------------------------------------------------------


def test_uncontended_reservation_prices_like_sync():
    channel = PipelinedChannel(window=4)
    sched = channel.reserve(10.0, 10.6, 0.5, 0.9)
    assert sched.excl_start_us == 10.6  # waits for prep
    assert sched.excl_end_us == pytest.approx(11.1)
    assert sched.done_us == pytest.approx(12.0)  # pcie after the window
    assert channel.device_free_us == pytest.approx(11.1)


def test_contended_reservations_stack_on_device_only():
    channel = PipelinedChannel(window=4)
    first = channel.reserve(0.0, 0.0, 2.0, 0.9)
    second = channel.reserve(0.0, 0.5, 2.0, 0.9)
    # Second op's prep finished long before the device freed: its
    # window opens exactly when the first closes, and PCIe return of
    # the first overlaps the second's device window.
    assert second.excl_start_us == first.excl_end_us == 2.0
    assert second.done_us == pytest.approx(4.9)
    assert channel.device_busy_us == pytest.approx(4.0)


def test_utilization_is_busy_over_elapsed():
    channel = PipelinedChannel()
    channel.reserve(0.0, 0.0, 3.0, 0.0)
    assert channel.utilization(6.0) == pytest.approx(0.5)
    assert channel.utilization(0.0) == 0.0


# ---- service wiring --------------------------------------------------------


def test_open_session_validates_priority_and_name():
    _, _, service = make_stack()
    service.open_session("a", priority="mantis")
    with pytest.raises(DriverError):
        service.open_session("a", priority="mantis")  # duplicate
    with pytest.raises(DriverError):
        service.open_session("b", priority="realtime")  # unknown class


def test_submit_without_scheduler_is_an_error():
    system = MantisSystem.from_source(PROGRAM)
    service = CtrlService(system.driver)
    session = service.open_session("a")
    with pytest.raises(DriverError):
        session.submit_write_register("scratch", 0, 1)


def test_pipelined_submits_complete_with_correct_values():
    system, _, service = make_stack(window=4)
    session = service.open_session("writer", priority="mantis")
    tickets = [
        session.submit_write_register("scratch", i, 100 + i)
        for i in range(16)
    ]
    session.drain()
    assert all(t.done and t.error is None for t in tickets)
    register = system.asic.registers["scratch"]
    assert [register.read(i) for i in range(16)] == list(range(100, 116))
    # Completion times are strictly ordered and latencies positive.
    dones = [t.schedule.done_us for t in tickets]
    assert dones == sorted(dones)
    assert all(t.latency_us > 0 for t in tickets)
    assert system.driver.ops_issued == 16


def test_in_flight_window_bounds_admission():
    _, _, service = make_stack(window=2)
    session = service.open_session("writer", priority="mantis")
    for i in range(8):
        session.submit_write_register("scratch", i, i)
    # Only `window` ops admitted; the rest queue.
    assert service.in_flight == 2
    assert session.pending == 6
    session.drain()
    assert service.in_flight == 0
    assert session.pending == 0


def test_strict_priority_arbitration_orders_device_windows():
    _, _, service = make_stack(window=1)
    bulk = service.open_session("loader", priority="bulk")
    mantis = service.open_session("agent2", priority="mantis")
    legacy = service.open_session("legacy", priority="legacy")
    # Submit in worst-to-best order while the window is saturated by
    # the first bulk op; the queued ops must be admitted mantis >
    # legacy > bulk regardless of submit order.
    blocker = bulk.submit_write_register("scratch", 0, 1)
    t_bulk = bulk.submit_write_register("scratch", 1, 1)
    t_legacy = legacy.submit_write_register("scratch", 2, 1)
    t_mantis = mantis.submit_write_register("scratch", 3, 1)
    service.drain()
    assert blocker.schedule.excl_start_us < t_mantis.schedule.excl_start_us
    assert (
        t_mantis.schedule.excl_start_us
        < t_legacy.schedule.excl_start_us
        < t_bulk.schedule.excl_start_us
    )


def test_backpressure_bounds_the_queue_and_on_drain_fires():
    _, _, service = make_stack(window=1)
    session = service.open_session("loader", priority="bulk", queue_limit=4)
    drained = []
    session.on_drain = lambda: drained.append(service.clock.now)
    accepted = 0
    rejected = 0
    for i in range(12):
        try:
            session.submit_write_register("scratch", i % 64, i)
            accepted += 1
        except BackpressureError:
            rejected += 1
    assert rejected > 0
    # queue_limit bounds pending (one op is in flight, rest queued).
    assert session.pending <= 4
    assert service.class_stats["bulk"].rejected == rejected
    service.drain()
    assert drained, "on_drain must fire after a saturated queue empties"
    assert session.completed == accepted


def test_try_submit_returns_none_instead_of_raising():
    _, _, service = make_stack(window=1)
    session = service.open_session("loader", priority="bulk", queue_limit=1)
    assert session.try_submit_batch(
        [("write_register", "scratch", 0, 1)]
    ) is not None
    # Window holds op 1, queue holds op 2 -> the third is rejected.
    session.submit_write_register("scratch", 1, 1)
    assert session.try_submit_batch(
        [("write_register", "scratch", 2, 1)]
    ) is None
    service.drain()


def test_bulk_chunking_prices_one_txn_per_chunk():
    system, _, service = make_stack(window=4, bulk_chunk=8)
    session = service.open_session("loader", priority="bulk")
    ops = [("write_register", "scratch", i % 64, i) for i in range(20)]
    tickets = session.submit_batch(ops)
    assert len(tickets) == 3  # 8 + 8 + 4
    assert [t.op_count for t in tickets] == [8, 8, 4]
    session.drain()
    assert system.driver.ops_issued == 20
    assert system.driver.bulk_txns == 3
    model = system.driver.model
    for ticket in tickets:
        expected = model.bulk_write_cost(0, ticket.op_count)
        width = ticket.schedule.excl_end_us - ticket.schedule.excl_start_us
        assert width == pytest.approx(expected)


def test_fairness_stats_account_all_classes():
    _, _, service = make_stack(window=2)
    fast = service.open_session("fast", priority="mantis")
    slow = service.open_session("slow", priority="bulk")
    for i in range(6):
        fast.submit_write_register("scratch", i, i)
        slow.submit_write_register("scratch", 32 + i, i)
    service.drain()
    stats = service.stats()
    assert stats["classes"]["mantis"]["completed"] == 6
    assert stats["classes"]["bulk"]["completed"] == 6
    # Low-priority ops wait at least as long on average.
    assert (
        stats["classes"]["bulk"]["mean_wait_us"]
        >= stats["classes"]["mantis"]["mean_wait_us"]
    )
    assert stats["channel"]["reservations"] == 12
    assert 0.0 < stats["channel"]["utilization"] <= 1.0
    assert stats["sessions"]["fast"]["p99_latency_us"] >= \
        stats["sessions"]["fast"]["p50_latency_us"]


def test_priority_classes_are_the_documented_three():
    assert PRIORITY_CLASSES == {"mantis": 0, "legacy": 1, "bulk": 2}
