"""Figure 12 parity: the *live* legacy client through the
control-plane service must reproduce the *offline* queueing model.

The offline :func:`repro.agent.legacy.legacy_latencies` model replays
legacy arrivals against a recorded Mantis op timeline (each arrival
waits for the op holding the device, then runs).  The live
:class:`~repro.agent.legacy.LiveLegacyClient` issues real driver ops
through a service session at exactly those arrival times.  On the same
run they must agree: the offline model stays the golden cross-check
for the live path.

Known modeling delta: the offline model serializes software prep
*after* the device wait, while the live channel overlaps prep under
the wait -- so on contended arrivals the offline latency is up to one
prep time (0.6 us) higher.  The tolerances below absorb exactly that.
"""

from benchmarks.test_fig12_legacy import (
    LEGACY_INTERVAL_US,
    PROGRAM,
)
from repro.agent.legacy import LegacyClient, LiveLegacyClient, legacy_latencies
from repro.analysis.stats import percentile
from repro.runtime.scheduler import AgentActor, Scheduler
from repro.system import MantisSystem

WINDOW_US = 12_000.0


def run_live_experiment():
    system = MantisSystem.from_source(
        PROGRAM, ctrl_service=True, record_timeline=True
    )
    system.agent.prologue()
    scheduler = Scheduler(system.clock)
    system.ctrl.attach_scheduler(scheduler)

    session = system.ctrl.open_session("legacy", priority="legacy")
    live = LiveLegacyClient(
        session, "legacy_table", interval_us=LEGACY_INTERVAL_US
    )
    live.setup([1], "set_a", [0])

    start = system.clock.now
    live.start(scheduler, start, start + WINDOW_US)
    scheduler.spawn(AgentActor(system.agent, name="mantis-agent"))
    scheduler.run_until(start + WINDOW_US)
    system.ctrl.drain()
    return system, live, start


def test_live_legacy_matches_offline_model():
    system, live, start = run_live_experiment()
    assert len(live.latencies) > 1000  # a real 12 ms window at 11 us

    # Replay the offline model against this same run's recorded Mantis
    # timeline (async completion records can land slightly out of
    # excl-window order, so sort by window start first).
    window = sorted(
        (
            op for op in system.driver.timeline
            if op.channel == "mantis" and op.end_us > start
            and op.start_us < start + WINDOW_US
        ),
        key=lambda op: op.excl_start_us,
    )
    model = LegacyClient(system.driver, interval_us=LEGACY_INTERVAL_US)
    offline = legacy_latencies(window, live.arrival_times, model.op_cost_us)

    assert len(offline) == len(live.latencies)
    live_median = percentile(live.latencies, 50)
    live_p99 = percentile(live.latencies, 99)
    offline_median = percentile(offline, 50)
    offline_p99 = percentile(offline, 99)

    # The offline model may over-estimate by up to one prep time per
    # contended arrival, and back-to-back queued arrivals chain
    # through ``previous_done`` -- so allow one prep at the median and
    # two at the tail.  It must never under-estimate the shape.
    prep = system.driver.model.op_prep_us
    assert abs(live_median - offline_median) <= prep + 1e-9
    assert abs(live_p99 - offline_p99) <= 2 * prep + 1e-9
    # Mean agreement within half a prep: most arrivals are uncontended
    # and exact there.
    live_mean = sum(live.latencies) / len(live.latencies)
    offline_mean = sum(offline) / len(offline)
    assert abs(live_mean - offline_mean) <= 0.5 * prep

    # Both distributions show the Fig. 12 bimodal shape: an
    # uncontended op costs exactly prep + pcie + device.
    floor = model.op_cost_us
    assert min(live.latencies) >= floor - 1e-9
    assert percentile(live.latencies, 40) == floor
    assert max(live.latencies) > floor  # some arrivals did queue


def test_live_legacy_uncontended_floor_without_agent():
    """With no Mantis agent running, every live legacy update costs
    exactly the uncontended op cost -- the no-Mantis baseline of
    Fig. 12 reproduced live."""
    system = MantisSystem.from_source(
        PROGRAM, ctrl_service=True, record_timeline=True
    )
    scheduler = Scheduler(system.clock)
    system.ctrl.attach_scheduler(scheduler)
    session = system.ctrl.open_session("legacy", priority="legacy")
    live = LiveLegacyClient(
        session, "legacy_table", interval_us=LEGACY_INTERVAL_US
    )
    live.setup([1], "set_a", [0])
    start = system.clock.now
    live.start(scheduler, start, start + 2_000.0)
    scheduler.run_until(start + 2_000.0)
    system.ctrl.drain()

    model = LegacyClient(system.driver, interval_us=LEGACY_INTERVAL_US)
    assert live.latencies
    assert all(
        abs(lat - model.op_cost_us) < 1e-9 for lat in live.latencies
    )
