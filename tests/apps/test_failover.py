"""Use case #2 integration tests: gray-failure detection and reroute."""

import networkx as nx
import pytest

from repro.apps.failover import (
    GrayFailureApp,
    RouteManager,
    build_failover_scenario,
)
from repro.switch.packet import Packet


class TestRouteManager:
    def _manager(self):
        graph = nx.Graph()
        graph.add_edges_from(
            [("s0", "n0"), ("s0", "n1"), ("n0", "n1")]
        )
        return RouteManager(
            graph, "s0", {"n0": 0, "n1": 1}, {100: "n0", 101: "n1"}
        )

    def test_direct_routes(self):
        routes = self._manager().compute_routes()
        assert routes == {100: 0, 101: 1}

    def test_detour_after_failure(self):
        manager = self._manager()
        manager.fail_port(0)
        routes = manager.compute_routes()
        assert routes[100] == 1  # via n1 -> n0
        assert routes[101] == 1

    def test_unreachable(self):
        manager = self._manager()
        manager.graph.remove_edge("n0", "n1")
        manager.fail_port(0)
        assert manager.compute_routes()[100] is None


class TestGrayFailureDetection:
    def _scenario(self, **kwargs):
        app, sim, generators = build_failover_scenario(**kwargs)
        app.prologue()
        for generator in generators.values():
            generator.start(at_us=0.0)
        return app, sim, generators

    def test_no_false_positives_on_healthy_links(self):
        app, sim, _ = self._scenario()
        sim.run_until(1_000.0)
        assert not app.detected_ports
        assert app.recomputations == 0

    def test_hard_failure_detected_and_rerouted(self):
        app, sim, generators = self._scenario()
        sim.run_until(500.0)
        fail_time = sim.clock.now
        generators[2].stop()  # neighbor 2's heartbeats stop cold
        sim.run_until(fail_time + 1_000.0)
        assert 2 in app.detected_ports
        reaction_time = app.reroute_times[2] - fail_time
        # Paper: 100-200us end-to-end (Figure 16a).
        assert reaction_time < 400.0
        # Traffic to the failed neighbor's destination takes a detour.
        packet = Packet({"ipv4.dstAddr": 0x0A000102, "ipv4.proto": 6})
        result = app.system.asic.process(packet)
        assert result is not None
        port, _ = result
        assert port != 2

    def test_gray_failure_detected(self):
        """A lossy-but-up link (the gray failure of [28]) is detected
        when heartbeat delivery dips below eta."""
        app, sim, generators = self._scenario(eta=0.5)
        sim.run_until(500.0)
        generators[1].set_gray_loss(0.9)  # 10% delivery < eta = 50%
        fail_time = sim.clock.now
        sim.run_until(fail_time + 2_000.0)
        assert 1 in app.detected_ports

    def test_moderate_loss_below_eta_tolerated(self):
        app, sim, generators = self._scenario(eta=0.5)
        sim.run_until(500.0)
        generators[1].set_gray_loss(0.2)  # 80% delivery > eta = 50%
        sim.run_until(sim.clock.now + 2_000.0)
        assert 1 not in app.detected_ports

    def test_higher_eta_detects_faster(self):
        times = {}
        for eta in (0.2, 0.8):
            app, sim, generators = self._scenario(eta=eta)
            sim.run_until(500.0)
            fail_time = sim.clock.now
            generators[0].stop()
            sim.run_until(fail_time + 2_000.0)
            times[eta] = app.detected_ports[0] - fail_time
        # Both detect; impact of eta is low (Figure 16b) but monotone.
        assert times[0.8] <= times[0.2] + 50.0

    def test_routes_installed_atomically(self):
        """Reroute rules land via the three-phase protocol: after the
        reaction's iteration, every destination has a valid route."""
        app, sim, generators = self._scenario()
        sim.run_until(500.0)
        generators[0].stop()
        sim.run_until(sim.clock.now + 1_000.0)
        for dst in (0x0A000100, 0x0A000101, 0x0A000102, 0x0A000103):
            packet = Packet({"ipv4.dstAddr": dst, "ipv4.proto": 6})
            result = app.system.asic.process(packet)
            assert result is not None
            assert result[0] != 0
