"""Use case #4 integration tests: Q-learning over the ECN threshold."""

import pytest

from repro.apps.rl import (
    THRESHOLD_ACTIONS,
    QLearningConfig,
    QLearningEcnApp,
    build_rl_scenario,
)
from repro.switch.packet import Packet


class TestMarkingDataPlane:
    def test_marks_above_threshold_only(self):
        app = QLearningEcnApp()
        app.prologue()
        app.add_route(0x0B0000FF, 0)
        asic = app.system.asic
        # Below the init threshold (20): no mark.
        asic.ports[0].queue_depth = 5
        packet = Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 0x0B0000FF})
        asic.process(packet)
        assert packet.get("standard_metadata.ecn_marked") == 0
        # Above: marked.
        asic.ports[0].queue_depth = 50
        packet = Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 0x0B0000FF})
        asic.process(packet)
        assert packet.get("standard_metadata.ecn_marked") == 1

    def test_threshold_is_malleable(self):
        app = QLearningEcnApp()
        app.prologue()
        app.add_route(0x0B0000FF, 0)
        agent = app.system.agent
        agent.attach_python("q_learn", lambda ctx: None)
        agent.write_malleable("ecn_thresh", 2)
        agent.run_iteration()
        app.system.asic.ports[0].queue_depth = 5
        packet = Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 0x0B0000FF})
        app.system.asic.process(packet)
        assert packet.get("standard_metadata.ecn_marked") == 1


class TestQLearning:
    def test_observation_and_update_cycle(self):
        app = QLearningEcnApp()
        app.prologue()
        app.add_route(0x0B0000FF, 0)
        for _ in range(10):
            packet = Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 0x0B0000FF})
            app.system.asic.process(packet)
            app.system.agent.run_iteration()
        assert len(app.action_history) == 10
        assert len(app.rewards) == 9  # first iteration only observes
        # The written threshold is always one of the discrete actions.
        assert app.current_threshold in THRESHOLD_ACTIONS

    def test_epsilon_controls_exploration(self):
        greedy = QLearningEcnApp(QLearningConfig(epsilon=0.0))
        greedy.prologue()
        for _ in range(30):
            greedy.system.agent.run_iteration()
        assert greedy.explorations == 0

        explorer = QLearningEcnApp(QLearningConfig(epsilon=1.0))
        explorer.prologue()
        for _ in range(30):
            explorer.system.agent.run_iteration()
        assert explorer.explorations == 30

    def test_reward_prefers_throughput_and_short_queues(self):
        app = QLearningEcnApp()
        busy_short = app._reward(pkts_delta=100, elapsed_us=10.0, depth=0)
        busy_long = app._reward(pkts_delta=100, elapsed_us=10.0, depth=100)
        idle_short = app._reward(pkts_delta=0, elapsed_us=10.0, depth=0)
        assert busy_short > busy_long
        assert busy_short > idle_short

    def test_q_learning_latches_rewarded_action(self):
        """Synthetic environment check: if one threshold yields reward
        and the others do not, the greedy policy converges to it."""
        app = QLearningEcnApp(QLearningConfig(epsilon=0.3, seed=3))
        app.prologue()
        good_action = 2

        def fake_env(ctx):
            # Reward is delivered through the polled counters: give
            # packet progress only when the last action was `good`.
            app._reaction(ctx)
            if app.action_history[-1] == good_action:
                pkts = app.system.asic.registers["egr_pkts_p4r_dup_"]
                for index in range(pkts.instance_count):
                    pkts.write(index, (pkts.read(index) + 50) & 0xFFFFFFFF)
                ts = app.system.asic.registers["egr_pkts_p4r_ts_"]
                seq = app.system.asic.registers["egr_pkts_p4r_seq_"]
                seq.write(0, seq.read(0) + 1)
                for index in range(ts.instance_count):
                    ts.write(index, seq.read(0))

        app.system.agent.attach_python("q_learn", fake_env)
        for _ in range(300):
            app.system.agent.run_iteration()
        assert app.greedy_threshold(0) == THRESHOLD_ACTIONS[good_action]


class TestRlScenario:
    def test_learning_loop_with_dctcp_traffic(self):
        app, sim, flows, sink = build_rl_scenario(
            n_flows=4, bottleneck_gbps=1.0, queue_pkts=64
        )
        app.prologue()
        for flow in flows:
            flow.start(at_us=5.0)
        sim.run_until(5_000.0)
        # The loop ran, learned something, and traffic flowed.
        assert len(app.rewards) > 100
        assert sum(f.acked for f in flows) > 50
        # ECN marks actually influenced senders (DCTCP alpha moved)
        # OR the queue never exceeded any candidate threshold.
        marked_any = any(f.dctcp_alpha > 0 for f in flows)
        assert marked_any or sim.queue_depth(0) < max(THRESHOLD_ACTIONS)
