"""Use case #1 integration tests: DoS detection through the live
Mantis loop (data plane -> measurement -> reaction -> blocklist)."""

import pytest

from repro.apps.dos import DosMitigationApp, build_dos_scenario
from repro.switch.packet import Packet


class TestDosApp:
    def _app(self, **kwargs):
        app = DosMitigationApp(**kwargs)
        app.prologue()
        app.add_route(0x0B000001, 1)
        return app

    def _send(self, app, src, size=1500):
        packet = Packet(
            {"ipv4.srcAddr": src, "ipv4.dstAddr": 0x0B000001},
            size_bytes=size,
        )
        return app.system.asic.process(packet)

    def test_benign_sender_not_blocked(self):
        app = self._app(threshold_gbps=1.0, min_duration_us=10.0)
        # Slow sender: a packet every ~1000us of simulated time.
        for _ in range(10):
            self._send(app, src=42, size=200)
            app.system.clock.advance(1000.0)
            app.system.agent.run_iteration()
        assert not app.is_blocked(42)
        assert app.estimate(42) > 0

    def test_flooder_blocked_and_dropped(self):
        app = self._app(threshold_gbps=1.0, min_duration_us=10.0)
        # Flood: back-to-back 1500B packets, one per dialogue loop
        # (~7us) -> ~1.7 Gbps attributed rate, above threshold.
        for _ in range(30):
            self._send(app, src=666, size=1500)
            app.system.agent.run_iteration()
        assert app.is_blocked(666)
        assert 666 in app.block_times
        # Post-block packets are dropped in the data plane.
        assert self._send(app, src=666) is None
        # Other senders still pass.
        assert self._send(app, src=42) is not None

    def test_min_duration_prevents_spurious_blocks(self):
        app = self._app(threshold_gbps=0.001, min_duration_us=1e9)
        for _ in range(20):
            self._send(app, src=7, size=1500)
            app.system.agent.run_iteration()
        assert not app.is_blocked(7)

    def test_marginal_attribution_tracks_bytes(self):
        # High threshold so the sender is never blocked mid-test.
        app = self._app(threshold_gbps=1000.0)
        for _ in range(10):
            self._send(app, src=5, size=1000)
            app.system.agent.run_iteration()
        # Every packet polled (one per iteration): estimate ~ truth.
        assert app.estimate(5) == pytest.approx(10_000, rel=0.05)


class TestDosScenario:
    def test_full_timeline_mitigation(self):
        """The Figure 15 story end-to-end at reduced scale: benign TCP
        utilizes the bottleneck, the flood collapses it, Mantis blocks
        the flooder in ~100us and TCP recovers."""
        app, sim, flows, sink, attacker = build_dos_scenario(
            n_benign=6,
            bottleneck_gbps=5.0,
            attack_rate_gbps=25.0,
            threshold_gbps=2.0,
        )
        app.prologue()
        for flow in flows:
            flow.start(at_us=10.0)
        sim.run_until(3_000.0)
        baseline_acks = sum(f.acked for f in flows)
        assert baseline_acks > 0

        attack_start = sim.clock.now
        attacker.start()
        sim.run_until(attack_start + 2_000.0)
        attacker_src = 0x0AFF0001
        assert app.is_blocked(attacker_src)
        block_delay = app.block_times[attacker_src] - attack_start
        # Detection fires within ~1 dialogue iteration of the flow
        # becoming block-eligible (the paper's ~100us figure uses a
        # smaller minimum-observation window).
        assert block_delay < app.min_duration_us + 100.0
        # No benign sender was ever blocked.
        assert all(src == attacker_src for src in app.block_times)

        # After the block, the flood is dropped at ingress and TCP
        # keeps making progress.
        during = sum(f.acked for f in flows)
        sim.run_until(sim.clock.now + 3_000.0)
        after = sum(f.acked for f in flows)
        assert after > during
