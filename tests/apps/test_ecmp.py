"""Use case #3 integration tests: MAD-driven hash reconfiguration."""

import pytest

from repro.apps.ecmp import (
    NUM_PATHS,
    HashPolarizationApp,
    build_polarized_scenario,
)
from repro.switch.packet import Packet


def make_packet(src, sport=1000):
    return Packet(
        {
            "ipv4.srcAddr": src,
            "ipv4.dstAddr": 0x0B000001,
            "ipv4.proto": 6,
            "l4.sport": sport,
            "l4.dport": 443,
        },
        size_bytes=1000,
    )


class TestHashConfiguration:
    def test_load_strategy_chosen(self):
        app = HashPolarizationApp()
        spec = app.system.spec
        assert spec.fields["hash_in1"].strategy == "load"
        assert spec.fields["hash_in2"].strategy == "load"
        assert len(spec.load_tables) == 2

    def test_initial_config_polarizes(self):
        """All flows share dstAddr/proto, the initial hash inputs, so
        every flow lands in one bucket."""
        app = HashPolarizationApp()
        app.prologue()
        ports = set()
        for index in range(32):
            result = app.system.asic.process(make_packet(0x0A000001 + index * 7919))
            assert result is not None
            ports.add(result[0])
        assert len(ports) == 1

    def test_shifted_config_spreads(self):
        app = HashPolarizationApp()
        app.prologue()
        # Shift hash_in1 to srcAddr (alt 1).
        app.system.agent.write_malleable("hash_in1", 1)
        app.system.agent.run_iteration()
        ports = set()
        for index in range(32):
            result = app.system.asic.process(make_packet(0x0A000001 + index * 7919))
            ports.add(result[0])
        assert len(ports) >= 3  # spread across most of the 4 paths


class TestReactionLoop:
    def test_detects_imbalance_and_rebalances(self):
        app, sim, senders, sinks = build_polarized_scenario(n_flows=24)
        app.prologue()
        for sender in senders:
            sender.start(at_us=0.0)
        sim.run_until(4_000.0)
        # The reaction observed imbalance and shifted at least once.
        assert app.shift_times
        first_shift = app.shift_times[0]
        # ... and the post-shift balance is better than the initial.
        early = [s for s in app.samples if s.time_us < first_shift]
        late = app.samples[-5:]
        assert early and late
        worst_early = max(s.imbalance for s in early)
        avg_late = sum(s.imbalance for s in late) / len(late)
        assert avg_late < worst_early / 2

    def test_traffic_actually_spreads_after_shift(self):
        app, sim, senders, sinks = build_polarized_scenario(n_flows=24)
        app.prologue()
        for sender in senders:
            sender.start(at_us=0.0)
        sim.run_until(4_000.0)
        loaded_paths = [s for s in sinks if s.rx_packets > 10]
        assert len(loaded_paths) >= 3

    def test_no_shift_when_balanced(self):
        """Already-balanced traffic (varying srcAddr as hash input)
        never triggers a shift."""
        app, sim, senders, sinks = build_polarized_scenario(n_flows=24)
        app.prologue()
        # Pre-shift to the balanced config before traffic starts.
        app.system.agent.write_malleable("hash_in1", 1)
        app.system.agent.write_malleable("hash_in2", 1)
        app.config_index = 4  # keep the round-robin pointer in sync
        app.system.agent.run_iteration()
        shifts_before = len(app.shift_times)
        for sender in senders:
            sender.start(at_us=0.0)
        sim.run_until(4_000.0)
        assert len(app.shift_times) == shifts_before
