"""Estimator tests (the Figure 14 machinery)."""

import numpy as np
import pytest

from repro.apps.sketch import (
    CountMinSketch,
    HashTableEstimator,
    MantisSamplingEstimator,
    SFlowEstimator,
    estimation_errors,
    overall_error,
)
from repro.net.flows import Trace, TraceConfig, synthetic_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(TraceConfig(packets=60_000, flows=2_500, seed=14))


def single_flow_trace(packets=100, size=1000, src=0x0A000001):
    return Trace(
        times_us=np.arange(packets, dtype=np.float64),
        src_ips=np.full(packets, src, dtype=np.uint32),
        sizes=np.full(packets, size, dtype=np.uint32),
    )


class TestHashTable:
    def test_exact_without_collisions(self):
        trace = single_flow_trace()
        estimator = HashTableEstimator(entries=8192)
        estimator.process(trace)
        assert estimator.estimate(0x0A000001) == 100 * 1000

    def test_collisions_overcount(self):
        # Two flows, one slot: both estimates include both flows' bytes.
        trace = synthetic_trace(TraceConfig(packets=2_000, flows=50))
        estimator = HashTableEstimator(entries=1)
        estimator.process(trace)
        total = int(trace.sizes.sum())
        for src in list(trace.true_flow_sizes())[:5]:
            assert estimator.estimate(src) == total


class TestCountMin:
    def test_never_undercounts(self, trace):
        sketch = CountMinSketch(entries=2048, stages=2)
        sketch.process(trace)
        for src, true_bytes in list(trace.true_flow_sizes().items())[:200]:
            assert sketch.estimate(src) >= true_bytes

    def test_more_entries_reduce_error(self, trace):
        small = CountMinSketch(entries=512)
        large = CountMinSketch(entries=8192)
        small.process(trace)
        large.process(trace)
        assert overall_error(large, trace) < overall_error(small, trace)


class TestSFlow:
    def test_unsampled_flows_estimate_zero(self):
        trace = single_flow_trace(packets=10)
        estimator = SFlowEstimator(sample_rate=30000)
        estimator.process(trace)
        assert estimator.estimate(0x0A000001) == 0

    def test_estimates_scale_by_rate(self):
        trace = single_flow_trace(packets=30_000, size=1000)
        estimator = SFlowEstimator(sample_rate=100, seed=3)
        estimator.process(trace)
        estimate = estimator.estimate(0x0A000001)
        assert estimate == pytest.approx(30_000 * 1000, rel=0.3)


class TestMantisEstimator:
    def test_exact_for_single_flow(self):
        trace = single_flow_trace(packets=100, size=700)
        estimator = MantisSamplingEstimator(poll_every=5, phase=4)
        estimator.process(trace)
        # All marginals attributed to the only flow.
        assert estimator.estimate(0x0A000001) == pytest.approx(
            100 * 700, rel=0.06
        )

    def test_error_bounded_by_sampling(self, trace):
        estimator = MantisSamplingEstimator(poll_every=5)
        estimator.process(trace)
        # Large flows: small relative error.
        truth = trace.true_flow_sizes()
        big = [s for s, b in truth.items() if b > 500_000]
        for src in big[:20]:
            rel = abs(estimator.estimate(src) - truth[src]) / truth[src]
            assert rel < 0.5


class TestFigure14Shape:
    """The paper's two qualitative results."""

    def test_mantis_beats_sflow_by_orders_of_magnitude(self, trace):
        """sFlow's sampling granularity dominates: for flows at or
        above it, Mantis's ~400x higher sampling rate wins by >10x
        (our trace keeps the paper's ratio of the two rates)."""
        mantis = MantisSamplingEstimator(poll_every=5)
        sflow = SFlowEstimator(sample_rate=2000, seed=5)
        mantis.process(trace)
        sflow.process(trace)
        mantis_buckets = estimation_errors(mantis, trace)
        sflow_buckets = estimation_errors(sflow, trace)
        # The two largest-flow buckets (where sFlow has any signal).
        for m, s in zip(mantis_buckets[-2:], sflow_buckets[-2:]):
            assert m.avg_rel_error < s.avg_rel_error / 10
        assert overall_error(mantis, trace) < overall_error(sflow, trace)

    def test_mantis_beats_sketch_for_small_flows(self, trace):
        """With the paper's flows-per-slot ratio (~45), sketch error
        for small flows is collision-dominated and unbounded; Mantis's
        is bounded by sampling error -- orders of magnitude apart."""
        flows = len(trace.true_flow_sizes())
        matched_entries = max(64, flows // 45)
        mantis = MantisSamplingEstimator(poll_every=5)
        sketch = CountMinSketch(entries=matched_entries, stages=2)
        mantis.process(trace)
        sketch.process(trace)
        mantis_buckets = estimation_errors(mantis, trace)
        sketch_buckets = estimation_errors(sketch, trace)
        assert (
            mantis_buckets[0].avg_rel_error
            < sketch_buckets[0].avg_rel_error / 50
        )

    def test_comparable_for_large_flows(self, trace):
        mantis = MantisSamplingEstimator(poll_every=5)
        sketch = CountMinSketch(entries=8192, stages=2)
        mantis.process(trace)
        sketch.process(trace)
        mantis_buckets = estimation_errors(mantis, trace)
        sketch_buckets = estimation_errors(sketch, trace)
        # Largest populated bucket: same order of magnitude.
        m = mantis_buckets[-1].avg_rel_error
        s = sketch_buckets[-1].avg_rel_error
        assert m < max(10 * s, 0.5)
