"""LinkGuardian-style lossy-link protection (use case #6).

Covers the detector math (windowed loss estimate, wraparound masking,
corruption clamp), the protect -> clean-window -> restore state
machine, and the end-to-end scenario: a seeded lossy link, probes
feeding the gap counters, and the Mantis reaction rerouting the data
path onto the parallel link.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.apps.linkguard import (
    DATA_DST,
    LINKGUARD_P4R,
    LinkGuardApp,
    build_linkguard_scenario,
    guard_sink_addr,
    run_linkguard,
)
from repro.system import MantisSystem


def _data_route_ports(app: LinkGuardApp) -> set:
    """Egress ports of every installed route entry for the data dst
    (one per malleable version)."""
    table = app.system.asic.tables["route"]
    return {
        entry.action_args[0]
        for entry in table.entries.values()
        if entry.key[0] == DATA_DST and entry.action_name == "forward"
    }


def _unit_app(**kwargs) -> LinkGuardApp:
    defaults = dict(
        guards={0: 1},
        dst_routes={},
        min_window_probes=256,
        clean_windows=3,
    )
    defaults.update(kwargs)
    return LinkGuardApp(**defaults)


def _feed(app: LinkGuardApp, seen: int, gaps: int, now: float = 0.0):
    ctx = SimpleNamespace(
        args={"rx_seen": {0: seen}, "rx_gaps": {0: gaps}},
        now=now,
        table=lambda name: None,
    )
    app._reaction(ctx)


class TestDetectorMath:
    def test_first_sample_only_baselines(self):
        app = _unit_app()
        _feed(app, 500, 3)
        state = app.guards[0]
        assert state.prev_seen == 500 and state.prev_gaps == 3
        assert state.acc_seen == 0 and not state.protected

    def test_loss_estimate_and_protect(self):
        app = _unit_app(loss_threshold=5e-3)
        _feed(app, 0, 0)
        _feed(app, 990, 10, now=100.0)  # ~1% loss over 1000 probes
        state = app.guards[0]
        assert state.loss_estimate == pytest.approx(0.01)
        assert state.protected
        assert app.protections == 1
        assert app.protect_times[0] == [100.0]

    def test_below_threshold_does_not_protect(self):
        app = _unit_app(loss_threshold=5e-3)
        _feed(app, 0, 0)
        _feed(app, 999, 1)
        assert app.guards[0].loss_estimate == pytest.approx(1e-3)
        assert not app.guards[0].protected

    def test_sub_window_samples_accumulate(self):
        """255 probes is below min_window_probes: no estimate yet; the
        next delta completes the window and the combined loss counts."""
        app = _unit_app()
        _feed(app, 0, 0)
        _feed(app, 250, 5)
        assert app.guards[0].loss_estimate == 0.0
        _feed(app, 500, 10)
        assert app.guards[0].loss_estimate == pytest.approx(10 / 510)

    def test_counter_wraparound_is_masked(self):
        app = _unit_app()
        _feed(app, 0xFFFFFF00, 0)
        _feed(app, 0x00000200, 2)  # seen wrapped: delta = 0x300
        state = app.guards[0]
        assert state.loss_estimate == pytest.approx(2 / (0x300 + 2))

    def test_corruption_clamp_caps_gap_burst(self):
        """A corrupted 32-bit sequence number inflates rx_gaps by ~2^31;
        the clamp keeps one window's gap delta proportional to the
        probes actually seen, so the estimate saturates instead of
        wrapping into nonsense."""
        app = _unit_app()
        _feed(app, 0, 0)
        _feed(app, 300, 2**31 + 5)
        state = app.guards[0]
        cap = 4 * (300 + 1)
        assert state.loss_estimate == pytest.approx(cap / (300 + cap))
        assert state.protected  # saturated estimate still trips protect

    def test_restore_after_clean_windows(self):
        app = _unit_app(restore_threshold=1e-3, clean_windows=3)
        _feed(app, 0, 0)
        _feed(app, 900, 100, now=1.0)  # protect
        assert app.guards[0].protected
        seen = 900
        for step in range(3):
            seen += 1000
            _feed(app, seen, 100, now=2.0 + step)  # zero new gaps
        assert not app.guards[0].protected
        assert app.restores == 1
        assert app.restore_times[0] == [4.0]

    def test_dirty_window_resets_clean_streak(self):
        app = _unit_app(restore_threshold=1e-3, clean_windows=2)
        _feed(app, 0, 0)
        _feed(app, 900, 100)  # protect
        _feed(app, 1900, 100)  # clean window 1
        _feed(app, 2800, 200)  # lossy again: streak resets
        _feed(app, 3800, 200)  # clean window 1 (again)
        assert app.guards[0].protected
        _feed(app, 4800, 200)  # clean window 2 -> restore
        assert not app.guards[0].protected

    def test_invalid_protect_mode_rejected(self):
        with pytest.raises(ValueError):
            _unit_app(protect_mode="quarantine")


class TestScenarioWiring:
    def test_build_installs_probe_and_route_plumbing(self):
        scenario = build_linkguard_scenario(1e-2)
        app0, app1 = scenario.apps
        app0.prologue()
        assert _data_route_ports(app0) == {0}  # data pinned to link 0
        filt = app0.system.asic.tables["probe_filter"]
        sinks = {entry.key[1] for entry in filt.entries.values()}
        assert sinks == {guard_sink_addr(0, 0), guard_sink_addr(0, 1)}
        assert len(scenario.probes) == 4
        assert scenario.fault is not None
        assert scenario.fault.drop_rate == 1e-2
        assert scenario.link0.fault_models == [scenario.fault]
        assert scenario.link1.fault_models == []

    def test_zero_loss_builds_no_fault(self):
        scenario = build_linkguard_scenario(0.0)
        assert scenario.fault is None
        assert scenario.link0.fault_models == []

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            build_linkguard_scenario(1e-2, transport="carrier-pigeon")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def protected_run(self):
        return run_linkguard(5e-2, protection=True, duration_us=1500.0)

    def test_protection_fires_and_reroutes(self, protected_run):
        assert protected_run["protections"] >= 1
        assert protected_run["protect_time_us"] is not None
        assert protected_run["protect_time_us"] < 1000.0

    def test_loss_estimate_tracks_injected_rate(self, protected_run):
        assert 0.01 <= protected_run["s0_loss_estimate"] <= 0.15

    def test_data_keeps_flowing_after_reroute(self, protected_run):
        assert protected_run["delivered_packets"] > 0
        assert protected_run["throughput_gbps"] > 0

    def test_conservation_ledger_balances(self, protected_run):
        totals = protected_run["drop_totals"]
        sent_everything = (
            totals["delivered"]
            + totals["switch_drops"]
            + totals["egress_dropped"]
            + totals["rx_dropped"]
            + totals["port_fault_dropped"]
            + totals["link_fault_dropped"]
        )
        # Per-link probes + the data flow: every packet put on a wire
        # is accounted for exactly once.
        assert totals["link_fault_dropped"] > 0
        assert sent_everything > 0

    def test_baseline_agents_frozen(self):
        result = run_linkguard(5e-2, protection=False, duration_us=800.0)
        assert result["protections"] == 0
        assert result["protect_time_us"] is None
        assert result["link_fault_dropped"] > 0

    def test_clean_link_never_protects(self):
        result = run_linkguard(0.0, protection=True, duration_us=1000.0)
        assert result["protections"] == 0
        assert result["s0_loss_estimate"] <= 1e-3
        assert result["link_fault_dropped"] == 0

    def test_windowed_fault_protects_then_restores(self):
        scenario = build_linkguard_scenario(
            8e-2,
            fault_from_us=300.0,
            fault_until_us=1000.0,
            clean_windows=2,
        )
        app0, app1 = scenario.apps
        app0.prologue()
        app1.prologue()
        start = scenario.clock.now
        for probe in scenario.probes:
            probe.start()
        scenario.flow.start()
        scenario.fabric.run_until(start + 3000.0, agent=True)
        assert app0.protections >= 1
        assert app0.restores >= 1
        protect_at = app0.protect_times[0][0]
        restore_at = app0.restore_times[0][0]
        assert protect_at > 300.0
        assert restore_at > 1000.0
        assert not app0.guards[0].protected
        # Routes are back on the primary link after restore.
        assert _data_route_ports(app0) == {0}

    def test_reroute_flips_installed_route(self):
        scenario = build_linkguard_scenario(8e-2)
        app0, app1 = scenario.apps
        app0.prologue()
        app1.prologue()
        start = scenario.clock.now
        for probe in scenario.probes:
            probe.start()
        scenario.flow.start()
        scenario.fabric.run_until(start + 1200.0, agent=True)
        assert app0.guards[0].protected
        assert 1 in _data_route_ports(app0)  # backup link now serves dst
