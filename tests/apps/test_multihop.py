"""Multi-hop failover across a two-switch fabric (Section 8.3.2
scaled up): both Mantis agents run as scheduled actors on one
timeline, and cutting an inter-switch link reroutes the data path.
"""

from __future__ import annotations

import pytest

from repro.apps.failover import (
    H1_ADDR,
    build_multihop_failover,
    hb_sink_addr,
    run_multihop_failover,
)
from repro.net import topology


class TestFabricPairTopology:
    def test_views_share_one_graph(self):
        view0, view1 = topology.fabric_pair()
        assert view0.graph is view1.graph
        assert view0.switch_node == "s0"
        assert view1.switch_node == "s1"

    def test_parallel_links_are_distinct_nodes(self):
        view0, _ = topology.fabric_pair(n_links=3)
        assert {view0.port_map[f"l{i}"] for i in range(3)} == {0, 1, 2}
        assert view0.port_map["h0"] == 3

    def test_single_link_rejected(self):
        with pytest.raises(Exception):
            topology.fabric_pair(n_links=1)


class TestMultiHopFailover:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_multihop_failover(duration_us=600.0, fail_at_us=200.0)

    def test_reroutes_around_dead_link(self, summary):
        assert summary["rerouted"] is True
        detection = summary["detection"]
        assert detection["s0_port0_detected_us"] > summary["fail_time_us"]
        assert detection["s0_rerouted_us"] >= detection["s0_port0_detected_us"]

    def test_both_switches_detect_independently(self, summary):
        detection = summary["detection"]
        assert detection["s1_port0_detected_us"] is not None
        assert summary["recomputations"] == {"s0": 1, "s1": 1}

    def test_delivery_continues_after_failover(self, summary):
        # The blackout costs at most the detection window's worth of
        # packets; the vast majority of the flow survives the cut.
        assert summary["sink_rx_packets"] > 0.8 * summary["sender_tx_packets"]
        # Traffic arrived in the windows after the reroute.
        rerouted_at = summary["detection"]["s0_rerouted_us"]
        post = [gbps for start, gbps in summary["sink_timeline_gbps"]
                if start > rerouted_at + 40.0]
        assert post and max(post) > 0.0

    def test_both_agents_scheduled_on_one_timeline(self, summary):
        iters = summary["agent_iterations"]
        # Interleaved busy-loops: neither agent starves the other.
        assert iters["s0"] > 10 and iters["s1"] > 10
        assert abs(iters["s0"] - iters["s1"]) <= 2
        # Every iteration after the two prologue commits (one direct
        # run_iteration per app) was an actor turn on the scheduler.
        assert summary["agent_actor_fires"] == iters["s0"] + iters["s1"] - 2

    def test_dead_link_charges_drops(self, summary):
        assert summary["s0_link0_dropped"] > 0

    def test_detection_latency_within_a_few_dialogues(self, summary):
        # Two consecutive violations at busy-loop cadence: the latency
        # is a handful of dialogue iterations, far under the run.
        assert 0 < summary["detection"]["detection_latency_us"] < 100.0


class TestLinkFlapRepair:
    """Satellite: ``restore_link_at`` models flap-and-repair -- the
    cable comes back, probes resume crossing it, and drops stop
    accumulating after the repair."""

    @pytest.fixture(scope="class")
    def flapped(self):
        scenario = build_multihop_failover()
        app0, app1 = scenario.apps
        app0.prologue()
        app1.prologue()
        for generator in scenario.generators:
            generator.start()
        scenario.sender.start()
        fabric = scenario.fabric
        start = scenario.clock.now
        link0 = fabric.links[0]
        fabric.fail_link_at(link0, start + 150.0)
        fabric.restore_link_at(link0, start + 300.0)
        s1 = fabric.switch("s1")
        counters = {}
        fabric.run_until(start + 290.0, agent=True)
        counters["during"] = s1.system.asic.registers["hb_count"].values[0]
        counters["drops_during"] = link0.fault_dropped + sum(
            fabric.switch(n).port_stats(0).dropped for n in ("s0", "s1")
        )
        fabric.run_until(start + 600.0, agent=True)
        counters["after"] = s1.system.asic.registers["hb_count"].values[0]
        counters["drops_after"] = link0.fault_dropped + sum(
            fabric.switch(n).port_stats(0).dropped for n in ("s0", "s1")
        )
        return scenario, link0, counters

    def test_link_is_back_up(self, flapped):
        _, link0, _ = flapped
        assert link0.up is True

    def test_probes_resume_after_repair(self, flapped):
        _, _, counters = flapped
        # hb_count[0] at s1 counts heartbeats that crossed link 0; it
        # froze during the outage and moves again after the repair.
        assert counters["after"] > counters["during"] + 100

    def test_dead_cable_charged_only_during_outage(self, flapped):
        scenario, _, counters = flapped
        assert counters["drops_during"] > 0
        # Post-repair traffic stops feeding the drop counters.
        resumed = counters["after"] - counters["during"]
        grew = counters["drops_after"] - counters["drops_during"]
        assert grew < resumed

    def test_data_still_delivered(self, flapped):
        scenario, _, _ = flapped
        assert scenario.sink.rx_packets > 0


class TestScenarioWiring:
    def test_probe_addressing_is_per_switch_per_link(self):
        assert hb_sink_addr(0, 0) != hb_sink_addr(0, 1)
        assert hb_sink_addr(0, 0) != hb_sink_addr(1, 0)

    def test_transit_switch_forwards_foreign_probes(self):
        """s0 must not count (or eat) probes addressed to s1."""
        scenario = build_multihop_failover()
        app0, app1 = scenario.apps
        app0.prologue()
        app1.prologue()
        for generator in scenario.generators:
            generator.start()
        scenario.fabric.run_until(scenario.clock.now + 60.0, agent=False)
        s1 = scenario.fabric.switch("s1")
        # Probes originated at s0's generators crossed the fabric and
        # were counted at s1 (hb_count indexed by s1's ingress port).
        counts = s1.system.asic.registers["hb_count"].values
        assert counts[0] > 0 and counts[1] > 0
        # And symmetrically at s0.
        s0 = scenario.fabric.switch("s0")
        counts0 = s0.system.asic.registers["hb_count"].values
        assert counts0[0] > 0 and counts0[1] > 0

    def test_data_path_uses_link0_initially(self):
        scenario = build_multihop_failover()
        app0, app1 = scenario.apps
        app0.prologue()
        app1.prologue()
        scenario.sender.start()
        scenario.fabric.run_until(scenario.clock.now + 50.0, agent=False)
        assert scenario.sink.rx_packets > 0
        s0 = scenario.fabric.switch("s0")
        assert s0.port_stats(0).tx_packets > 0
        # Data rides link 0; link 1 carries only probes (64 B).
        assert s0.port_stats(1).tx_bytes < s0.port_stats(0).tx_bytes
