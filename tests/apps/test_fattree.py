"""FatTree(4) fleet rebalancing: 16 hosts, 20 switches, one scheduler
driving every per-switch agent; Mantis rebalancing must measurably
beat static ECMP hashing on max-link utilization."""

from __future__ import annotations

import pytest

from repro.apps.fabric_lb import (
    DATA_PROTO,
    NUM_BUCKETS,
    _hash_bucket,
    build_fattree_rebalance,
    compare_fattree,
    find_colliding_addr,
    find_spreading_sport,
    run_fattree_rebalance,
)

DURATION_US = 800.0


@pytest.fixture(scope="module")
def comparison():
    return compare_fattree(duration_us=DURATION_US)


class TestAdversarialSearch:
    def test_colliding_addr_lands_in_bucket(self):
        for base in (0x0B000000, 0x0B012300):
            addr = find_colliding_addr(base, bucket=0)
            assert _hash_bucket(addr, DATA_PROTO) == 0
            assert addr >= base

    def test_spreading_sport_lands_in_bucket(self):
        addr = find_colliding_addr(0x0B000000, bucket=0)
        for bucket in range(NUM_BUCKETS):
            sport = find_spreading_sport(addr, bucket=bucket)
            assert _hash_bucket(addr, sport) == bucket


class TestScenarioShape:
    def test_fleet_scale(self):
        scenario = build_fattree_rebalance()
        assert len(scenario.built.switches) == 20
        assert len(scenario.spec.hosts) == 16
        assert len(scenario.senders) == 8
        assert len(scenario.sinks) == 8
        assert sum(len(s.flows) for s in scenario.senders) == 32
        # Every flow's service address collides into bucket 0 under the
        # initial (dstAddr, proto) hash inputs -- total polarization.
        for sender in scenario.senders:
            for flow in sender.flows:
                fields = flow["fields"]
                assert _hash_bucket(
                    fields["ipv4.dstAddr"], fields["ipv4.proto"]
                ) == 0

    def test_one_scheduler_drives_all_agents(self, comparison):
        mantis = comparison["mantis"]
        fires = mantis["per_agent_fires"]
        assert len(fires) == 20
        assert all(count > 0 for count in fires.values())
        assert mantis["agent_actor_fires"] == sum(fires.values())


class TestRebalancing:
    def test_static_run_is_polarized(self, comparison):
        static = comparison["static"]
        assert static["max_link_utilization"] >= 0.5
        assert static["total_shifts"] == 0
        assert static["delivery_rate"] > 0.95
        assert static["drop_totals"]["switch_drops"] == 0

    def test_mantis_beats_static(self, comparison):
        """The acceptance gate: the reactive fleet's max-link
        utilization must beat static hashing by a clear margin."""
        static_max = comparison["static_max_utilization"]
        mantis_max = comparison["mantis_max_utilization"]
        assert mantis_max <= 0.75 * static_max
        assert comparison["improvement"] >= 0.25
        mantis = comparison["mantis"]
        assert mantis["shifting_switches"] >= 8
        assert mantis["delivery_rate"] > 0.95

    def test_rebalancing_converges(self):
        """After the shifts settle, every shifting switch's imbalance
        is far below the detection threshold (window-boundary jitter of
        a packet or two is fine; re-polarization is not)."""
        scenario = build_fattree_rebalance()
        fabric = scenario.fabric
        start = fabric.clock.now
        for sender in scenario.senders:
            sender.start()
        fabric.run_until(start + 1200.0, agent=True)
        shifted = [a for a in scenario.apps.values() if a.shift_times]
        assert len(shifted) >= 8
        for app in shifted:
            assert app.samples[-1].imbalance < 0.1
            # No shift in the last stretch of the run: settled.
            assert app.shift_times[-1] < start + 900.0

    def test_per_switch_summaries_present(self, comparison):
        per_switch = comparison["mantis"]["per_switch"]
        assert len(per_switch) == 20
        core_forwarded = sum(
            per_switch[f"c{x}"]["forwarded"] for x in range(4)
        )
        assert core_forwarded > 0
        for stats in per_switch.values():
            assert stats["tx_packets"] >= stats["forwarded"] >= 0


class TestPinnedModes:
    def test_round_robin_mode_runs(self):
        summary = run_fattree_rebalance(
            duration_us=200.0, mantis=False, mode="round_robin"
        )
        assert summary["delivery_rate"] > 0.9
        assert summary["route_summary"]["e0_0"]["ecmp_group"] == []
