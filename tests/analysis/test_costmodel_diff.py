"""The driver op-count predictors must match what the agent actually
issues, per dialogue iteration, in every commit/poll configuration.

A three-malleable program compiled with ``max_init_action_params=3``
pins the init-table layout: the master table carries (vv, mv, a) and
``b`` and ``c`` each land in their own shadow table.  The reaction
rewrites ``a`` with its own value (deduplicated by dirty-diff) and
increments ``b`` every iteration (exactly one dirty shadow), so the
expected op counts are knowable in closed form and
``predict_iteration_ops`` is checked against measured
``Driver.ops_issued`` deltas -- not against timings.
"""

import pytest

from repro.analysis.costmodel import (
    predict_commit_ops,
    predict_iteration_ops,
    predict_mv_flip_ops,
    predict_poll_ops,
)
from repro.compiler.transform import CompilerOptions
from repro.system import MantisSystem

MINI_P4R = """
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header ethernet_t ethernet;
parser start { extract(ethernet); return ingress; }

register r { width : 32; instance_count : 1; }

malleable value a { width : 32; init : 1; }
malleable value b { width : 32; init : 2; }
malleable value c { width : 32; init : 3; }

action nop_a() { no_op(); }
table passthru {
    actions { nop_a; }
    default_action : nop_a();
}
control ingress { apply(passthru); }

reaction step(reg r[0:0]) {
    ${a} = ${a};
    ${b} = ${b} + 1;
    return ${b};
}
"""


def build(**kwargs):
    system = MantisSystem.from_source(
        MINI_P4R,
        options=CompilerOptions(max_init_action_params=3),
        num_ports=4,
        **kwargs,
    )
    system.agent.prologue()
    return system


def measured_ops_per_iteration(system, iterations=5):
    """Steady-state driver ops per dialogue iteration (the first
    iteration is discarded: delta polling always misses it)."""
    system.agent.run_iteration()
    deltas = []
    for _ in range(iterations):
        before = system.driver.ops_issued
        system.agent.run_iteration()
        deltas.append(system.driver.ops_issued - before)
    assert len(set(deltas)) == 1, f"iterations not steady: {deltas}"
    return deltas[0]


def test_layout_assumption_one_master_two_shadows():
    system = build()
    inits = system.spec.init_tables
    assert sum(1 for t in inits if t.master) == 1
    assert sum(1 for t in inits if not t.master) == 2


def test_diff_commit_ops_match_predictor():
    system = build(commit_mode="diff")
    predicted = predict_iteration_ops(
        system.spec, commit_mode="diff", dirty_shadows=1
    )
    assert measured_ops_per_iteration(system) == predicted
    # Closed form: 1 mv flip + 2 poll (ts+dup) + 3 commit
    # (1 prepare + 1 vv flip + 1 mirror).
    assert predicted == 6


def test_full_commit_ops_match_predictor():
    system = build(commit_mode="full")
    predicted = predict_iteration_ops(
        system.spec, commit_mode="full", dirty_shadows=1
    )
    assert measured_ops_per_iteration(system) == predicted
    # Both shadows rewritten although only one changed.
    assert predicted == 8


def test_diff_commits_issue_fewer_ops_than_full():
    diff = measured_ops_per_iteration(build(commit_mode="diff"))
    full = measured_ops_per_iteration(build(commit_mode="full"))
    assert diff < full


def test_verified_diff_commit_ops_match_predictor():
    system = build(commit_mode="diff", verify_commits=True)
    predicted = predict_iteration_ops(
        system.spec, commit_mode="diff", dirty_shadows=1, verify_commits=True
    )
    assert measured_ops_per_iteration(system) == predicted


def test_delta_polling_ops_match_predictor():
    system = build(commit_mode="diff", delta_polling=True)
    # No data-plane traffic: after the first poll the seq register
    # never advances, so every steady-state poll is a delta hit.
    predicted = predict_iteration_ops(
        system.spec, commit_mode="diff", dirty_shadows=1,
        delta_polling=True, delta_hits=1,
    )
    assert measured_ops_per_iteration(system) == predicted
    baseline = predict_iteration_ops(
        system.spec, commit_mode="diff", dirty_shadows=1
    )
    assert predicted < baseline


def test_delta_polling_miss_pays_the_seq_read():
    spec = build().spec
    miss = predict_poll_ops(spec, "step", delta_polling=True, delta_hits=0)
    plain = predict_poll_ops(spec, "step")
    hit = predict_poll_ops(spec, "step", delta_polling=True, delta_hits=1)
    assert miss == plain + 1
    assert hit == plain - 1


def test_component_predictors_sum_to_iteration():
    spec = build().spec
    total = predict_iteration_ops(spec, commit_mode="diff", dirty_shadows=1)
    parts = (
        predict_mv_flip_ops()
        + predict_poll_ops(spec, "step")
        + predict_commit_ops(spec, commit_mode="diff", dirty_shadows=1)
    )
    assert total == parts


@pytest.mark.parametrize("mode,expected_hit_rate", [("diff", 0.5)])
def test_dirty_diff_hit_rate_reported(mode, expected_hit_rate):
    """Of the two malleable writes per iteration, the self-assignment
    of ``a`` is always deduplicated and the ``b`` increment never is."""
    system = build(commit_mode=mode)
    for _ in range(6):
        system.agent.run_iteration()
    health = system.agent.health()
    assert health.commit_mode == mode
    assert health.dirty_diff_hit_rate == pytest.approx(expected_hit_rate)
