"""Tests for stats, resource accounting, and the cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.costmodel import (
    predict_measurement_us,
    predict_reaction_time_us,
    predict_update_us,
)
from repro.analysis.resources import resource_report
from repro.analysis.stats import mad, mean, median, percentile
from repro.compiler import compile_p4r
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.driver import DriverCostModel


class TestStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_mad(self):
        # Values 1..9: median 5, deviations 0..4 -> MAD 2.
        assert mad(list(range(1, 10))) == 2

    def test_mad_robust_to_outlier(self):
        balanced = [10, 10, 10, 10, 10]
        skewed = [10, 10, 10, 10, 1000]
        assert mad(balanced) == 0
        assert mad(skewed) == 0  # MAD ignores a single outlier
        assert mad([10, 11, 30, 50, 90]) > 0

    def test_percentile(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99
        assert percentile(values, 50) == pytest.approx(50, abs=1)

    def test_empty_rejected(self):
        for fn in (median, mad, mean):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_median_bounded_by_extremes(self, values):
        assert min(values) <= median(values) <= max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
           st.floats(min_value=-100, max_value=100))
    def test_mad_translation_invariant(self, values, shift):
        assert mad([v + shift for v in values]) == pytest.approx(
            mad(values), abs=1e-6
        )


BASIC_ROUTER = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { dstAddr : 32; } }
header ipv4_t ipv4;
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : lpm; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 1024;
}
control ingress { apply(route); }
"""


class TestResourceReport:
    def test_basic_router(self):
        report = resource_report(parse_p4(BASIC_ROUTER))
        assert report.tables == 1
        assert report.stages == 1
        assert report.tcam_bytes > 0  # lpm table in TCAM
        assert report.metadata_bits == 0

    def test_dependent_tables_stack_stages(self):
        program = parse_p4(
            BASIC_ROUTER
            + """
header_type m_t { fields { x : 16; } }
metadata m_t m;
action set_x() { modify_field(m.x, 1); }
action use_x() { modify_field(ipv4.dstAddr, m.x); }
table t1 { actions { set_x; } default_action : set_x(); }
table t2 { actions { use_x; } default_action : use_x(); }
control egress { apply(t1); apply(t2); }
"""
        )
        report = resource_report(program)
        # ingress(1) + egress(t1=1, t2 depends on t1 -> 2) = 3
        assert report.stages == 3

    def test_mantis_overhead_is_marginal(self):
        source = BASIC_ROUTER + """
malleable value threshold { width : 32; init : 100; }
action mark() { modify_field(ipv4.dstAddr, ${threshold}); }
table marker { actions { mark; } default_action : mark(); }
control egress { apply(marker); }

reaction tune(ing ipv4.dstAddr) {
    ${threshold} = ipv4_dstAddr;
}
"""
        baseline = resource_report(parse_p4(BASIC_ROUTER))
        compiled = compile_p4r(source)
        full = resource_report(compiled.p4)
        marginal = full.minus(baseline)
        assert marginal.tables >= 2  # init + collect + marker
        assert marginal.metadata_bits >= 32 + 2  # threshold + vv + mv
        assert marginal.registers >= 1  # measurement container
        assert "stages=" in marginal.row()


class TestCostModel:
    def setup_method(self):
        self.model = DriverCostModel()

    def test_scalar_updates_constant(self):
        one = predict_update_us(self.model, scalar_updates=1)
        many = predict_update_us(self.model, scalar_updates=64)
        assert one == many

    def test_table_mods_linear(self):
        one = predict_update_us(self.model, table_entry_mods=1)
        ten = predict_update_us(self.model, table_entry_mods=10)
        assert ten == pytest.approx(10 * one)

    def test_register_burst_sublinear(self):
        small = predict_measurement_us(
            self.model, register_entries=1, register_arrays=1
        )
        large = predict_measurement_us(
            self.model, register_entries=64, register_arrays=1
        )
        assert large < 64 * small
        assert large > small

    def test_reaction_formula_matches_agent(self):
        """The formula predicts the measured dialogue latency within a
        reasonable envelope (it omits interpreter overhead C)."""
        from repro.system import MantisSystem

        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register r { width : 32; instance_count : 8; }
malleable value v { width : 32; init : 0; }
action keep() { register_write(r, 0, hdr.f); }
table t { actions { keep; } default_action : keep(); }
control ingress { apply(t); }
reaction fast(ing hdr.f, reg r[0:7]) {
    ${v} = hdr_f;
}
"""
        system = MantisSystem.from_source(source)
        system.agent.prologue()
        system.agent.run(50)
        measured = system.agent.avg_reaction_time_us
        predicted = predict_reaction_time_us(
            system.driver.model, system.spec, "fast"
        )
        assert predicted == pytest.approx(measured, rel=0.35)
