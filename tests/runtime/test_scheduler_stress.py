"""Scheduler stress: hundreds of actors, equal-timestamp cohorts,
cancel/re-arm churn.  The fleet-scale contract: deterministic FIFO
firing at equal instants, no dropped or double-fired turns, O(1)
bookkeeping (exercised indirectly -- 200+ actors through thousands of
turns must stay exact)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.runtime import CallbackActor, Scheduler

N_ACTORS = 240


class _Recorder(CallbackActor):
    """Fires at a fixed period, recording (time, index) into a shared
    log."""

    def __init__(self, index, log, period_us=10.0):
        self.index = index
        self.log = log
        super().__init__(self._run, period_us=period_us,
                         name=f"rec{index}")

    def _run(self, now_us):
        self.log.append((now_us, self.index))
        return None  # period reschedules


class TestEqualTimestampCohorts:
    def test_fifo_order_within_every_cohort(self):
        """240 actors all armed at t=0 with the same period: every
        wakeup instant must replay the arming order exactly."""
        scheduler = Scheduler()
        log = []
        actors = [_Recorder(i, log) for i in range(N_ACTORS)]
        for actor in actors:
            scheduler.spawn(actor)
        scheduler.run_until(100.0)

        rounds = 10  # t = 0, 10, ..., 90 (strictly before the horizon)
        assert len(log) == N_ACTORS * rounds
        for round_index in range(rounds):
            cohort = log[round_index * N_ACTORS:(round_index + 1) * N_ACTORS]
            times = {t for t, _ in cohort}
            assert times == {round_index * 10.0}
            assert [i for _, i in cohort] == list(range(N_ACTORS))

    def test_interleaved_periods_deterministic(self):
        """Mixed periods produce one deterministic global order: two
        identical runs must match event for event."""

        def run_once():
            scheduler = Scheduler()
            log = []
            for i in range(N_ACTORS):
                scheduler.spawn(_Recorder(i, log, period_us=5.0 + (i % 7)))
            scheduler.run_until(200.0)
            return log

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) > N_ACTORS * 20

    def test_per_actor_accounting(self):
        scheduler = Scheduler()
        log = []
        for i in range(8):
            scheduler.spawn(_Recorder(i, log))
        scheduler.run_until(55.0)
        stats = scheduler.actor_stats()
        assert stats == {f"rec{i}": 6 for i in range(8)}
        assert scheduler.actor_fires == 48


class TestCancelRearmUnderLoad:
    def test_cancel_is_exact_no_drop_no_double_fire(self):
        """Half the fleet is cancelled from *inside* an equal-timestamp
        batch; cancelled actors must not fire again in that batch or
        ever after, and survivors must not lose a single turn."""
        scheduler = Scheduler()
        fired = {i: 0 for i in range(N_ACTORS)}
        actors = {}

        def make(i):
            def run(now_us):
                fired[i] += 1
                if i == 0 and now_us == 20.0:
                    # Mid-batch mass cancel: every odd actor (all of
                    # them due at this same instant, most not yet run).
                    for j in range(1, N_ACTORS, 2):
                        scheduler.cancel(actors[j])
                return None

            return CallbackActor(run, period_us=10.0, name=f"a{i}")

        for i in range(N_ACTORS):
            actors[i] = make(i)
            scheduler.spawn(actors[i])
        scheduler.run_until(51.0)

        for i in range(N_ACTORS):
            if i % 2 == 0:
                assert fired[i] == 6, f"even actor {i} lost a turn"
            else:
                # Fired at t=0, 10; cancelled inside the t=20 batch
                # before its own turn came up (actor 0 runs first).
                assert fired[i] == 2, f"odd actor {i}: {fired[i]} fires"

    def test_rearm_from_batch_fires_once_at_new_time(self):
        """Re-arming an actor whose turn is pending in the current
        batch must supersede that turn, not add to it."""
        scheduler = Scheduler()
        log = []
        victim_log = []

        victim = CallbackActor(
            lambda now: victim_log.append(now) or None,
            period_us=None, name="victim",
        )

        def leader_run(now_us):
            log.append(now_us)
            if now_us == 0.0:
                # Victim is due NOW (same batch, armed after leader);
                # push its turn to t=7 instead.
                scheduler.arm(victim, 7.0)
            return None

        scheduler.spawn(CallbackActor(leader_run, period_us=100.0,
                                      name="leader"))
        scheduler.spawn(victim)
        scheduler.run_until(50.0)
        assert victim_log == [7.0]  # exactly once, at the re-armed time

    def test_rearm_same_instant_fires_after_cohort(self):
        """Re-arming at the *same* instant keeps the actor in the
        timeline but moves it to the back of the cohort (fresh
        sequence number), still exactly one fire."""
        scheduler = Scheduler()
        order = []

        tail = CallbackActor(lambda now: order.append("tail") or None,
                             period_us=None, name="tail")

        def head_run(now_us):
            order.append("head")
            scheduler.arm(tail, now_us)  # same instant, new seq
            return None

        scheduler.spawn(CallbackActor(head_run, period_us=None,
                                      name="head"))
        scheduler.spawn(tail)
        mids = []
        for i in range(50):
            mid = CallbackActor(
                lambda now, i=i: order.append(f"m{i}") or None,
                period_us=None, name=f"m{i}",
            )
            mids.append(mid)
            scheduler.spawn(mid)
        scheduler.run_until(1.0)
        assert order[0] == "head"
        assert order[1:51] == [f"m{i}" for i in range(50)]
        # The re-armed tail fires once, after the whole cohort (its
        # original turn was superseded).
        assert order[51:] == ["tail"]

    def test_churn_loop_conserves_turns(self):
        """Random-free deterministic churn: actors cancel and re-arm
        each other every round for 100 rounds; total fires must equal
        the closed-form expectation (nothing lost, nothing doubled)."""
        scheduler = Scheduler()
        n = 200
        fires = {i: 0 for i in range(n)}
        actors = {}

        def make(i):
            def run(now_us):
                fires[i] += 1
                partner = (i + 1) % n
                # Cancel the partner's pending turn and immediately
                # re-arm it for the next round: net effect, exactly
                # one turn per round each -- IF cancel+arm compose
                # exactly.
                scheduler.cancel(actors[partner])
                scheduler.arm(actors[partner], now_us + 10.0)
                return None  # retire this turn; partner re-arms us

            return CallbackActor(run, period_us=None, name=f"c{i}")

        for i in range(n):
            actors[i] = make(i)
            scheduler.spawn(actors[i])
        scheduler.run_until(1001.0)

        # Round at t=0: every EVEN actor fires (each even i cancels
        # odd i+1's pending same-instant turn before it comes up and
        # re-arms it for t=10), so rounds alternate: evens fire on
        # even rounds, odds on odd rounds, 100 fires per round.  With
        # 101 rounds (t = 0..1000) evens get 51 turns, odds 50 --
        # exact conservation iff cancel+re-arm compose exactly.
        total = sum(fires.values())
        assert total == 100 * 101
        for i in range(n):
            assert fires[i] == (51 if i % 2 == 0 else 50), (
                f"actor {i}: {fires[i]} fires"
            )

    def test_unspawned_actor_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(SimulationError):
            scheduler.arm(CallbackActor(lambda now: None))
