"""Scheduler semantics: actors + events on one timeline."""

import pytest

from repro.errors import SimulationError
from repro.runtime import AgentActor, CallbackActor, Scheduler
from repro.switch.clock import SimClock
from repro.system import MantisSystem

PROGRAM = """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; proto : 8; } }
header ipv4_t ipv4;
header_type tmp_t { fields { c : 32; } }
metadata tmp_t tmp;
register seen { width : 32; instance_count : 4; }
action bump() {
    register_read(tmp.c, seen, 0);
    add(tmp.c, tmp.c, 1);
    register_write(seen, 0, tmp.c);
}
table t {
    reads { ipv4.proto : exact; }
    actions { bump; }
    default_action : bump();
    size : 4;
}
control ingress { apply(t); }
reaction watch(reg seen[0:3]) { }
"""


class TestEvents:
    def test_at_and_after_fire_in_order(self):
        scheduler = Scheduler()
        log = []
        scheduler.at(5.0, lambda now: log.append(("a", now)))
        scheduler.at(2.0, lambda now: log.append(("b", now)))
        scheduler.after(3.0, lambda now: log.append(("c", now)))
        scheduler.run_until(10.0, actors=False)
        assert log == [("b", 2.0), ("c", 3.0), ("a", 5.0)]
        assert scheduler.clock.now == 10.0

    def test_after_negative_delay_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(SimulationError):
            scheduler.after(-1.0, lambda now: None)

    def test_event_exactly_at_horizon_runs(self):
        scheduler = Scheduler()
        log = []
        scheduler.at(10.0, lambda now: log.append(now))
        scheduler.at(10.5, lambda now: log.append(now))
        scheduler.run_until(10.0)
        assert log == [10.0]
        # The later event is still pending for the next run.
        scheduler.run_until(20.0)
        assert log == [10.0, 10.5]

    def test_cascading_events(self):
        scheduler = Scheduler()
        log = []

        def first(now):
            log.append(("first", now))
            scheduler.after(1.0, lambda n: log.append(("second", n)))

        scheduler.at(3.0, first)
        scheduler.run_until(10.0)
        assert log == [("first", 3.0), ("second", 4.0)]

    def test_quiescence_run_terminates(self):
        scheduler = Scheduler()
        log = []
        scheduler.at(7.0, lambda now: log.append(now))
        scheduler.run_until()  # no horizon: drain everything
        assert log == [7.0]
        assert scheduler.clock.now == 7.0


class TestActors:
    def test_periodic_actor_fires_strictly_before_horizon(self):
        scheduler = Scheduler()
        fired = []
        actor = CallbackActor(lambda now: fired.append(now), period_us=10.0)
        scheduler.spawn(actor)
        scheduler.run_until(50.0)
        # Turns at 0,10,20,30,40; the turn at 50 waits for the next run
        # (the legacy busy-loop's ``while now < T`` contract).
        assert fired == [0.0, 10.0, 20.0, 30.0, 40.0]
        scheduler.run_until(60.0)
        assert fired[-1] == 50.0

    def test_equal_time_actors_fire_in_spawn_order(self):
        scheduler = Scheduler()
        log = []
        scheduler.spawn(CallbackActor(lambda now: log.append("a") or 100.0))
        scheduler.spawn(CallbackActor(lambda now: log.append("b") or 100.0))
        scheduler.run_until(50.0)
        assert log == ["a", "b"]

    def test_event_en_route_runs_during_clock_advance(self):
        # An event earlier than the next actor turn runs via the clock
        # listener while the scheduler advances toward the actor.
        scheduler = Scheduler()
        log = []
        scheduler.spawn(
            CallbackActor(lambda now: log.append(("actor", now)) or 20.0),
            at_us=10.0,
        )
        scheduler.at(4.0, lambda now: log.append(("event", now)))
        scheduler.run_until(15.0)
        assert log == [("event", 4.0), ("actor", 10.0)]

    def test_cancel_and_rearm(self):
        scheduler = Scheduler()
        fired = []
        actor = CallbackActor(lambda now: fired.append(now), period_us=5.0)
        scheduler.spawn(actor)
        scheduler.cancel(actor)
        scheduler.run_until(20.0)
        assert fired == []
        scheduler.arm(actor, 25.0)
        scheduler.run_until(40.0)
        assert fired == [25.0, 30.0, 35.0]

    def test_arm_unspawned_actor_raises(self):
        scheduler = Scheduler()
        with pytest.raises(SimulationError):
            scheduler.arm(CallbackActor(lambda now: None))

    def test_actor_retires_on_none(self):
        scheduler = Scheduler()
        fired = []
        scheduler.spawn(CallbackActor(lambda now: fired.append(now)))
        scheduler.run_until(100.0)
        assert fired == [0.0]  # no period, no explicit next time: done

    def test_actors_false_freezes_control_plane(self):
        scheduler = Scheduler()
        fired = []
        events = []
        scheduler.spawn(CallbackActor(lambda now: fired.append(now),
                                      period_us=1.0))
        scheduler.at(5.0, lambda now: events.append(now))
        scheduler.run_until(10.0, actors=False)
        assert fired == []
        assert events == [5.0]


class TestAgentActor:
    def _system(self):
        return MantisSystem.from_source(PROGRAM)

    def test_budget_bounds_iterations(self):
        system = self._system()
        system.agent.prologue()
        scheduler = Scheduler(clock=system.clock)
        scheduler.spawn(AgentActor(system.agent, max_iterations=3))
        scheduler.run_until()  # quiescence: budget is the only brake
        assert system.agent.iterations == 3

    def test_actor_matches_legacy_busy_loop(self):
        """The scheduled actor reproduces ``agent.run_until`` exactly:
        same iteration count, same final clock."""
        legacy = self._system()
        legacy.agent.prologue()
        legacy.agent.run_until(400.0)

        scheduled = self._system()
        scheduled.agent.prologue()
        scheduler = Scheduler(clock=scheduled.clock)
        scheduler.spawn(AgentActor(scheduled.agent))
        scheduler.run_until(400.0)

        assert scheduled.agent.iterations == legacy.agent.iterations
        assert scheduled.clock.now == legacy.clock.now
        assert scheduled.agent.phase_totals == legacy.agent.phase_totals

    def test_rearm_resets_budget(self):
        system = self._system()
        system.agent.prologue()
        scheduler = Scheduler(clock=system.clock)
        actor = AgentActor(system.agent, max_iterations=2)
        scheduler.spawn(actor)
        scheduler.run_until()
        assert system.agent.iterations == 2
        scheduler.arm(actor)
        scheduler.run_until()
        assert system.agent.iterations == 4

    def test_paced_agent_runs_on_cadence(self):
        system = self._system()
        system.agent.prologue()
        scheduler = Scheduler(clock=system.clock)
        scheduler.spawn(AgentActor(system.agent, period_us=50.0))
        start = system.clock.now
        scheduler.run_until(start + 200.0)
        # Turns at start, +50, +100, +150 (each iteration costs < 50us
        # for this tiny program, so the cadence dominates).
        assert system.agent.iterations == 4
