"""Bulk route installation: ``install_routes(bulk=True)`` must
coalesce each switch's entries into one DMA-burst transaction, leave
identical data-plane state as the per-entry path, and report the op
accounting the ``run-fattree`` summary surfaces."""

from repro.apps.fabric_lb import FABRIC_P4R, run_fattree_rebalance
from repro.net.fabric_builder import FatTree
from repro.net.routing import compute_fabric_routes, install_routes
from repro.switch.compiled import asic_state_snapshot


def table_state(built):
    return {
        name: asic_state_snapshot(switch.system.asic)["tables"]
        for name, switch in built.switches.items()
    }


def test_bulk_install_matches_per_entry_state():
    bulk_built = FatTree(4).build(FABRIC_P4R)
    solo_built = FatTree(4).build(FABRIC_P4R)
    bulk_summary = install_routes(bulk_built, bulk=True)
    solo_summary = install_routes(solo_built, bulk=False)

    assert table_state(bulk_built) == table_state(solo_built)
    for name in bulk_summary:
        assert (
            bulk_summary[name]["driver_ops"]
            == solo_summary[name]["driver_ops"]
        )
        assert bulk_summary[name]["routes"] == solo_summary[name]["routes"]


def test_bulk_install_is_one_txn_per_switch_and_cheaper():
    built = FatTree(4).build(FABRIC_P4R)
    summary = install_routes(built, bulk=True)
    for name, entry in summary.items():
        assert entry["bulk"] is True
        assert entry["bulk_txns"] == 1
        assert entry["driver_ops"] > 0
        switch = built.switches[name]
        assert switch.system.driver.bulk_txns == 1
        assert switch.system.driver.ops_issued == entry["driver_ops"]

    solo_built = FatTree(4).build(FABRIC_P4R)
    solo_summary = install_routes(solo_built, bulk=False)
    for name, entry in solo_summary.items():
        assert entry["bulk"] is False
        assert entry["bulk_txns"] == 0
        # Bulk spends strictly less simulated driver time per switch.
        assert (
            summary[name]["install_sim_us"] < entry["install_sim_us"]
        )


def test_compute_fabric_routes_one_sweep_matches_per_switch():
    """The shared-BFS sweep must give every switch the same ECMP
    groups as querying it alone."""
    spec = FatTree(4)
    names = list(spec.switches)
    swept = compute_fabric_routes(spec, names)
    for name in names[:6]:  # spot-check a prefix, it's O(switches^2)
        solo = compute_fabric_routes(spec, [name])[name]
        assert swept[name] == solo


def test_run_fattree_summary_reports_install_accounting():
    summary = run_fattree_rebalance(
        k=4, duration_us=60.0, flows_per_host=1
    )
    install = summary["route_install"]
    assert install["bulk"] is True
    assert install["mode"] == "hashed"
    assert install["driver_ops"] > 0
    assert install["bulk_txns"] == len(summary["per_switch"])

    solo = run_fattree_rebalance(
        k=4, duration_us=60.0, flows_per_host=1, route_bulk=False
    )
    assert solo["route_install"]["bulk"] is False
    assert solo["route_install"]["bulk_txns"] == 0
    assert solo["route_install"]["driver_ops"] == install["driver_ops"]
    # Delivery is unaffected by how routes were installed.
    assert solo["delivery_rate"] == summary["delivery_rate"]
