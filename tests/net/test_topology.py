"""Topology-builder tests, including RouteManager integration."""

import pytest

from repro.apps.failover import RouteManager
from repro.errors import SimulationError
from repro.net.topology import leaf_spine, ring_of_neighbors, star


class TestStar:
    def test_shape(self):
        topo = star(4)
        assert len(topo.port_map) == 4
        assert len(topo.dest_map) == 4
        assert topo.graph.degree("s0") == 4

    def test_no_detours(self):
        topo = star(3)
        manager = RouteManager(
            topo.graph, topo.switch_node, topo.port_map, topo.dest_map
        )
        manager.fail_port(0)
        routes = manager.compute_routes()
        assert routes[0x0A000100] is None  # unreachable, no detour


class TestRing:
    def test_detour_exists_for_every_destination(self):
        topo = ring_of_neighbors(5)
        manager = RouteManager(
            topo.graph, topo.switch_node, topo.port_map, topo.dest_map
        )
        for port in range(5):
            manager.failed_ports = {port}
            routes = manager.compute_routes()
            assert all(p is not None for p in routes.values())
            # The failed port is never used.
            assert all(p != port for p in routes.values())


class TestLeafSpine:
    def test_multipath(self):
        topo = leaf_spine(n_leaves=3, n_spines=2)
        manager = RouteManager(
            topo.graph, topo.switch_node, topo.port_map, topo.dest_map
        )
        routes = manager.compute_routes()
        assert set(routes.values()) <= {0, 1}
        # Losing one spine leaves the other.
        manager.fail_port(0)
        routes = manager.compute_routes()
        assert all(p == 1 for p in routes.values())

    def test_needs_two_leaves(self):
        with pytest.raises(SimulationError):
            leaf_spine(n_leaves=1, n_spines=2)


class TestValidation:
    def test_bad_port_map_rejected(self):
        topo = star(2)
        topo.port_map["ghost"] = 9
        with pytest.raises(SimulationError):
            topo.validate()

    def test_bad_dest_rejected(self):
        topo = star(2)
        topo.dest_map[99] = "nowhere"
        with pytest.raises(SimulationError):
            topo.validate()
