"""Golden differential runs pinning the refactored Scheduler/NetworkSim
core to the pre-refactor behavior.

The values below were captured on the PR 4 fabric runtime (multi-hop
failover) and the PR 7 linkguard scenario *before* the fleet-scale
refactor split ``net/sim.py`` into fabric + façade layers and indexed
the scheduler.  Every float is compared exactly: the refactor must be
bit-identical, not merely close -- timestamps come out of the same
float operations in the same order or something changed semantically.
"""

from __future__ import annotations

from repro.apps.failover import run_multihop_failover
from repro.apps.linkguard import run_linkguard


class TestMultihopGolden:
    """PR 4 two-switch multi-hop failover, default parameters."""

    def test_bit_identical_summary(self):
        summary = run_multihop_failover()

        assert summary["start_us"] == 60.440000000000005
        assert summary["fail_time_us"] == 260.44
        assert summary["end_us"] == 667.140000000002
        assert summary["sender_tx_packets"] == 203
        assert summary["sink_rx_packets"] == 186
        assert summary["s0_forwarded"] == 988
        assert summary["s0_link0_dropped"] == 423
        assert summary["agent_actor_fires"] == 93
        assert summary["agent_iterations"] == {"s0": 48, "s1": 47}

        detection = summary["detection"]
        assert detection["s0_port0_detected_us"] == 300.93999999999994
        assert detection["s1_port0_detected_us"] == 291.51999999999987
        assert detection["s0_rerouted_us"] == 302.41999999999996
        assert detection["detection_latency_us"] == 40.49999999999994
        assert summary["recomputations"] == {"s0": 1, "s1": 1}
        assert summary["rerouted"] is True

        totals = summary["drop_totals"]
        assert totals["delivered"] == 186
        assert totals["forwarded"] == 1790
        assert totals["switch_drops"] == 1604
        assert totals["egress_dropped"] == 831
        assert totals["rx_dropped"] == 0
        assert totals["port_fault_dropped"] == 0
        assert totals["link_fault_dropped"] == 0


class TestLinkguardGolden:
    """PR 7 linkguard protection run at 1e-2 loss, 2000 us."""

    def test_bit_identical_summary(self):
        result = run_linkguard(1e-2, protection=True, duration_us=2000.0)

        assert result["sent_packets"] == 3418
        assert result["delivered_packets"] == 3340
        assert result["throughput_gbps"] == 20.04
        assert result["avg_fct_us"] == 38.626390769230504
        assert result["transfers_completed"] == 52
        assert result["retransmits"] == 2
        assert result["protections"] == 1
        assert result["restores"] == 0
        assert result["s0_loss_estimate"] == 0.015444015444015444
        assert result["protect_time_us"] == 339.9600000000001
        assert result["link_fault_dropped"] == 46
        assert result["link_fault_corrupted"] == 0

        totals = result["drop_totals"]
        assert totals["delivered"] == 3391
        assert totals["forwarded"] == 11394
        assert totals["switch_drops"] == 8000
        assert totals["egress_dropped"] == 0
        assert totals["rx_dropped"] == 0
        assert totals["link_fault_dropped"] == 46

        links = {entry["name"]: entry for entry in result["links"]}
        assert links["s0:0<->s1:0"]["fault_dropped"] == 46
        assert links["s0:1<->s1:1"]["fault_dropped"] == 0
