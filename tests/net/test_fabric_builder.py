"""FabricSpec / FatTree builder and the routing layer."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net import topology as topo
from repro.net.fabric_builder import FabricSpec, FatTree
from repro.net.routing import (
    SENTINEL_BUCKET,
    equal_cost_ports,
    install_routes,
)


def small_spec() -> FabricSpec:
    """Two leaves, two spines, one addressed host per leaf."""
    spec = FabricSpec("mini")
    spec.add_switch("leaf0", role="leaf", uplink_ports=(0, 1))
    spec.add_switch("leaf1", role="leaf", uplink_ports=(0, 1))
    spec.add_switch("spine0", role="spine")
    spec.add_switch("spine1", role="spine")
    for li in range(2):
        for si in range(2):
            spec.add_link(f"leaf{li}", si, f"spine{si}", li)
    spec.add_host("hA", "leaf0", 2, addr=0x0A000001)
    spec.add_host("hB", "leaf1", 2, addr=0x0A000002)
    return spec


class TestFabricSpec:
    def test_validation(self):
        spec = FabricSpec()
        spec.add_switch("s0")
        with pytest.raises(SimulationError):
            spec.add_switch("s0")
        with pytest.raises(SimulationError):
            spec.add_link("s0", 0, "nope", 0)
        spec.add_switch("s1")
        spec.add_link("s0", 0, "s1", 0)
        with pytest.raises(SimulationError):  # port already cabled
            spec.add_link("s0", 0, "s1", 1)
        with pytest.raises(SimulationError):  # host on a cabled port
            spec.add_host("h", "s0", 0)
        spec.add_host("h", "s0", 1, addr=7)
        with pytest.raises(SimulationError):  # duplicate address
            spec.add_host("h2", "s1", 1, addr=7)
        with pytest.raises(SimulationError):  # name collides with switch
            spec.add_host("s1", "s0", 2)

    def test_graph_and_views(self):
        spec = small_spec()
        graph = spec.graph()
        assert set(graph.nodes) == {
            "leaf0", "leaf1", "spine0", "spine1", "hA", "hB"
        }
        view = spec.switch_view("leaf0")
        assert view.port_map == {"spine0": 0, "spine1": 1, "hA": 2}
        assert view.dest_map == {0x0A000001: "hA", 0x0A000002: "hB"}
        spine_view = spec.switch_view("spine1")
        assert spine_view.port_map == {"leaf0": 0, "leaf1": 1}

    def test_parallel_links_get_intermediate_nodes(self):
        spec = FabricSpec()
        spec.add_switch("s0")
        spec.add_switch("s1")
        spec.add_link("s0", 0, "s1", 0)
        spec.add_link("s0", 1, "s1", 1)
        graph = spec.graph()
        assert not graph.has_edge("s0", "s1")
        view = spec.switch_view("s0")
        assert sorted(view.port_map.values()) == [0, 1]
        for node in view.port_map:
            assert graph.has_edge("s0", node)
            assert graph.has_edge(node, "s1")

    def test_build_materializes_fleet(self):
        from repro.apps.fabric_lb import FABRIC_P4R

        spec = small_spec()
        built = spec.build(FABRIC_P4R)
        assert set(built.switches) == set(spec.switches)
        clock = built.clock
        for switch in built.switches.values():
            assert switch.system.clock is clock
        assert built.link("leaf0", 0) is built.link("spine0", 0)
        with pytest.raises(SimulationError):
            built.link("leaf0", 5)

    def test_empty_spec_rejected(self):
        with pytest.raises(SimulationError):
            FabricSpec().build("")


class TestLegacyWrappers:
    """fabric_pair / leaf_spine are now thin wrappers over FabricSpec;
    their historical surface is pinned exactly."""

    def test_fabric_pair_surface(self):
        view0, view1 = topo.fabric_pair(n_links=2)
        assert view0.graph is view1.graph
        assert view0.port_map == {"l0": 0, "l1": 1, "h0": 2}
        assert view1.port_map == {"l0": 0, "l1": 1, "h1": 2}
        assert view0.dest_map == {}
        edges = {frozenset(edge) for edge in view0.graph.edges}
        assert edges == {
            frozenset(e) for e in [
                ("s0", "l0"), ("s0", "l1"), ("s0", "h0"),
                ("l0", "s1"), ("l1", "s1"), ("s1", "h1"),
            ]
        }
        # Adjacency order (what shortest-path tie-breaking sees) must
        # match the historical imperative builder.
        assert list(view0.graph.adj["s0"]) == ["l0", "l1", "h0"]
        assert list(view0.graph.adj["s1"]) == ["l0", "l1", "h1"]

    def test_leaf_spine_surface(self):
        view = topo.leaf_spine(3, 2, base_addr=0x0A000100)
        assert view.port_map == {"sp0": 0, "sp1": 1}
        assert view.dest_map == {0x0A000100: "leaf1", 0x0A000101: "leaf2"}


class TestFatTreeSpec:
    def test_k4_shape(self):
        tree = FatTree(4)
        assert len(tree.switches) == 20
        assert len(tree.hosts) == 16
        assert len(tree.links) == 32
        roles = {}
        for spec in tree.switches.values():
            roles[spec.role] = roles.get(spec.role, 0) + 1
        assert roles == {"core": 4, "agg": 8, "edge": 8}
        assert tree.host_addr(2, 1, 0) == 0x0A020102
        assert tree.hosts["h2_1_0"].addr == 0x0A020102
        assert len(tree.pod_hosts(0)) == 4
        assert {h.name for h in tree.pod_hosts(3)} == {
            "h3_0_0", "h3_0_1", "h3_1_0", "h3_1_1"
        }

    def test_odd_k_rejected(self):
        with pytest.raises(SimulationError):
            FatTree(3)

    def test_k6_scales(self):
        tree = FatTree(6)
        assert len(tree.switches) == 6 * 6 + 9  # 36 pod switches + 9 cores
        assert len(tree.hosts) == 6 * 3 * 3


class TestEqualCostPorts:
    def test_fat_tree_groups(self):
        tree = FatTree(4)
        edge_routes = equal_cost_ports(tree, "e0_0")
        # Local hosts: direct ports; everything else: both uplinks.
        assert edge_routes[tree.host_addr(0, 0, 0)] == [2]
        assert edge_routes[tree.host_addr(0, 0, 1)] == [3]
        for pod, i, m in ((0, 1, 0), (1, 0, 0), (3, 1, 1)):
            assert edge_routes[tree.host_addr(pod, i, m)] == [0, 1]
        agg_routes = equal_cost_ports(tree, "a0_0")
        assert agg_routes[tree.host_addr(0, 1, 0)] == [3]  # down to e0_1
        assert agg_routes[tree.host_addr(2, 0, 0)] == [0, 1]  # via cores
        core_routes = equal_cost_ports(tree, "c0")
        for addr, ports in core_routes.items():
            assert len(ports) == 1  # cores always one pod-facing port

    def test_aliases_route_like_their_host(self):
        tree = FatTree(4)
        alias = 0x0B000123
        routes = equal_cost_ports(
            tree, "e0_0", extra_dests={alias: "h2_0_0"}
        )
        assert routes[alias] == routes[tree.host_addr(2, 0, 0)]
        with pytest.raises(SimulationError):
            equal_cost_ports(tree, "e0_0", extra_dests={1: "ghost"})


class TestInstallRoutes:
    def test_unknown_mode_rejected(self):
        from repro.apps.fabric_lb import FABRIC_P4R

        built = FatTree(4).build(FABRIC_P4R)
        with pytest.raises(SimulationError):
            install_routes(built, mode="magic")

    def test_hashed_summary(self):
        from repro.apps.fabric_lb import FABRIC_P4R

        tree = FatTree(4)
        built = tree.build(FABRIC_P4R)
        for switch in built.switches.values():
            switch.system.agent.prologue()
        summary = install_routes(built, mode="hashed")
        assert summary["e0_0"]["ecmp_group"] == [0, 1]
        assert summary["e0_0"]["direct"] == 2  # the two local hosts
        assert summary["a0_0"]["ecmp_group"] == [0, 1]
        assert summary["c0"]["ecmp_group"] == []  # cores only go down
        assert summary["c0"]["routes"] == 16
        assert SENTINEL_BUCKET == 0xFFFF

    @pytest.mark.parametrize("mode", ["round_robin", "random"])
    def test_pinned_modes_deliver(self, mode):
        """Single-path modes must deliver a packet across the fabric."""
        from repro.apps.fabric_lb import FABRIC_P4R
        from repro.net.hosts import Host, SinkHost
        from repro.switch.packet import Packet

        tree = FatTree(4)
        built = tree.build(FABRIC_P4R)
        for switch in built.switches.values():
            switch.system.agent.prologue()
        install_routes(built, mode=mode, seed=3)
        for switch in built.switches.values():
            switch.system.agent.run_iteration()

        src = Host("src")
        built.attach_host("h0_0_0", src)
        sink = SinkHost("dst")
        built.attach_host("h3_1_1", sink)
        dst_addr = tree.host_addr(3, 1, 1)
        for n in range(4):
            src.send({
                "ipv4.srcAddr": tree.host_addr(0, 0, 0),
                "ipv4.dstAddr": dst_addr,
                "ipv4.proto": 17,
                "l4.sport": 1000 + n,
                "l4.dport": 53,
            })
        fabric = built.fabric
        fabric.run_until(fabric.clock.now + 50.0, agent=False)
        assert sink.rx_packets == 4
