"""Detailed TCP-model tests: pacing, DCTCP, retransmission."""

import pytest

from repro.net.sim import NetworkSim, PortConfig
from repro.net.tcp import TcpFlow, TcpSink
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

FORWARDER = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; } }
header tcp_t tcp;
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
}
control ingress { apply(route); }
"""

MARKING_FORWARDER = FORWARDER + """
action mark() { mark_ecn(); }
table marker { actions { mark; } default_action : mark(); }
control egress {
    if (standard_metadata.deq_qdepth > 4) {
        apply(marker);
    }
}
"""


def build(source=FORWARDER, **port_kwargs):
    system = MantisSystem.from_source(source)
    sim = NetworkSim(system)
    if port_kwargs:
        sim.configure_port(1, PortConfig(**port_kwargs))
    flow_kwargs = {}
    return system, sim


def attach_flow(system, sim, **kwargs):
    flow = TcpFlow("f", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9}, **kwargs)
    sink = TcpSink("d")
    sink.register_flow(1, flow)
    sim.attach_host(flow, 0)
    sim.attach_host(sink, 1)
    system.driver.add_entry("route", [9], "forward", [1])
    return flow, sink


class TestPacing:
    def test_paced_flow_respects_rate(self):
        system, sim = build()
        # One 1500B packet per 100us = 0.12 Gbps.
        flow, sink = attach_flow(system, sim, pace_interval_us=100.0)
        flow.start(at_us=0.0)
        sim.run_until(5_000.0, agent=False)
        # ~50 sends in 5000us (+- boundary effects).
        assert 40 <= flow.tx_packets <= 55

    def test_unpaced_flow_sends_much_faster(self):
        system, sim = build()
        flow, sink = attach_flow(system, sim)
        flow.start(at_us=0.0)
        sim.run_until(5_000.0, agent=False)
        assert flow.tx_packets > 100

    def test_pacing_interacts_with_window(self):
        # Tight pacing cannot exceed the congestion window either.
        system, sim = build()
        flow, sink = attach_flow(
            system, sim, pace_interval_us=1.0, initial_cwnd=1.0,
            max_cwnd=1.0,
        )
        flow.start(at_us=0.0)
        sim.run_until(1_000.0, agent=False)
        # Window 1: at most one packet in flight at any time; total
        # bounded by RTT clocking, far below the 1/us pace ceiling.
        assert flow.tx_packets < 200


class TestDctcp:
    def test_alpha_tracks_marking(self):
        system, sim = build(MARKING_FORWARDER,
                            bandwidth_gbps=0.5, queue_capacity_pkts=64)
        flow, sink = attach_flow(system, sim, use_dctcp=True)
        flow.start(at_us=0.0)
        sim.run_until(8_000.0, agent=False)
        # The queue exceeds the mark threshold -> marks -> alpha > 0.
        assert flow.dctcp_alpha > 0.0
        # DCTCP keeps sending (no collapse to cwnd=1 as with drops).
        assert flow.acked > 30

    def test_no_marks_no_alpha(self):
        # A small window on a fast port keeps the queue below the
        # marking threshold, so alpha never moves.
        system, sim = build(MARKING_FORWARDER, bandwidth_gbps=100.0)
        flow, sink = attach_flow(system, sim, use_dctcp=True,
                                 max_cwnd=3.0)
        flow.start(at_us=0.0)
        sim.run_until(3_000.0, agent=False)
        assert flow.dctcp_alpha == 0.0
        assert flow.acked > 10

    def test_classic_ecn_halves_on_mark(self):
        system, sim = build(MARKING_FORWARDER,
                            bandwidth_gbps=0.5, queue_capacity_pkts=64)
        flow, sink = attach_flow(system, sim, use_dctcp=False)
        flow.start(at_us=0.0)
        sim.run_until(8_000.0, agent=False)
        # Classic ECN treats marks as losses: window stays small.
        assert flow.cwnd < flow.max_cwnd / 4


class TestRetransmission:
    def test_timeout_retransmits_lost_sequence(self):
        system, sim = build(bandwidth_gbps=0.1, queue_capacity_pkts=1)
        flow, sink = attach_flow(system, sim)
        flow.start(at_us=0.0)
        sim.run_until(10_000.0, agent=False)
        assert flow.retransmits > 0
        # Goodput continues despite drops.
        assert flow.acked > 5

    def test_stale_ack_after_timeout_ignored(self):
        system, sim = build()
        flow, sink = attach_flow(system, sim)
        flow.start(at_us=0.0)
        sim.run_until(100.0, agent=False)
        before = flow.acked
        # Deliver a duplicate ACK for an already-acked sequence.
        flow._on_ack(0, 0, sim.clock.now)
        assert flow.acked == before
