"""The multi-switch fabric: construction API, forwarding, and the
bit-identical equivalence of the legacy single-switch path with an
explicitly constructed one-switch fabric.
"""

from __future__ import annotations

import pytest

from repro.apps.dos import build_dos_scenario
from repro.errors import SimulationError
from repro.net.hosts import SinkHost, UdpSender
from repro.net.sim import NetworkSim, PortConfig
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.clock import SimClock
from repro.switch.compiled import asic_state_snapshot
from repro.system import MantisSystem

FORWARD_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; proto : 8; } }
header ipv4_t ipv4;
header_type tmp_t { fields { c : 32; } }
metadata tmp_t tmp;
register seen { width : 32; instance_count : 4; }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 16;
}
control ingress { apply(route); }
reaction watch(reg seen[0:3]) { }
"""

DST = 0x0A000001


def _forwarding_switch(clock):
    return MantisSystem.from_source(FORWARD_P4R, clock=clock)


class TestFabricConstruction:
    def test_add_switch_requires_shared_clock(self):
        fabric = NetworkSim(clock=SimClock())
        foreign = _forwarding_switch(SimClock())
        with pytest.raises(SimulationError):
            fabric.add_switch(foreign)

    def test_duplicate_switch_name_rejected(self):
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        fabric.add_switch(_forwarding_switch(clock), "a")
        with pytest.raises(SimulationError):
            fabric.add_switch(_forwarding_switch(clock), "a")

    def test_connect_conflicts_rejected(self):
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        a = fabric.add_switch(_forwarding_switch(clock), "a")
        b = fabric.add_switch(_forwarding_switch(clock), "b")
        fabric.connect(a, 0, b, 0)
        with pytest.raises(SimulationError):
            fabric.connect(a, 0, b, 1)  # a:0 already cabled
        a.attach_host(SinkHost("h"), 5)
        with pytest.raises(SimulationError):
            fabric.connect(a, 5, b, 2)  # a:5 already hosts a host
        with pytest.raises(SimulationError):
            a.attach_host(SinkHost("h2"), 0)  # a:0 is a link

    def test_legacy_constructor_is_one_switch_fabric(self):
        system = _forwarding_switch(None)
        sim = NetworkSim(system)
        assert list(sim.switches) == ["s0"]
        assert sim.system is system
        assert sim.clock is system.clock

    def test_empty_fabric_legacy_surface_raises(self):
        fabric = NetworkSim(clock=SimClock())
        with pytest.raises(SimulationError):
            fabric.attach_host(SinkHost("h"), 0)


class TestMultiSwitchForwarding:
    def _two_switch_path(self):
        """h0 -> s0:(2) ... s0:0 <-> s1:0 ... s1:(2) -> h1"""
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forwarding_switch(clock), "s0")
        s1 = fabric.add_switch(_forwarding_switch(clock), "s1")
        link = fabric.connect(s0, 0, s1, 0)
        s0.system.driver.add_entry("route", [DST], "forward", [0])
        s1.system.driver.add_entry("route", [DST], "forward", [2])
        sender = UdpSender(
            "h0", {"ipv4.srcAddr": 1, "ipv4.dstAddr": DST, "ipv4.proto": 17},
            rate_gbps=2.0,
        )
        s0.attach_host(sender, 2)
        sink = SinkHost("h1")
        s1.attach_host(sink, 2)
        return fabric, s0, s1, link, sender, sink

    def test_packets_cross_the_fabric(self):
        fabric, s0, s1, _link, sender, sink = self._two_switch_path()
        sender.start(0.0)
        fabric.run_until(100.0, agent=False)
        assert sink.rx_packets > 0
        # Hop accounting: the first switch forwards, the second
        # delivers; the difference is still queued in s1's egress.
        assert s0.forwarded >= sink.rx_packets
        assert s0.delivered == 0
        assert s1.forwarded == 0
        assert s1.delivered == sink.rx_packets

    def test_dead_link_drops_on_the_wire(self):
        fabric, s0, s1, link, sender, sink = self._two_switch_path()
        sender.start(0.0)
        fabric.run_until(50.0, agent=False)
        delivered_before = sink.rx_packets
        assert delivered_before > 0
        fabric.set_link_state(link, False)
        fabric.run_until(150.0, agent=False)
        # Nothing but the in-flight tail arrives after the cut...
        assert sink.rx_packets - delivered_before <= 2
        # ...and the egress queue charges the dead cable.
        assert s0.port_stats(0).dropped > 0

    def test_scheduled_link_cut(self):
        fabric, s0, s1, link, sender, sink = self._two_switch_path()
        sender.start(0.0)
        fabric.fail_link_at(link, 50.0)
        fabric.run_until(150.0, agent=False)
        assert link.up is False
        assert 0 < sink.rx_packets < sender.tx_packets

    def test_per_switch_asic_isolation(self):
        fabric, s0, s1, _link, sender, sink = self._two_switch_path()
        sender.start(0.0)
        fabric.run_until(60.0, agent=False)
        # Each switch counted only its own pipeline work.
        s0_tx = sum(p.tx_packets for p in s0.ports.values())
        s1_tx = sum(p.tx_packets for p in s1.ports.values())
        # Enqueued >= handed to the peer (the rest is in flight).
        assert s0_tx >= s0.forwarded > 0
        assert s1_tx <= s0_tx


class TestFabricLegacyEquivalence:
    """Satellite: a single-switch fabric run must be bit-identical to
    the legacy ``NetworkSim(system)`` path on the Fig15 DoS workload.
    """

    HORIZON = 1500.0

    def _run(self, sim_factory):
        app, sim, flows, sink, attacker = build_dos_scenario(
            n_benign=6, burst_size=4, sim_factory=sim_factory,
        )
        app.prologue()
        for flow in flows:
            flow.start(0.0)
        attacker.start(100.0)
        runner = sim if isinstance(sim, NetworkSim) else sim.fabric
        runner.run_until(self.HORIZON, agent=True)
        return app, sim, flows, sink, attacker, runner

    def test_bit_identical_to_legacy_path(self):
        legacy = self._run(None)
        fabric = self._run(
            lambda system: NetworkSim(clock=system.clock).add_switch(system)
        )
        l_app, l_sim, l_flows, l_sink, l_attacker, l_runner = legacy
        f_app, f_sim, f_flows, f_sink, f_attacker, f_runner = fabric

        # Same simulated end instant, same event/actor counts.
        assert l_runner.clock.now == f_runner.clock.now
        assert l_runner.events.processed == f_runner.events.processed
        assert (l_runner.scheduler.actor_fires
                == f_runner.scheduler.actor_fires)

        # Packet results: per-window sink bytes, float-exact.
        assert l_sink.windows == f_sink.windows
        assert l_sink.rx_packets == f_sink.rx_packets
        assert l_sim.delivered == f_sim.delivered
        assert l_sim.switch_drops == f_sim.switch_drops

        # Queue/port state, including exact busy_until floats.
        l_ports = l_sim.ports if isinstance(l_sim, NetworkSim) else l_sim.ports
        for index, l_port in l_ports.items():
            f_port = f_sim.ports[index]
            assert l_port.tx_packets == f_port.tx_packets
            assert l_port.tx_bytes == f_port.tx_bytes
            assert l_port.dropped == f_port.dropped
            assert l_port.busy_until == f_port.busy_until
            assert l_port.queued == f_port.queued

        # ASIC state: registers, table contents, counters.
        assert (asic_state_snapshot(l_app.system.asic)
                == asic_state_snapshot(f_app.system.asic))

        # Agent trajectory: same iterations, same per-phase totals.
        assert (l_app.system.agent.iterations
                == f_app.system.agent.iterations)
        assert (l_app.system.agent.phase_totals
                == f_app.system.agent.phase_totals)

        # The app observed the same attack.
        assert (l_app.is_blocked(0x0AFF0001)
                == f_app.is_blocked(0x0AFF0001))

    def test_agent_off_runs_identical_too(self):
        results = []
        for factory in (
            None,
            lambda system: NetworkSim(clock=system.clock).add_switch(system),
        ):
            app, sim, flows, sink, attacker = build_dos_scenario(
                n_benign=4, sim_factory=factory,
            )
            app.prologue()
            for flow in flows:
                flow.start(0.0)
            attacker.start(50.0)
            runner = sim if isinstance(sim, NetworkSim) else sim.fabric
            runner.run_until(800.0, agent=False)
            results.append((sink.windows, sim.delivered, sim.switch_drops,
                            runner.clock.now))
        assert results[0] == results[1]
