"""Network-substrate tests: events, queues, hosts, TCP, traces."""

import pytest

from repro.net.events import EventQueue
from repro.net.flows import TraceConfig, synthetic_trace, trace_stats
from repro.net.hosts import HeartbeatGenerator, SinkHost, UdpSender
from repro.net.sim import NetworkSim, PortConfig
from repro.net.tcp import TcpFlow, TcpSink
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

FORWARDER = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; } }
header tcp_t tcp;

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 64;
}
control ingress { apply(route); }
"""


def build_sim(num_ports=8):
    system = MantisSystem.from_source(FORWARDER, num_ports=num_ports)
    sim = NetworkSim(system)
    return system, sim


class TestEventQueue:
    def test_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda t: seen.append(("b", t)))
        queue.schedule(1.0, lambda t: seen.append(("a", t)))
        queue.drain(10.0)
        assert seen == [("a", 1.0), ("b", 5.0)]

    def test_partial_drain(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda t: seen.append(1))
        queue.schedule(9.0, lambda t: seen.append(9))
        queue.drain(5.0)
        assert seen == [1]
        assert len(queue) == 1
        assert queue.peek_time() == 9.0

    def test_events_scheduled_while_draining(self):
        queue = EventQueue()
        seen = []

        def cascade(t):
            seen.append("first")
            queue.schedule(t + 1.0, lambda t2: seen.append("second"))

        queue.schedule(1.0, cascade)
        queue.drain(10.0)
        assert seen == ["first", "second"]

    def test_negative_time_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, lambda t: None)


class TestForwardingPath:
    def test_host_to_host_delivery(self):
        system, sim = build_sim()
        sender = UdpSender("s", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9},
                           rate_gbps=10.0)
        sink = SinkHost("d")
        sim.attach_host(sender, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        sender.start(at_us=0.0)
        sim.run_until(100.0, agent=False)
        assert sink.rx_packets > 0
        assert sink.rx_packets <= sender.tx_packets

    def test_queue_capacity_drops(self):
        system, sim = build_sim()
        sim.configure_port(1, PortConfig(bandwidth_gbps=1.0,
                                         queue_capacity_pkts=4))
        sender = UdpSender("s", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9},
                           rate_gbps=25.0)
        sink = SinkHost("d")
        sim.attach_host(sender, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        sender.start(at_us=0.0)
        sim.run_until(200.0, agent=False)
        stats = sim.port_stats(1)
        assert stats.dropped > 0
        assert sim.queue_depth(1) <= 4

    def test_queue_depth_visible_to_asic(self):
        system, sim = build_sim()
        sim.configure_port(1, PortConfig(bandwidth_gbps=1.0))
        sender = UdpSender("s", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9},
                           rate_gbps=25.0)
        sim.attach_host(sender, 0)
        sim.attach_host(SinkHost("d"), 1)
        system.driver.add_entry("route", [9], "forward", [1])
        sender.start(at_us=0.0)
        sim.run_until(50.0, agent=False)
        assert system.asic.ports[1].queue_depth == sim.queue_depth(1)
        assert system.asic.ports[1].queue_depth > 0

    def test_link_down_blackholes(self):
        system, sim = build_sim()
        sender = UdpSender("s", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9},
                           rate_gbps=10.0)
        sink = SinkHost("d")
        sim.attach_host(sender, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        sim.set_link_up(0, False)  # ingress link down: nothing arrives
        sender.start(at_us=0.0)
        sim.run_until(100.0, agent=False)
        assert sink.rx_packets == 0

    def test_duplicate_host_port_rejected(self):
        from repro.errors import SimulationError

        _, sim = build_sim()
        sim.attach_host(SinkHost("a"), 0)
        with pytest.raises(SimulationError):
            sim.attach_host(SinkHost("b"), 0)


class TestHeartbeats:
    def test_periodic_generation(self):
        system, sim = build_sim()
        hb = HeartbeatGenerator("h", {"ipv4.srcAddr": 7, "ipv4.dstAddr": 9},
                                period_us=2.0)
        sink = SinkHost("d")
        sim.attach_host(hb, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        hb.start(at_us=0.0)
        sim.run_until(100.0, agent=False)
        assert 45 <= hb.tx_packets <= 51

    def test_gray_loss(self):
        system, sim = build_sim()
        hb = HeartbeatGenerator("h", {"ipv4.srcAddr": 7, "ipv4.dstAddr": 9},
                                period_us=1.0)
        sim.attach_host(hb, 0)
        sim.attach_host(SinkHost("d"), 1)
        system.driver.add_entry("route", [9], "forward", [1])
        hb.set_gray_loss(0.5)
        hb.start(at_us=0.0)
        sim.run_until(1000.0, agent=False)
        # ~50% of 1000 heartbeats actually transmitted.
        assert 380 <= hb.tx_packets <= 620


class TestTcp:
    def _tcp_pair(self, bandwidth_gbps=10.0, queue=64):
        system, sim = build_sim()
        sim.configure_port(1, PortConfig(bandwidth_gbps=bandwidth_gbps,
                                         queue_capacity_pkts=queue))
        flow = TcpFlow("f", {"ipv4.srcAddr": 1, "ipv4.dstAddr": 9})
        sink = TcpSink("d")
        sink.register_flow(1, flow)
        sim.attach_host(flow, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        return system, sim, flow, sink

    def test_flow_makes_progress(self):
        _, sim, flow, sink = self._tcp_pair()
        flow.start(at_us=0.0)
        sim.run_until(2000.0, agent=False)
        assert flow.acked > 10
        assert sink.rx_packets >= flow.acked

    def test_window_grows_without_congestion(self):
        _, sim, flow, _ = self._tcp_pair(bandwidth_gbps=100.0)
        flow.start(at_us=0.0)
        sim.run_until(2000.0, agent=False)
        assert flow.cwnd > 4.0

    def test_losses_shrink_window(self):
        # Tiny queue on a slow port -> drops -> timeouts -> backoff.
        _, sim, flow, _ = self._tcp_pair(bandwidth_gbps=0.2, queue=2)
        flow.start(at_us=0.0)
        sim.run_until(5000.0, agent=False)
        assert flow.timeouts > 0
        assert flow.cwnd < flow.max_cwnd / 2

    def test_flood_starves_tcp_then_recovery(self):
        """The Figure 15 mechanism in miniature."""
        system, sim, flow, sink = self._tcp_pair(bandwidth_gbps=1.0, queue=16)
        flood = UdpSender("evil", {"ipv4.srcAddr": 66, "ipv4.dstAddr": 9},
                          rate_gbps=25.0, size_bytes=1500)
        sim.attach_host(flood, 2)
        flow.start(at_us=0.0)
        sim.run_until(3000.0, agent=False)
        healthy_acks = flow.acked
        flood.start()
        sim.run_until(sim.clock.now + 3000.0, agent=False)
        flooded_acks = flow.acked - healthy_acks
        flood.stop()
        sim.run_until(sim.clock.now + 3000.0, agent=False)
        recovered_acks = flow.acked - healthy_acks - flooded_acks
        assert flooded_acks < healthy_acks  # starved
        assert recovered_acks > flooded_acks  # recovers after suppression


class TestTraces:
    def test_shape_and_determinism(self):
        config = TraceConfig(packets=20_000, flows=800, seed=7)
        first = synthetic_trace(config)
        second = synthetic_trace(config)
        assert (first.src_ips == second.src_ips).all()
        stats = trace_stats(first)
        assert stats["flows"] == 800
        assert abs(stats["packets"] - 20_000) / 20_000 < 0.2

    def test_heavy_tail(self):
        trace = synthetic_trace(TraceConfig(packets=50_000, flows=2_000))
        stats = trace_stats(trace)
        # Top 1% of flows should carry a large share of bytes.
        assert stats["top1pct_byte_share"] > 0.15

    def test_times_sorted_and_bounded(self):
        trace = synthetic_trace(TraceConfig(packets=5_000, flows=100,
                                            duration_us=1000.0))
        times = trace.times_us
        assert (times[:-1] <= times[1:]).all()
        assert times[-1] <= 1000.0

    def test_ground_truth_totals_match(self):
        trace = synthetic_trace(TraceConfig(packets=5_000, flows=100))
        totals = trace.true_flow_sizes()
        assert sum(totals.values()) == int(trace.sizes.sum())
