"""The lossy-link fault model: seeded determinism across delivery
paths and pipeline engines, window scheduling, exactly-once drop
accounting, and flap/repair timelines.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    install_link_fault_plan,
    random_fault_plan,
    random_mixed_fault_plan,
)
from repro.net.hosts import SinkHost, UdpSender
from repro.net.sim import LinkFaultModel, NetworkSim, PortConfig
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.clock import SimClock
from repro.switch.packet import Packet
from repro.system import MantisSystem

BASE_SEED = int(os.environ.get("MANTIS_FAULT_SEED", "0"))

FORWARD_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; proto : 8; } }
header ipv4_t ipv4;
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 16;
}
control ingress { apply(route); }
"""

DST = 0x0A000001


def _forward_system(execution_mode=None, clock=None):
    system = MantisSystem.from_source(
        FORWARD_P4R, num_ports=8, execution_mode=execution_mode, clock=clock
    )
    system.driver.add_entry("route", [DST], "forward", [1])
    return system


def _sender_run(
    burst_size: int,
    fault: LinkFaultModel,
    n_ticks: int = 240,
    execution_mode=None,
):
    """One UDP sender through an ingress-port fault, scalar or burst.

    Same dyadic 1.5 us spacing + common-boundary horizon trick as
    tests/net/test_burst.py, so send instants are float-identical
    across burst sizes."""
    sim = NetworkSim(_forward_system(execution_mode=execution_mode))
    sink = SinkHost("sink")
    sim.attach_host(sink, 1)
    sim.port_stats(0)  # materialize
    sim._default_switch.set_port_fault(0, fault)
    sender = UdpSender(
        "src",
        {"ipv4.srcAddr": 1, "ipv4.dstAddr": DST, "ipv4.proto": 17},
        rate_gbps=8.0,  # 1500 B * 8 / 8000 bpus = 1.5 us interval
        burst_size=burst_size,
    )
    sim.attach_host(sender, 0)
    # Start past the driver-setup clock time (add_entry costs a few
    # us): a tick scheduled in the past would collapse to clock.now in
    # scalar mode but keep its spacing in burst mode.
    sender.start(at_us=10.0)
    # Horizon strictly between tick n_ticks-1 and tick n_ticks: a
    # coalesced sender cannot stop mid-burst, so exact equivalence
    # needs the cut on a common burst boundary (bursts divide n_ticks).
    sim.run_until(10.0 + (n_ticks - 1) * 1.5 + 0.75, agent=False)
    sender.stop()
    sim.run_until(10.0 + n_ticks * 1.5 + 200.0, agent=False)  # flush
    return sim, sink, sender


class TestSeededDeterminism:
    def test_scalar_vs_burst_event_log_identical(self):
        seed = BASE_SEED * 1000 + 17
        results = {}
        for burst in (1, 8):
            fault = LinkFaultModel(
                seed=seed, drop_rate=0.15, corrupt_rate=0.1
            )
            sim, sink, sender = _sender_run(burst, fault)
            results[burst] = (fault.events, fault.dropped, fault.corrupted,
                              sink.rx_packets, sender.tx_packets)
        assert results[1] == results[8]
        events, dropped, corrupted, _, _ = results[1]
        assert dropped > 0 and corrupted > 0
        assert len(events) == dropped + corrupted

    @pytest.mark.parametrize("burst", [1, 8])
    def test_compiled_vs_columnar_identical(self, burst):
        pytest.importorskip("numpy")
        seed = BASE_SEED * 1000 + 23
        logs = []
        for mode in ("compiled", "columnar"):
            fault = LinkFaultModel(
                seed=seed, drop_rate=0.12, corrupt_rate=0.08
            )
            _, sink, _ = _sender_run(burst, fault, execution_mode=mode)
            logs.append((fault.events, fault.dropped, fault.corrupted,
                         sink.rx_packets))
        assert logs[0] == logs[1]
        assert logs[0][1] > 0

    def test_same_seed_same_events_different_seed_differs(self):
        runs = []
        for seed in (BASE_SEED * 1000 + 5, BASE_SEED * 1000 + 5,
                     BASE_SEED * 1000 + 6):
            fault = LinkFaultModel(seed=seed, drop_rate=0.2)
            _sender_run(1, fault, n_ticks=120)
            runs.append(tuple(fault.events))
        assert runs[0] == runs[1]
        assert runs[0] != runs[2]

    def test_per_direction_streams_are_independent(self):
        """The "in" stream draws must not consume the "out" stream's
        randomness (the burst-coalescing determinism contract)."""
        model_a = LinkFaultModel(seed=99, drop_rate=0.5)
        model_b = LinkFaultModel(seed=99, drop_rate=0.5)
        packet = Packet({"ipv4.dstAddr": 1})
        verdicts_a = [model_a.admit(packet, 1.0, "in") for _ in range(64)]
        for index in range(64):
            model_b.admit(packet, 1.0, "out")
            assert model_b.admit(packet, 1.0, "in") == verdicts_a[index]


class TestWindowAndScheduling:
    def test_window_gates_on_arrival_time(self):
        fault = LinkFaultModel(seed=3, drop_rate=1.0,
                               window_us=(10.0, 20.0))
        packet = Packet({"ipv4.dstAddr": 1})
        assert fault.admit(packet, 9.99, "in") is None
        assert fault.admit(packet, 10.0, "in") == "drop"
        assert fault.admit(packet, 20.0, "in") == "drop"
        assert fault.admit(packet, 20.01, "in") is None

    def test_max_drops_caps_damage(self):
        fault = LinkFaultModel(seed=3, drop_rate=1.0, max_drops=3)
        packet = Packet({"ipv4.dstAddr": 1})
        verdicts = [fault.admit(packet, 1.0, "in") for _ in range(10)]
        assert verdicts.count("drop") == 3
        assert fault.dropped == 3

    def test_install_link_fault_schedules_on_off(self):
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
        s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
        link = fabric.connect(s0, 0, s1, 0)
        model = LinkFaultModel(seed=1, drop_rate=1.0)
        fabric.install_link_fault(link, model, at_us=50.0, until_us=100.0)
        assert model.active is False
        fabric.run_until(60.0, agent=False)
        assert model.active is True
        fabric.run_until(120.0, agent=False)
        assert model.active is False

    def test_restore_link_at_models_flap(self):
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
        s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
        link = fabric.connect(s0, 1, s1, 0)
        # Note s1 routes DST out its port 1 toward the sink host.
        sink = SinkHost("sink")
        s1.attach_host(sink, 1)
        sender = UdpSender(
            "src", {"ipv4.srcAddr": 1, "ipv4.dstAddr": DST,
                    "ipv4.proto": 17},
            rate_gbps=1.2,  # 10 us interval
        )
        s0.attach_host(sender, 2)
        # s0 must route DST toward the link (port 1), not the default
        # entry (port 1 already -- route added in _forward_system).
        sender.start()
        fabric.fail_link_at(link, 100.0)
        fabric.restore_link_at(link, 200.0)
        fabric.run_until(300.0, agent=False)
        assert link.up is True
        during = s0.port_stats(1).dropped
        assert during > 0  # packets died on the dead cable
        assert sink.rx_packets > 0
        # Deliveries resumed after repair: more packets arrived than
        # could have before the cut alone.
        assert sink.rx_packets >= 15


class TestExactlyOnceAccounting:
    def test_down_ingress_counts_rx_dropped_scalar_and_burst(self):
        for burst in (1, 4):
            sim = NetworkSim(_forward_system())
            sink = SinkHost("sink")
            sim.attach_host(sink, 1)
            sim.set_link_up(0, False)
            packets = [
                Packet({"ipv4.srcAddr": i, "ipv4.dstAddr": DST,
                        "ipv4.proto": 17})
                for i in range(burst)
            ]
            if burst == 1:
                sim.send_to_switch(packets[0], 0)
            else:
                sim.send_burst_to_switch(packets, 0, spacing_us=1.0)
            sim.run_until(50.0, agent=False)
            assert sim.port_stats(0).rx_dropped == burst
            assert sim.port_stats(0).dropped == 0
            assert sink.rx_packets == 0

    def test_mid_flight_ingress_down_counts_once(self):
        """A packet already on the wire when the port dies is counted
        in rx_dropped exactly once (scalar and burst paths)."""
        for burst in (1, 4):
            sim = NetworkSim(_forward_system())
            sink = SinkHost("sink")
            sim.attach_host(sink, 1)
            packets = [
                Packet({"ipv4.srcAddr": i, "ipv4.dstAddr": DST,
                        "ipv4.proto": 17})
                for i in range(burst)
            ]
            if burst == 1:
                sim.send_to_switch(packets[0], 0)
            else:
                sim.send_burst_to_switch(packets, 0, spacing_us=0.1)
            # Kill the port before the (>= 1 us latency) arrival.
            sim.events.schedule(0.5, lambda _n: sim.set_link_up(0, False))
            sim.run_until(50.0, agent=False)
            assert sim.port_stats(0).rx_dropped == burst
            assert sink.rx_packets == 0

    def test_fault_drops_counted_only_in_model(self):
        fault = LinkFaultModel(seed=BASE_SEED * 1000 + 31, drop_rate=0.3)
        sim, sink, sender = _sender_run(1, fault, n_ticks=200)
        port = sim.port_stats(0)
        assert fault.dropped > 0
        assert port.rx_dropped == 0
        assert port.dropped == 0
        assert sender.tx_packets == sink.rx_packets + fault.dropped

    def test_conservation_across_lossy_fabric(self):
        """Ledger: host tx == delivered + every drop bucket, with a
        lossy inter-switch link in the path."""
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
        s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
        link = fabric.connect(s0, 1, s1, 0)
        model = LinkFaultModel(seed=BASE_SEED * 1000 + 37, drop_rate=0.2)
        fabric.install_link_fault(link, model)
        sink = SinkHost("sink")
        s1.attach_host(sink, 1)
        sender = UdpSender(
            "src", {"ipv4.srcAddr": 1, "ipv4.dstAddr": DST,
                    "ipv4.proto": 17},
            rate_gbps=6.0,
        )
        s0.attach_host(sender, 2)
        sender.start()
        fabric.events.schedule(400.0, lambda _n: sender.stop())
        fabric.run_until(700.0, agent=False)  # quiesce
        totals = fabric.drop_totals()
        assert model.dropped > 0
        assert sender.tx_packets == (
            totals["delivered"]
            + totals["switch_drops"]
            + totals["egress_dropped"]
            + totals["rx_dropped"]
            + totals["port_fault_dropped"]
            + totals["link_fault_dropped"]
        )
        assert totals["link_fault_dropped"] == model.dropped

    def test_corrupted_packets_keep_flowing(self):
        fault = LinkFaultModel(
            seed=BASE_SEED * 1000 + 41, corrupt_rate=0.25,
            corrupt_fields=("ipv4.srcAddr",), corrupt_mask=0x80,
        )
        sim, sink, sender = _sender_run(1, fault, n_ticks=100)
        assert fault.corrupted > 0
        # Corruption does not consume packets: everything sent arrives
        # (srcAddr is not routed on).
        assert sink.rx_packets == sender.tx_packets
        kinds = {event[2] for event in fault.events}
        assert kinds == {"corrupt"}
        assert all(
            detail == "ipv4.srcAddr^0x80"
            for _, _, _, detail in fault.events
        )

    def test_corruption_never_touches_intrinsic_metadata(self):
        fault = LinkFaultModel(seed=5, corrupt_rate=1.0)
        packet = Packet({"ipv4.dstAddr": 7,
                         "standard_metadata.ingress_port": 3})
        for _ in range(32):
            fault.admit(packet, 1.0, "in")
        assert packet.fields["standard_metadata.ingress_port"] == 3


class TestPortStatsSurface:
    def test_port_stats_exposes_fault_counters(self):
        fault = LinkFaultModel(seed=BASE_SEED * 1000 + 43, drop_rate=0.3,
                               corrupt_rate=0.1)
        sim, _, _ = _sender_run(1, fault, n_ticks=150)
        stats = sim.port_stats(0)
        assert stats.fault is fault
        assert stats.fault.dropped == fault.dropped
        assert stats.fault.corrupted == fault.corrupted

    def test_link_fault_summary_shape(self):
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
        s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
        link = fabric.connect(s0, 0, s1, 0)
        fabric.install_link_fault(
            link, LinkFaultModel(seed=1, drop_rate=0.5)
        )
        summary = fabric.link_fault_summary()
        assert summary == [{
            "name": "s0:0<->s1:0", "up": True,
            "fault_dropped": 0, "fault_corrupted": 0,
        }]


class TestPlanLowering:
    def test_link_specs_never_intercept_driver_ops(self):
        spec = FaultSpec(kind="link_drop", probability=0.5)
        assert spec.is_link_fault
        assert not spec.matches("table_add", "route", "pcie", 0, 1.0)

    def test_default_random_plan_unchanged(self):
        """link_fraction=0 must not perturb existing seeded plans."""
        for seed in range(5):
            before = random_fault_plan(seed)
            after = random_fault_plan(seed, link_fraction=0.0)
            assert [vars(a) for a in before.specs] == [
                vars(b) for b in after.specs
            ]

    def test_mixed_plan_has_both_kinds_somewhere(self):
        kinds = set()
        for seed in range(30):
            plan = random_mixed_fault_plan(seed)
            kinds.update(spec.kind for spec in plan.specs)
            for _, spec in plan.link_specs():
                assert spec.window_us is not None
                assert spec.max_triggers is not None
                assert 1e-3 <= spec.probability <= 1e-1
        assert "link_drop" in kinds and "link_corrupt" in kinds
        assert kinds & {"transient", "latency", "drop", "corrupt"}

    def test_install_is_deterministic(self):
        plan = FaultPlan(seed=12, specs=[
            FaultSpec(kind="link_drop", probability=0.3,
                      window_us=(0.0, 100.0), max_triggers=10),
            FaultSpec(kind="link_corrupt", probability=0.2,
                      corrupt_mask=0x4),
        ])
        models = []
        for _ in range(2):
            clock = SimClock()
            fabric = NetworkSim(clock=clock)
            s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
            s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
            fabric.connect(s0, 0, s1, 0)
            fabric.connect(s0, 1, s1, 1)
            models.append(install_link_fault_plan(plan, fabric))
        assert [m.seed for m in models[0]] == [m.seed for m in models[1]]
        assert len(models[0]) == 4  # 2 specs x 2 links
        assert len({m.seed for m in models[0]}) == 4
        first = models[0][0]
        assert first.drop_rate == 0.3
        assert first.window_us == (0.0, 100.0)
        assert first.max_drops == 10

    def test_targets_filter_by_link_name(self):
        plan = FaultPlan(seed=9, specs=[
            FaultSpec(kind="link_drop", probability=0.5,
                      targets=frozenset({"s0:1<->s1:1"})),
        ])
        clock = SimClock()
        fabric = NetworkSim(clock=clock)
        s0 = fabric.add_switch(_forward_system(clock=clock), "s0")
        s1 = fabric.add_switch(_forward_system(clock=clock), "s1")
        fabric.connect(s0, 0, s1, 0)
        target = fabric.connect(s0, 1, s1, 1)
        installed = install_link_fault_plan(plan, fabric)
        assert len(installed) == 1
        assert target.fault_models == installed
        assert fabric.links[0].fault_models == []
