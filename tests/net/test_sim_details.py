"""Detailed network-simulator tests: serialization math, latency,
drop accounting, and the live sampling rate of the DoS reaction."""

import pytest

from repro.apps.dos import DosMitigationApp
from repro.net.hosts import SinkHost, UdpSender
from repro.net.sim import NetworkSim, PortConfig
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

FORWARDER = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
}
control ingress { apply(route); }
"""


class TestPortConfig:
    def test_serialization_time(self):
        config = PortConfig(bandwidth_gbps=10.0)
        # 1500B at 10 Gbps = 1.2 us.
        assert config.serialization_us(1500) == pytest.approx(1.2)
        # 64B at 25 Gbps = 20.48 ns.
        fast = PortConfig(bandwidth_gbps=25.0)
        assert fast.serialization_us(64) == pytest.approx(0.02048)


class TestDeliveryTiming:
    def test_one_packet_latency_budget(self):
        system = MantisSystem.from_source(FORWARDER)
        sim = NetworkSim(system)
        sim.configure_port(0, PortConfig(bandwidth_gbps=10.0, latency_us=3.0))
        sim.configure_port(1, PortConfig(bandwidth_gbps=10.0, latency_us=5.0))
        arrivals = []
        sink = SinkHost("d")
        sink.on_receive = lambda packet, now: arrivals.append(now)
        sender = SinkHost("s")  # bare host used only for sending
        sim.attach_host(sender, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        sent_at = sim.clock.now  # driver ops already advanced the clock
        sender.send({"ipv4.srcAddr": 1, "ipv4.dstAddr": 9},
                    size_bytes=1500)
        sim.run_until(100.0, agent=False)
        assert len(arrivals) == 1
        # ingress: 3.0 latency + 1.2 serialization; egress: 1.2
        # serialization + 5.0 latency.
        assert arrivals[0] - sent_at == pytest.approx(3.0 + 1.2 + 1.2 + 5.0)

    def test_queueing_delay_accumulates(self):
        system = MantisSystem.from_source(FORWARDER)
        sim = NetworkSim(system)
        sim.configure_port(1, PortConfig(bandwidth_gbps=1.0, latency_us=0.0))
        arrivals = []
        sink = SinkHost("d")
        sink.on_receive = lambda packet, now: arrivals.append(now)
        sender = SinkHost("s")
        sim.attach_host(sender, 0)
        sim.attach_host(sink, 1)
        system.driver.add_entry("route", [9], "forward", [1])
        # Three back-to-back packets: the egress port serializes them
        # one after another (12us each at 1 Gbps / 1500B).
        for _ in range(3):
            sender.send({"ipv4.srcAddr": 1, "ipv4.dstAddr": 9})
        sim.run_until(200.0, agent=False)
        assert len(arrivals) == 3
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        for gap in gaps:
            assert gap == pytest.approx(12.0, rel=0.01)

    def test_switch_drop_accounting(self):
        system = MantisSystem.from_source(FORWARDER)
        sim = NetworkSim(system)
        sender = SinkHost("s")
        sim.attach_host(sender, 0)
        sender.send({"ipv4.srcAddr": 1, "ipv4.dstAddr": 123})  # no route
        sim.run_until(50.0, agent=False)
        assert sim.switch_drops == 1
        assert sim.delivered == 0


class TestLiveSamplingRate:
    def test_dos_reaction_samples_roughly_one_in_k(self):
        """The paper: 'Mantis was able to sustain a sampling rate of
        ~10us, corresponding to an average of ~1 in 5 packets.'  In
        our stack the same ratio emerges from the iteration time vs
        packet interarrival: verify the measured ratio matches it."""
        app = DosMitigationApp(threshold_gbps=1e9)
        sim = NetworkSim(app.system)
        app.prologue()
        app.add_route(0x0B000001, 1)
        sink = SinkHost("d")
        sim.attach_host(sink, 1)
        sender = UdpSender(
            "s", {"ipv4.srcAddr": 5, "ipv4.dstAddr": 0x0B000001},
            rate_gbps=10.0,  # 1500B @ 10G -> one packet per 1.2us
        )
        sim.attach_host(sender, 0)
        sender.start(at_us=0.0)
        sim.run_until(2_000.0)
        iterations = app.system.agent.iterations
        packets = sender.tx_packets
        assert packets > iterations  # more packets than polls
        measured_ratio = packets / iterations
        expected_ratio = (
            app.system.agent.avg_reaction_time_us / 1.2
        )
        assert measured_ratio == pytest.approx(expected_ratio, rel=0.2)
        # The estimator still tracks total bytes (marginal attribution
        # sums to the counter's total regardless of sampling rate).
        assert app.estimate(5) == pytest.approx(
            sink.rx_bytes, rel=0.15
        )
