"""Burst event coalescing in the network simulator.

A burst sender folds ``burst_size`` packets into ONE event-queue entry
(``send_burst_to_switch`` -> ``SwitchAsic.process_batch``) while the
per-packet arrival times, queue accounting, and drop decisions stay
those of a scalar sender.  These tests pin the equal-timestamp FIFO
contract of the event queue itself, then the exactness of the
coalescing for a single sender, the aggregate agreement for the
multi-sender Figure 15 scenario, and the bit-identity of the
vectorized traffic-manager tail (``_BurstTM``) against the per-packet
sink closure.
"""

from __future__ import annotations

import pytest

from repro.apps.dos import DOS_P4R, build_dos_scenario
from repro.net.events import EventQueue
from repro.net.hosts import SinkHost, UdpSender
from repro.net.sim import LinkFaultModel, NetworkSim, PortConfig
from repro.switch.compiled import asic_state_snapshot
from repro.system import MantisSystem


class TestEventQueueOrdering:
    """Satellite: drain() is FIFO for events at equal timestamps."""

    def test_equal_timestamps_run_in_schedule_order(self):
        queue = EventQueue()
        ran = []
        for tag in range(8):
            queue.schedule(10.0, lambda _now, t=tag: ran.append(t))
        queue.drain(10.0)
        assert ran == list(range(8))

    def test_fifo_across_interleaved_times(self):
        queue = EventQueue()
        ran = []
        queue.schedule(5.0, lambda _n: ran.append("a@5"))
        queue.schedule(3.0, lambda _n: ran.append("a@3"))
        queue.schedule(5.0, lambda _n: ran.append("b@5"))
        queue.schedule(3.0, lambda _n: ran.append("b@3"))
        queue.drain(5.0)
        assert ran == ["a@3", "b@3", "a@5", "b@5"]

    def test_reentrant_schedule_keeps_fifo(self):
        """An event scheduled *during* a drain at an already-due time
        still runs after previously scheduled events at that time."""
        queue = EventQueue()
        ran = []

        def first(_now):
            ran.append("first")
            queue.schedule(10.0, lambda _n: ran.append("nested"))

        queue.schedule(10.0, first)
        queue.schedule(10.0, lambda _n: ran.append("second"))
        queue.drain(10.0)
        assert ran == ["first", "second", "nested"]


def _dos_system() -> MantisSystem:
    system = MantisSystem.from_source(DOS_P4R, num_ports=8)
    system.agent.prologue()
    system.driver.add_entry("route", [0x0A00FFFF], "forward", [1])
    return system


def _single_sender_run(burst_size: int):
    """One UDP sender into a slow bottleneck port (so queueing and
    tail drops actually happen), no agent.

    The sender rate gives an exact 1.5 us interval (1.5 is dyadic, so
    repeated addition is float-exact), and the stop time 360.25 us sits
    strictly between tick 240 and tick 241 for every burst size
    dividing 240 -- a coalesced sender cannot stop mid-burst, so exact
    equivalence needs the horizon on a common burst boundary."""
    system = _dos_system()
    sim = NetworkSim(system)
    sim.configure_port(
        1, PortConfig(bandwidth_gbps=2.0, queue_capacity_pkts=8)
    )
    sink = SinkHost("victim")
    sim.attach_host(sink, 1)
    sender = UdpSender(
        "src",
        {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": 0x0A00FFFF},
        rate_gbps=8.0,  # 1500 B -> one packet per 1.5 us
        burst_size=burst_size,
    )
    sim.attach_host(sender, 2)
    sender.start(at_us=1.0)
    sim.run_until(360.25, agent=False)
    sender.stop()
    # Flush in-flight serializations and deliveries.
    sim.run_until(460.0, agent=False)
    return system, sim, sender, sink


class TestSingleSenderBurstEquivalence:
    """With one sender there are no foreign events to reorder, so
    coalescing must be *exact*: same ASIC state, same deliveries, same
    tail drops, same timestamps."""

    @pytest.mark.parametrize("burst_size", [2, 5, 16])
    def test_burst_matches_scalar_exactly(self, burst_size: int):
        ref_system, ref_sim, ref_sender, ref_sink = _single_sender_run(1)
        system, sim, sender, sink = _single_sender_run(burst_size)

        assert sender.tx_packets == ref_sender.tx_packets == 240
        assert sink.rx_packets == ref_sink.rx_packets
        assert sink.windows == ref_sink.windows  # per-window bytes
        assert sim.delivered == ref_sim.delivered
        assert sim.switch_drops == ref_sim.switch_drops
        port = sim.port_stats(1)
        ref_port = ref_sim.port_stats(1)
        assert port.dropped == ref_port.dropped
        assert port.tx_packets == ref_port.tx_packets
        assert port.busy_until == ref_port.busy_until  # float-exact
        state = asic_state_snapshot(system.asic)
        ref_state = asic_state_snapshot(ref_system.asic)
        for section in state:
            assert state[section] == ref_state[section], section

    def test_burst_collapses_event_count(self):
        _, ref_sim, _, _ = _single_sender_run(1)
        _, sim, _, _ = _single_sender_run(8)
        # One ingress event per burst instead of per packet; delivery
        # events stay per packet, so the total strictly shrinks.
        assert sim.events.processed < ref_sim.events.processed

    def test_burst_sees_live_queue_depth_mid_burst(self):
        """deq_qdepth must grow *within* a burst: packet i+1 sees the
        depth after packet i's enqueue (incremental accounting, not a
        frozen snapshot)."""
        system = _dos_system()
        sim = NetworkSim(system)
        sim.configure_port(
            1, PortConfig(bandwidth_gbps=1.0, queue_capacity_pkts=64)
        )
        sink = SinkHost("victim")
        sim.attach_host(sink, 1)
        depths = []
        sender = UdpSender(
            "src",
            {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": 0x0A00FFFF},
            rate_gbps=100.0,  # far above the 1 Gbps drain rate
            burst_size=12,
        )
        sim.attach_host(sender, 2)

        original = system.asic.queue_model

        def spying_queue_model(port, now):
            depth = original(port, now)
            if port == 1:
                depths.append(depth)
            return depth

        system.asic.queue_model = spying_queue_model
        sender.start(at_us=1.0)
        sim.run_until(30.0, agent=False)
        sender.stop()
        assert len(depths) >= 12
        # Monotone growth across the first burst: drain is ~80x slower
        # than arrival, so each packet sees one more queued than the last.
        first_burst = depths[:12]
        assert first_burst == sorted(first_burst)
        assert first_burst[-1] > first_burst[0]


class TestMultiSenderBurstAggregate:
    """With competing senders, coalescing reorders events inside a
    burst window, so per-packet equality is not guaranteed -- but the
    aggregate Figure 15 behaviour must be preserved."""

    def test_dos_scenario_aggregate_matches(self):
        def run(burst_size):
            app, sim, flows, sink, attacker = build_dos_scenario(
                n_benign=5,
                attack_rate_gbps=20.0,
                min_duration_us=100.0,
                burst_size=burst_size,
            )
            app.prologue()
            for flow in flows:
                flow.start(at_us=5.0)
            attacker.start(at_us=20.0)
            sim.run_until(600.0)
            return app, sim, attacker

        ref_app, ref_sim, ref_attacker = run(1)
        app, sim, attacker = run(6)
        # A coalesced sender cannot stop mid-burst, so the horizon may
        # cost up to one extra burst; everything else must agree.
        assert (
            0 <= attacker.tx_packets - ref_attacker.tx_packets < 6
        )
        assert app.system.asic.packets_processed == pytest.approx(
            ref_app.system.asic.packets_processed, rel=0.05
        )
        # The flooder is detected and blocked in both configurations.
        assert ref_app.is_blocked(0x0AFF0001)
        assert app.is_blocked(0x0AFF0001)
        # Burst mode actually took the batched pipeline path.
        stats = app.system.asic.batch_stats
        assert stats.batches > 0
        assert stats.packets >= stats.batches


class _TimedSink(SinkHost):
    """SinkHost that also logs (receive time, fields) per packet so
    delivery *timestamps* can be compared bit-for-bit."""

    def __init__(self, name: str):
        super().__init__(name)
        self.log = []

    def receive(self, packet, now):
        super().receive(packet, now)
        self.log.append((now, tuple(sorted(packet.fields.items()))))


class TestVectorizedBurstTail:
    """Tentpole: the vectorized traffic-manager tail (``_BurstTM``,
    prefix-sum queue accounting over the burst's arrival instants)
    must be bit-identical to the per-packet sink closure -- delivery
    ports, timestamps, queue stats, and the whole drop ledger --
    across engines, capacity hits, idle gaps, down ports, and link
    fault plans."""

    @staticmethod
    def _run(
        execution_mode: str,
        vectorized: bool,
        rate_gbps: float = 8.0,
        burst: int = 16,
        down_window=None,
        fault_seed=None,
    ):
        system = MantisSystem.from_source(
            DOS_P4R, num_ports=8, execution_mode=execution_mode
        )
        system.agent.prologue()
        system.driver.add_entry("route", [0x0A00FFFF], "forward", [1])
        sim = NetworkSim(system)
        if not vectorized:
            sim._default_switch._burst_vec = False
        sim.configure_port(
            1, PortConfig(bandwidth_gbps=2.0, queue_capacity_pkts=8)
        )
        sink = _TimedSink("victim")
        sim.attach_host(sink, 1)
        if fault_seed is not None:
            sim.port_stats(2)
            fault = LinkFaultModel(
                seed=fault_seed, drop_rate=0.15, corrupt_rate=0.1,
                corrupt_fields=("ipv4.srcAddr",), corrupt_mask=0x8,
            )
            sim._default_switch.set_port_fault(2, fault)
        sender = UdpSender(
            "src",
            {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": 0x0A00FFFF},
            rate_gbps=rate_gbps,
            burst_size=burst,
        )
        sim.attach_host(sender, 2)
        sender.start(at_us=1.0)
        if down_window is not None:
            start, end = down_window
            sim.events.schedule(
                start, lambda _n: sim.set_link_up(1, False)
            )
            sim.events.schedule(end, lambda _n: sim.set_link_up(1, True))
        sim.run_until(360.25, agent=False)
        sender.stop()
        sim.run_until(600.0, agent=False)
        return system, sim, sink

    @classmethod
    def _observe(cls, system, sim, sink):
        port = sim.port_stats(1)
        return {
            "rx": sink.rx_packets,
            "windows": sink.windows,
            "log": sink.log,
            "delivered": sim.delivered,
            "switch_drops": sim.switch_drops,
            "dropped": port.dropped,
            "tx_packets": port.tx_packets,
            "tx_bytes": port.tx_bytes,
            "rx_dropped": port.rx_dropped,
            "busy_until": port.busy_until,
            "totals": sim.drop_totals(),
            "state": asic_state_snapshot(system.asic),
        }

    @pytest.mark.parametrize("execution_mode", ["compiled", "columnar"])
    def test_bottleneck_matches_scalar_sink(self, execution_mode: str):
        """Queueing + tail drops: capacity hits exercise the per-lane
        replay inside the vectorized admit."""
        if execution_mode == "columnar":
            pytest.importorskip("numpy")
        ref = self._observe(*self._run(execution_mode, vectorized=False))
        vec = self._observe(*self._run(execution_mode, vectorized=True))
        assert vec == ref
        assert ref["dropped"] > 0  # the scenario actually tail-drops

    def test_idle_gaps_match_scalar_sink(self):
        """Arrival slower than drain: the queue empties inside each
        burst, breaking the continuous-busy prefix-sum fast path."""
        pytest.importorskip("numpy")
        ref = self._observe(
            *self._run("columnar", vectorized=False, rate_gbps=1.0, burst=8)
        )
        vec = self._observe(
            *self._run("columnar", vectorized=True, rate_gbps=1.0, burst=8)
        )
        assert vec == ref
        assert ref["dropped"] == 0

    def test_down_port_matches_scalar_sink(self):
        pytest.importorskip("numpy")
        ref = self._observe(*self._run(
            "columnar", vectorized=False, down_window=(50.0, 120.0)
        ))
        vec = self._observe(*self._run(
            "columnar", vectorized=True, down_window=(50.0, 120.0)
        ))
        assert vec == ref
        assert ref["dropped"] > 0  # packets died on the dead cable

    @pytest.mark.parametrize("seed", [3, 11])
    def test_link_fault_plan_matches_scalar_sink(self, seed: int):
        pytest.importorskip("numpy")
        ref = self._observe(
            *self._run("columnar", vectorized=False, fault_seed=seed)
        )
        vec = self._observe(
            *self._run("columnar", vectorized=True, fault_seed=seed)
        )
        assert vec == ref

    def test_gate_accepts_dos_and_rejects_recirculation(self):
        """``_burst_vec_ok`` is a static reachability check: the DoS
        program qualifies (drops are ingress-only), a recirculating
        program does not."""
        pytest.importorskip("numpy")
        from repro.net.sim import _burst_vec_ok
        from repro.switch.asic import STANDARD_METADATA_P4

        dos = MantisSystem.from_source(DOS_P4R, num_ports=8)
        assert _burst_vec_ok(dos) is True
        recirc_src = STANDARD_METADATA_P4 + """
        header_type h_t { fields { hops : 8; } }
        header h_t hdr;
        action bounce() {
            add_to_field(hdr.hops, 1);
            modify_field(standard_metadata.egress_spec, 1);
            recirculate();
        }
        table hopper { actions { bounce; } default_action : bounce(); }
        control ingress { apply(hopper); }
        """
        recirc = MantisSystem.from_source(recirc_src, num_ports=8)
        assert _burst_vec_ok(recirc) is False
        sim = NetworkSim(recirc)
        assert sim._default_switch._burst_vec is False


class TestSerializationPrecompute:
    """Satellite: per-port bytes->us factor is computed once and
    matches PortConfig.serialization_us bit-for-bit."""

    @pytest.mark.parametrize("bandwidth_gbps", [0.5, 1.0, 9.7, 25.0, 100.0])
    def test_rate_factor_matches_config(self, bandwidth_gbps: float):
        config = PortConfig(bandwidth_gbps=bandwidth_gbps)
        system = _dos_system()
        sim = NetworkSim(system)
        sim.configure_port(3, config)
        port = sim.port_stats(3)
        for size in (64, 577, 1500, 9000):
            assert (
                size * 8 / port.rate_bits_per_us
                == config.serialization_us(size)
            )
