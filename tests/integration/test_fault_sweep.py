"""Randomized fault-injection sweep over the Figure 15 DoS workload.

Each seed builds a fresh DoS mitigation system with retries and commit
verification enabled, attaches a randomized :class:`FaultPlan` to the
control channel, and drives the dialogue loop against a scripted
attacker-plus-benign packet mix.  The plan goes quiet partway through;
after a short clean tail, the run must satisfy the paper's claims:

(a) serializable isolation held throughout -- the active-version entry
    set never changed except at a vv flip (no packet can have matched
    a mixed-version configuration);
(b) the agent reports healthy once faults clear, with the two-entry
    shadow invariant restored on the device;
(c) a fresh agent recovered from switch state agrees with the
    surviving agent on every piece of committed configuration.

``MANTIS_FAULT_SEED`` offsets the seed block so CI can run disjoint
matrices: base ``B`` covers seeds ``B*1000 .. B*1000+49``.
"""

import os
import random

import pytest

from repro.agent.agent import MantisAgent
from repro.apps.dos import DOS_P4R, DosMitigationApp
from repro.errors import DriverTimeoutError, TransientDriverError
from repro.faults import (
    FaultInjector,
    VersionInvariantChecker,
    random_fault_plan,
    shadow_parity_violations,
)
from repro.switch.driver import RetryPolicy
from repro.switch.packet import Packet
from repro.system import MantisSystem

BASE_SEED = int(os.environ.get("MANTIS_FAULT_SEED", "0"))
NUM_PLANS = 50
SEEDS = range(BASE_SEED * 1000, BASE_SEED * 1000 + NUM_PLANS)

DST_ADDR = 0x0A00FFFF
ATTACKER = 0x0AFF0001
FAULTY_ITERATIONS = 45
CLEAN_TAIL_ITERATIONS = 10


def build_app():
    system = MantisSystem.from_source(
        DOS_P4R,
        retry_policy=RetryPolicy(),
        verify_commits=True,
        num_ports=8,
    )
    app = DosMitigationApp(
        system=system, threshold_gbps=0.5, min_duration_us=20.0
    )
    app.prologue()
    app.add_route(DST_ADDR, 1)
    return app


def scripted_packets(rng, iteration):
    """One dialogue interval's worth of traffic: benign background,
    then the flooder's burst.  The flooder is last so the per-interval
    source sample (an ``ing`` field export: the most recent packet)
    always attributes the marginal bytes to it, as a sustained flood
    does in the Figure 15 topology."""
    for _ in range(rng.randrange(1, 4)):
        yield 0x0A000001 + rng.randrange(8), rng.choice((80, 200, 600))
    yield ATTACKER, 1500
    yield ATTACKER, 1500


def drive(app, rng, iteration):
    for src, size in scripted_packets(rng, iteration):
        packet = Packet(
            {"ipv4.srcAddr": src, "ipv4.dstAddr": DST_ADDR},
            size_bytes=size,
        )
        app.system.asic.process(packet)
    try:
        app.system.agent.run_iteration()
    except (TransientDriverError, DriverTimeoutError):
        # A reaction-issued blocklist add exhausted its retry budget;
        # the app retries the block on a later sample.
        pass


def blocklist_view(agent):
    handle = agent.table("blocklist")
    return sorted(
        (user.key, user.action, tuple(user.args))
        for user in handle._users.values()
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_dos_workload_survives_fault_plan(seed):
    app = build_app()
    system = app.system
    agent = system.agent
    checker = VersionInvariantChecker(system)
    plan = random_fault_plan(
        seed, start_us=system.clock.now, duration_us=1200.0
    )
    injector = FaultInjector(plan).attach(system.driver)
    rng = random.Random(seed ^ 0xD05)

    for iteration in range(FAULTY_ITERATIONS):
        drive(app, rng, iteration)
    injector.enabled = False
    for iteration in range(CLEAN_TAIL_ITERATIONS):
        drive(app, rng, FAULTY_ITERATIONS + iteration)

    # (a) isolation: active config only ever changed at vv flips.
    assert checker.violations == []
    assert checker.flips > 0

    # (b) converged and healthy once the plan went quiet.
    health = agent.health()
    assert health.healthy, (
        f"seed {seed}: still degraded after clean tail: {health}"
    )
    assert shadow_parity_violations(system) == []
    assert app.is_blocked(ATTACKER)

    # (c) a restarted agent reconstructs the same committed state.
    fresh = MantisAgent(system.artifacts, system.driver)
    fresh.recover()
    assert fresh.vv == agent.vv
    assert fresh.mv == agent.mv
    assert fresh._master_args == agent._master_args
    assert fresh._param_values == agent._param_values
    assert blocklist_view(fresh) == blocklist_view(agent)
