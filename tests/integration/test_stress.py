"""Stress test: a combined workload exercising every subsystem at
once, with global invariants checked at the end.

One switch runs heartbeat counting, a malleable ACL, ECMP-style
hashing, and per-port accounting simultaneously; two reactions adapt
the configuration while UDP and TCP traffic flows.  After ~20 ms of
simulated time we check conservation and consistency invariants that
would catch interleaving bugs no unit test targets directly.
"""

import pytest

from repro.net.hosts import HeartbeatGenerator, SinkHost, UdpSender
from repro.net.sim import NetworkSim, PortConfig
from repro.net.tcp import TcpFlow, TcpSink
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; } }
header tcp_t tcp;
header_type m_t { fields { bucket : 16; cnt : 32; } }
metadata m_t m;

register hb_count { width : 32; instance_count : 16; }
register port_pkts { width : 32; instance_count : 16; }

malleable value ecmp_paths { width : 16; init : 2; }
malleable field hash_key {
    width : 32; init : ipv4.dstAddr;
    alts { ipv4.dstAddr, ipv4.srcAddr }
}

action count_hb() {
    register_read(m.cnt, hb_count, standard_metadata.ingress_port);
    add(m.cnt, m.cnt, 1);
    register_write(hb_count, standard_metadata.ingress_port, m.cnt);
    drop();
}
action skip() { no_op(); }
table hb_filter {
    reads { ipv4.proto : exact; }
    actions { count_hb; skip; }
    default_action : skip();
}

action allow() { no_op(); }
action block() { drop(); }
malleable table acl {
    reads { ipv4.srcAddr : exact; }
    actions { allow; block; }
    default_action : allow();
    size : 64;
}

field_list lb_fl { ${hash_key}; }
field_list_calculation lb_hash {
    input { lb_fl; }
    algorithm : crc16;
    output_width : 16;
}
action pick() {
    modify_field_with_hash_based_offset(m.bucket, 0, lb_hash, 2);
    add(standard_metadata.egress_spec, m.bucket, 4);
}
table lb { actions { pick; } default_action : pick(); }

action acct() {
    register_read(m.cnt, port_pkts, standard_metadata.egress_port);
    add(m.cnt, m.cnt, 1);
    register_write(port_pkts, standard_metadata.egress_port, m.cnt);
}
table accounting { actions { acct; } default_action : acct(); }

control ingress {
    apply(hb_filter);
    apply(acl);
    apply(lb);
}
control egress {
    apply(accounting);
}

reaction guard(ing ipv4.srcAddr, reg hb_count[0:15]) {
    // host-attached: blocks a known-bad source when seen
}
reaction balance(reg port_pkts[0:15]) {
    // host-attached: flips the hash key under imbalance
}
"""

BAD_SRC = 0x66666666
HORIZON_US = 20_000.0


def test_mixed_workload_invariants():
    system = MantisSystem.from_source(PROGRAM, num_ports=16)
    sim = NetworkSim(system)
    for port in (4, 5):
        sim.configure_port(port, PortConfig(bandwidth_gbps=5.0))
    agent = system.agent
    agent.prologue()
    system.driver.add_entry("hb_filter", [253], "count_hb")

    blocked = {"done": False}

    def guard(ctx):
        if ctx.args["ipv4_srcAddr"] == BAD_SRC and not blocked["done"]:
            ctx.table("acl").add([BAD_SRC], "block")
            blocked["done"] = True

    shifts = []

    def balance(ctx):
        counts = ctx.args["port_pkts"]
        port4, port5 = counts.get(4, 0), counts.get(5, 0)
        total = port4 + port5
        if total > 200 and abs(port4 - port5) > 0.8 * total:
            current = ctx.read("hash_key")
            ctx.write("hash_key", current ^ 1)
            shifts.append(ctx.now)

    agent.attach_python("guard", guard)
    agent.attach_python("balance", balance)

    sinks = [SinkHost(f"sink{p}") for p in (4, 5)]
    sim.attach_host(sinks[0], 4)
    sim.attach_host(sinks[1], 5)
    heartbeats = HeartbeatGenerator(
        "hb", {"ipv4.proto": 253, "ipv4.srcAddr": 1, "ipv4.dstAddr": 0},
        period_us=1.0,
    )
    sim.attach_host(heartbeats, 0)
    # Many UDP flows with varying src (spread by srcAddr once shifted).
    senders = []
    for index in range(6):
        sender = UdpSender(
            f"udp{index}",
            {"ipv4.srcAddr": 0x0A000001 + index * 7919,
             "ipv4.dstAddr": 0x0B000001, "ipv4.proto": 17},
            rate_gbps=0.5, size_bytes=1000,
        )
        sim.attach_host(sender, 6 + index)
        senders.append(sender)
    flood = UdpSender(
        "bad", {"ipv4.srcAddr": BAD_SRC, "ipv4.dstAddr": 0x0B000001,
                "ipv4.proto": 17},
        rate_gbps=2.0, size_bytes=1000,
    )
    sim.attach_host(flood, 3)

    heartbeats.start(at_us=0.0)
    for sender in senders:
        sender.start(at_us=5.0)
    flood.start(at_us=5_000.0)
    sim.run_until(HORIZON_US)

    # --- invariants -----------------------------------------------------
    # 1. The guard reaction fired (the flood source is now dropped in
    # the data plane -- its packets land in switch_drops below).
    assert blocked["done"]
    # Conservation: injected == delivered + switch drops + queue drops
    # + still-in-flight (bounded by queue capacities).
    injected = (
        heartbeats.tx_packets
        + sum(s.tx_packets for s in senders)
        + flood.tx_packets
    )
    delivered = sum(s.rx_packets for s in sinks)
    queue_drops = sum(
        sim.port_stats(p).dropped for p in range(16)
    )
    in_flight = sum(sim.queue_depth(p) for p in range(16))
    accounted = delivered + sim.switch_drops + queue_drops + in_flight
    assert abs(injected - accounted) <= in_flight + 64  # pending events

    # 2. Heartbeats were all counted and all dropped in the pipeline.
    hb_reg = system.asic.registers.get("hb_count")
    if hb_reg is None:  # original eliminated; read the mirror
        mirror = system.spec.mirrors["hb_count"]
        hb_reg = system.asic.registers[mirror.duplicate]
        counted = max(hb_reg.read(0), hb_reg.read(mirror.padded_count))
    else:
        counted = hb_reg.read(0)
    # (A heartbeat transmitted in the final microseconds may still be
    # on the wire at the horizon.)
    assert heartbeats.tx_packets - 3 <= counted <= heartbeats.tx_packets

    # 3. The balancer saw the polarized load and shifted the hash key.
    assert shifts, "expected at least one hash-key shift"
    assert all(s.rx_packets > 0 for s in sinks)  # both paths used after

    # 4. Agent health: the dialogue ran continuously and every
    #    malleable-table shadow stayed in sync (entry count is even:
    #    one concrete entry per version).
    assert agent.iterations > 500
    assert system.asic.tables["acl"].entry_count % 2 == 0
    assert agent.table("acl").pending_ops == 0

    # 5. Clock sanity: simulated time reached the horizon.
    assert system.clock.now >= HORIZON_US
