"""A corpus of larger, realistic P4R programs.

Each program combines several Mantis features the way a production
deployment would; each test compiles it, boots the full stack, and
checks behaviour end to end.
"""

import pytest

from repro.p4.validate import validate_program
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

# ---------------------------------------------------------------------------
# 1. An L3 router with a reactive ACL: LPM routing + TTL handling +
#    a malleable blocklist + per-port byte accounting polled by a
#    reaction that rate-limits.

L3_ROUTER = STANDARD_METADATA_P4 + """
header_type ethernet_t { fields { dst : 48; src : 48; etherType : 16; } }
header ethernet_t ethernet;
header_type ipv4_t {
    fields { ttl : 8; proto : 8; srcAddr : 32; dstAddr : 32; }
}
header ipv4_t ipv4;
header_type meta_t { fields { bytes : 32; } }
metadata meta_t meta;

register port_bytes { width : 32; instance_count : 16; }

malleable value rate_limit_kb { width : 32; init : 0xffffffff; }

action route(port, gw_mac) {
    modify_field(standard_metadata.egress_spec, port);
    modify_field(ethernet.dst, gw_mac);
    subtract_from_field(ipv4.ttl, 1);
}
action to_cpu() { modify_field(standard_metadata.egress_spec, 0); }
action _drop() { drop(); }

table rib {
    reads { ipv4.dstAddr : lpm; }
    actions { route; to_cpu; _drop; }
    default_action : _drop();
    size : 1024;
}

action allow() { no_op(); }
action block() { drop(); }
malleable table acl {
    reads { ipv4.srcAddr : exact; ipv4.proto : ternary; }
    actions { allow; block; }
    default_action : allow();
    size : 256;
}

action account() {
    register_read(meta.bytes, port_bytes, standard_metadata.egress_spec);
    add(meta.bytes, meta.bytes, standard_metadata.packet_length);
    register_write(port_bytes, standard_metadata.egress_spec, meta.bytes);
}
table accounting {
    actions { account; }
    default_action : account();
}

control ingress {
    apply(acl);
    if (ipv4.ttl > 1) {
        apply(rib);
    } else {
        apply(rib);
    }
    apply(accounting);
}

reaction watch_ports(reg port_bytes[0:15]) {
    // Host-attached.
}
"""


class TestL3Router:
    @pytest.fixture
    def system(self):
        sys_ = MantisSystem.from_source(L3_ROUTER)
        sys_.agent.prologue()
        driver = sys_.driver
        # 10.0.0.0/8 -> port 1, 10.1.0.0/16 -> port 2 (longest wins).
        driver.add_entry("rib", [(0x0A000000, 8)], "route", [1, 0xAA])
        driver.add_entry("rib", [(0x0A010000, 16)], "route", [2, 0xBB])
        return sys_

    def _packet(self, dst, src=0x01020304, ttl=64, proto=6):
        return Packet({
            "ipv4.dstAddr": dst, "ipv4.srcAddr": src,
            "ipv4.ttl": ttl, "ipv4.proto": proto,
            "ethernet.dst": 0, "ethernet.src": 0,
        })

    def test_longest_prefix_routing(self, system):
        port, packet = system.asic.process(self._packet(0x0A010203))
        assert port == 2
        assert packet.get("ipv4.ttl") == 63
        assert packet.get("ethernet.dst") == 0xBB
        port, _ = system.asic.process(self._packet(0x0A7F0001))
        assert port == 1

    def test_unroutable_dropped(self, system):
        assert system.asic.process(self._packet(0x0B000001)) is None

    def test_reactive_blocklist(self, system):
        handle = system.agent.table("acl")
        # Block TCP (proto 6) from a specific source, any other proto ok.
        handle.add([0xDEAD, (6, 0xFF)], "block")
        system.agent.run_iteration()
        assert system.asic.process(
            self._packet(0x0A010203, src=0xDEAD, proto=6)
        ) is None
        assert system.asic.process(
            self._packet(0x0A010203, src=0xDEAD, proto=17)
        ) is not None

    def test_accounting_feeds_reaction(self, system):
        observed = {}

        def watcher(ctx):
            observed.update(ctx.args["port_bytes"])

        system.agent.attach_python("watch_ports", watcher)
        system.asic.process(self._packet(0x0A010203))
        system.agent.run_iteration()
        assert observed[2] == 1500


# ---------------------------------------------------------------------------
# 2. A telemetry spine: per-flow sampling + queue watermarks on both
#    pipelines, exercising ing+egr field args and multiple reactions.

TELEMETRY = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; len : 16; } }
header ipv4_t ipv4;

register q_watermark { width : 32; instance_count : 1; }

action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }

action watermark() {
    max(standard_metadata.enq_qdepth, standard_metadata.enq_qdepth,
        standard_metadata.deq_qdepth);
    register_write(q_watermark, 0, standard_metadata.enq_qdepth);
}
table wm { actions { watermark; } default_action : watermark(); }
control egress { apply(wm); }

reaction sample_flow(ing ipv4.srcAddr, ing ipv4.dstAddr, egr ipv4.len) {
    // Host-attached.
}
reaction watch_queue(reg q_watermark[0:0]) {
    // Host-attached.
}
"""


class TestTelemetry:
    def test_two_reactions_polled_independently(self):
        system = MantisSystem.from_source(TELEMETRY)
        system.agent.prologue()
        flows = []
        depths = []
        system.agent.attach_python(
            "sample_flow",
            lambda ctx: flows.append(
                (ctx.args["ipv4_srcAddr"], ctx.args["ipv4_dstAddr"],
                 ctx.args["ipv4_len"])
            ),
        )
        system.agent.attach_python(
            "watch_queue",
            lambda ctx: depths.append(ctx.args["q_watermark"][0]),
        )
        system.asic.ports[1].queue_depth = 12
        system.asic.process(Packet({
            "ipv4.srcAddr": 1, "ipv4.dstAddr": 2, "ipv4.len": 700,
        }))
        system.agent.run_iteration()
        assert flows[-1] == (1, 2, 700)
        assert depths[-1] == 12

    def test_ing_and_egr_containers_separate(self):
        system = MantisSystem.from_source(TELEMETRY)
        pipelines = {c.pipeline for c in system.spec.containers}
        assert pipelines == {"ing", "egr"}
        # The egress collect table sits in the egress control.
        applied = system.artifacts.p4.controls["egress"].applied_tables()
        assert applied[-1] == "p4r_collect_egr_"


# ---------------------------------------------------------------------------
# 3. A flowlet-ish load balancer: malleable hash inputs (load
#    strategy) + a malleable value controlling path count.

BALANCER = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type l4_t { fields { sport : 16; dport : 16; } }
header l4_t l4;
header_type lb_t { fields { bucket : 16; } }
metadata lb_t lb;

malleable value n_paths { width : 16; init : 2; }
malleable field key1 {
    width : 32; init : ipv4.srcAddr;
    alts { ipv4.srcAddr, ipv4.dstAddr }
}

field_list keys { ${key1}; l4.sport; }
field_list_calculation lb_hash {
    input { keys; }
    algorithm : crc16;
    output_width : 16;
}
action pick() {
    modify_field_with_hash_based_offset(lb.bucket, 0, lb_hash, 8);
}
table hash_t { actions { pick; } default_action : pick(); }

action fwd(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table select_t {
    reads { lb.bucket : exact; }
    actions { fwd; _drop; }
    default_action : _drop();
    size : 16;
}
control ingress {
    apply(hash_t);
    apply(select_t);
}
"""


class TestBalancer:
    def test_bucket_spread_and_reshift(self):
        system = MantisSystem.from_source(BALANCER)
        system.agent.prologue()
        for bucket in range(8):
            system.driver.add_entry("select_t", [bucket], "fwd", [bucket % 4])
        system.agent.run_iteration()

        def spread(field):
            ports = set()
            for index in range(32):
                fields = {
                    "ipv4.srcAddr": 1, "ipv4.dstAddr": 1, "l4.sport": 9,
                }
                fields[field] = 1000 + index * 17
                result = system.asic.process(Packet(fields))
                ports.add(result[0])
            return ports

        # Keyed on srcAddr: varying srcAddr spreads...
        assert len(spread("ipv4.srcAddr")) >= 3
        # ... varying dstAddr does not (it is not a hash input).
        assert len(spread("ipv4.dstAddr")) == 1
        # Shift the malleable input to dstAddr and the roles swap.
        system.agent.shift_field("key1", "ipv4.dstAddr")
        system.agent.run_iteration()
        assert len(spread("ipv4.dstAddr")) >= 3
        assert len(spread("ipv4.srcAddr")) == 1


@pytest.mark.parametrize(
    "source", [L3_ROUTER, TELEMETRY, BALANCER],
    ids=["l3_router", "telemetry", "balancer"],
)
def test_corpus_compiles_and_validates(source):
    system = MantisSystem.from_source(source)
    validate_program(system.artifacts.p4)
