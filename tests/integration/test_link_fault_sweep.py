"""Randomized MIXED fault sweep: driver faults + lossy/corrupting
links on the two-switch linkguard fabric.

Each seed builds the full scenario (two Mantis systems with retries
and commit verification, probes, a UDP data flow), draws one
:func:`random_mixed_fault_plan`, lowers its driver specs onto BOTH
control channels and its link specs onto every fabric link, and runs
the fabric with resilient scheduled agents.  The plan's windows close
partway through; after a clean tail the run must show:

(a) serializable isolation held on both switches throughout
    (``VersionInvariantChecker`` clean);
(b) the packet ledger balances on every path: everything a host put
    on a wire is delivered or charged to exactly one drop bucket;
(c) both agents are scheduled and healthy again after the faults
    clear (resilient actors absorbed any exhausted retries).

``MANTIS_FAULT_SEED`` offsets the seed block so CI can run disjoint
matrices: base ``B`` covers seeds ``B*1000 .. B*1000+49``.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.linkguard import build_linkguard_scenario
from repro.faults import (
    FaultInjector,
    VersionInvariantChecker,
    install_link_fault_plan,
    random_mixed_fault_plan,
)
from repro.switch.driver import RetryPolicy

BASE_SEED = int(os.environ.get("MANTIS_FAULT_SEED", "0"))
NUM_PLANS = 50
SEEDS = range(BASE_SEED * 1000, BASE_SEED * 1000 + NUM_PLANS)

FAULTY_US = 1100.0
CLEAN_TAIL_US = 500.0


@pytest.mark.parametrize("seed", SEEDS)
def test_linkguard_fabric_survives_mixed_plan(seed):
    scenario = build_linkguard_scenario(
        loss_rate=0.0,  # the plan injects the link faults
        transport="udp",
        data_rate_gbps=2.0,
        probe_period_us=2.0,
        pacing_sleep_us=10.0,
        system_kwargs=dict(retry_policy=RetryPolicy(), verify_commits=True),
    )
    fabric = scenario.fabric
    app0, app1 = scenario.apps
    checkers = [VersionInvariantChecker(app.system) for app in (app0, app1)]
    app0.prologue()
    app1.prologue()

    start = fabric.clock.now
    plan = random_mixed_fault_plan(seed, start_us=start, duration_us=FAULTY_US)
    injectors = [
        FaultInjector(plan).attach(app.system.driver) for app in (app0, app1)
    ]
    models = install_link_fault_plan(plan, fabric)

    for switch_name in ("s0", "s1"):
        fabric.switch(switch_name).agent_actor.resilient = True

    for probe in scenario.probes:
        probe.start()
    scenario.sender.start()
    fabric.run_until(start + FAULTY_US, agent=True)

    # The plan goes quiet: driver injectors off, link models off.
    for injector in injectors:
        injector.enabled = False
    for model in models:
        model.active = False
    scenario.sender.stop()
    for probe in scenario.probes:
        probe.stop()
    fabric.run_until(start + FAULTY_US + CLEAN_TAIL_US, agent=True)

    # (a) isolation on both switches: the active-version entry set
    # only ever changed at vv flips, even mid-fault.
    for name, checker in zip(("s0", "s1"), checkers):
        assert checker.violations == [], (
            f"seed {seed}: {name} isolation violated: {checker.violations}"
        )

    # (b) conservation: every packet a host sent is delivered or
    # charged to exactly one drop bucket (corruption never consumes).
    totals = fabric.drop_totals()
    host_tx = scenario.sender.tx_packets + sum(
        probe.tx_packets for probe in scenario.probes
    )
    accounted = (
        totals["delivered"]
        + totals["switch_drops"]
        + totals["egress_dropped"]
        + totals["rx_dropped"]
        + totals["port_fault_dropped"]
        + totals["link_fault_dropped"]
    )
    assert host_tx == accounted, (
        f"seed {seed}: ledger off by {host_tx - accounted}: {totals}"
    )

    # (c) both agents survived and report healthy after the tail.
    for name, app in (("s0", app0), ("s1", app1)):
        actor = fabric.switch(name).agent_actor
        health = app.system.agent.health()
        assert health.healthy, (
            f"seed {seed}: {name} degraded after clean tail "
            f"(actor errors={actor.errors}): {health}"
        )
