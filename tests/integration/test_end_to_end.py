"""End-to-end integration: every shipped use case boots its full
stack (compile -> emulated switch -> network sim -> agent loop) and
exhibits its headline behaviour in one short closed-loop run."""

import pytest

from repro.apps.dos import DOS_P4R, build_dos_scenario
from repro.apps.ecmp import ECMP_P4R, build_polarized_scenario
from repro.apps.failover import FAILOVER_P4R, build_failover_scenario
from repro.apps.rl import RL_P4R, build_rl_scenario
from repro.compiler import compile_p4r
from repro.p4.parser import parse_p4
from repro.p4.validate import validate_program


class TestAllUseCasesCompile:
    @pytest.mark.parametrize(
        "source",
        [DOS_P4R, FAILOVER_P4R, ECMP_P4R, RL_P4R],
        ids=["dos", "failover", "ecmp", "rl"],
    )
    def test_compiles_validates_and_reparses(self, source):
        artifacts = compile_p4r(source)
        validate_program(artifacts.p4)
        reparsed = parse_p4(artifacts.p4_source)
        validate_program(reparsed)
        assert artifacts.spec.reactions  # every use case has one


class TestClosedLoops:
    def test_dos_loop(self):
        app, sim, flows, sink, attacker = build_dos_scenario(
            n_benign=4, bottleneck_gbps=5.0, threshold_gbps=2.0,
            min_duration_us=100.0,
        )
        app.prologue()
        for flow in flows:
            flow.start(at_us=10.0)
        attacker.start(at_us=1_000.0)
        sim.run_until(2_500.0)
        assert app.is_blocked(0x0AFF0001)
        assert app.system.agent.iterations > 50

    def test_failover_loop(self):
        app, sim, generators = build_failover_scenario(n_neighbors=3)
        app.prologue()
        for generator in generators.values():
            generator.start(at_us=0.0)
        sim.run_until(300.0)
        generators[0].stop()
        sim.run_until(1_500.0)
        assert 0 in app.reroute_times

    def test_ecmp_loop(self):
        app, sim, senders, sinks = build_polarized_scenario(n_flows=16)
        app.prologue()
        for sender in senders:
            sender.start(at_us=0.0)
        sim.run_until(3_000.0)
        assert app.shift_times  # reaction intervened
        assert sum(s.rx_packets for s in sinks) > 100

    def test_rl_loop(self):
        app, sim, flows, sink = build_rl_scenario(
            n_flows=3, bottleneck_gbps=1.0
        )
        app.prologue()
        for flow in flows:
            flow.start(at_us=5.0)
        sim.run_until(3_000.0)
        assert len(app.rewards) > 50
        assert sum(f.acked for f in flows) > 10


class TestCrossCutting:
    def test_agent_and_traffic_share_one_timeline(self):
        """Packets processed while the agent is mid-iteration land
        between driver operations (op-granularity interleaving)."""
        app, sim, generators = build_failover_scenario(n_neighbors=2)
        app.prologue()
        for generator in generators.values():
            generator.start(at_us=0.0)
        before = sim.events.processed
        app.system.agent.run_until(app.system.clock.now + 200.0)
        # Heartbeats at 1us flowed during the agent's own busy loop.
        assert sim.events.processed - before > 100

    def test_reaction_time_in_paper_band_for_all_use_cases(self):
        """Every use case's dialogue iteration sits in the paper's
        '10s of microseconds' band on the calibrated model."""
        scenarios = [
            build_dos_scenario(n_benign=2)[0],
            build_failover_scenario(n_neighbors=2)[0],
            build_polarized_scenario(n_flows=2)[0],
            build_rl_scenario(n_flows=2)[0],
        ]
        for app in scenarios:
            app.prologue()
            app.system.agent.run(50)
            avg = app.system.agent.avg_reaction_time_us
            assert 1.0 < avg < 100.0, type(app).__name__
