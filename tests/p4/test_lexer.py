"""Lexer unit tests, including the raw-body brace matcher the P4R
parser uses to slice reaction code."""

import pytest

from repro.errors import P4SyntaxError
from repro.p4.lexer import (
    Lexer,
    match_brace_block,
    parse_int,
    token_at_or_after,
)


def kinds(source):
    return [(t.kind, t.value) for t in Lexer(source).tokenize()[:-1]]


class TestTokens:
    def test_identifiers_and_numbers(self):
        assert kinds("foo _bar x9 42 0x2A") == [
            ("ident", "foo"), ("ident", "_bar"), ("ident", "x9"),
            ("number", "42"), ("number", "0x2A"),
        ]

    def test_maximal_munch_operators(self):
        assert [v for _k, v in kinds("a<<=b")] == ["a", "<<=", "b"]
        assert [v for _k, v in kinds("a *= b /= c")] == [
            "a", "*=", "b", "/=", "c",
        ]
        assert [v for _k, v in kinds("x==y != z<=w>=v")] == [
            "x", "==", "y", "!=", "z", "<=", "w", ">=", "v",
        ]
        assert [v for _k, v in kinds("i++ + ++j")] == [
            "i", "++", "+", "++", "j",
        ]

    def test_dollar_brace(self):
        assert kinds("${var}") == [
            ("op", "${"), ("ident", "var"), ("op", "}"),
        ]

    def test_line_and_column_tracking(self):
        tokens = Lexer("a\n  b").tokenize()
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_comments_skipped(self):
        assert kinds("a // comment\nb /* block\nstill */ c") == [
            ("ident", "a"), ("ident", "b"), ("ident", "c"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(P4SyntaxError):
            Lexer("a /* oops").tokenize()

    def test_unexpected_character(self):
        with pytest.raises(P4SyntaxError):
            Lexer("a @ b").tokenize()

    def test_eof_token(self):
        tokens = Lexer("x").tokenize()
        assert tokens[-1].kind == "eof"


class TestBraceMatcher:
    def test_simple(self):
        source = "{ a; b; }"
        assert match_brace_block(source, 0) == len(source)

    def test_nested(self):
        source = "{ if (x) { y; } else { z; } } trailing"
        end = match_brace_block(source, 0)
        assert source[:end].count("{") == source[:end].count("}")
        assert source[end:].strip() == "trailing"

    def test_braces_in_comments_ignored(self):
        source = "{ a; // not a close }\n b; /* { */ }"
        end = match_brace_block(source, 0)
        assert end == len(source)

    def test_unterminated(self):
        with pytest.raises(P4SyntaxError):
            match_brace_block("{ never closed", 0)

    def test_must_start_at_open_brace(self):
        with pytest.raises(P4SyntaxError):
            match_brace_block("x{}", 0)


class TestHelpers:
    def test_parse_int(self):
        assert parse_int("42") == 42
        assert parse_int("0xff") == 255
        assert parse_int("0XFF") == 255

    def test_token_at_or_after(self):
        tokens = Lexer("aa bb cc").tokenize()
        assert token_at_or_after(tokens, 0) == 0
        assert token_at_or_after(tokens, 3) == 1
        assert token_at_or_after(tokens, 6) == 2
        # Past the end: lands on EOF.
        index = token_at_or_after(tokens, 100)
        assert tokens[index].kind == "eof"
