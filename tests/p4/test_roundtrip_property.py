"""Property-based printer/parser round-trip tests.

Randomly generated P4 programs must survive print -> parse -> print
as a fixed point, and the reparsed AST must be semantically valid.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.p4 import ast
from repro.p4.parser import parse_p4
from repro.p4.printer import print_program
from repro.p4.validate import validate_program

ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    # Avoid colliding with declaration keywords the parser dispatches on.
    lambda s: s not in {
        "header", "metadata", "table", "action", "control", "register",
        "counter", "parser", "if", "else", "apply", "valid", "reads",
        "actions", "size", "mask", "fields", "field_list", "input",
        "algorithm", "exact", "ternary", "lpm", "range", "extract",
        "return", "default_action", "width", "instance_count", "type",
        "malleable", "reaction", "value", "field", "alts", "init",
        "header_type", "field_list_calculation", "output_width", "ing",
        "egr", "reg",
    }
)

field_decl = st.builds(
    ast.FieldDecl,
    name=ident,
    width=st.integers(min_value=1, max_value=64),
)


@st.composite
def small_program(draw):
    """A random but semantically valid P4 program."""
    program = ast.Program()

    # 1-2 header types with unique field names.
    n_types = draw(st.integers(min_value=1, max_value=2))
    type_names = draw(
        st.lists(ident, min_size=n_types, max_size=n_types, unique=True)
    )
    for type_name in type_names:
        fields = draw(
            st.lists(field_decl, min_size=1, max_size=4,
                     unique_by=lambda f: f.name)
        )
        program.add(ast.HeaderType(f"{type_name}_t", list(fields)))

    # One instance per type (alternating header/metadata).
    refs = []
    for index, type_name in enumerate(type_names):
        program.add(
            ast.HeaderInstance(type_name, f"{type_name}_t", index % 2 == 1)
        )
        for fld in program.header_types[f"{type_name}_t"].fields:
            refs.append(
                (ast.FieldRef(type_name, fld.name), fld.width)
            )

    # A register.
    program.add(ast.RegisterDecl("r0", 32, draw(
        st.integers(min_value=1, max_value=8))))

    # 1-3 actions over random primitives.
    action_names = []
    n_actions = draw(st.integers(min_value=1, max_value=3))
    for index in range(n_actions):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            dst, _w = draw(st.sampled_from(refs))
            kind = draw(st.sampled_from(
                ["modify_field", "add_to_field", "register_write", "add"]
            ))
            if kind == "modify_field":
                body.append(ast.PrimitiveCall(
                    "modify_field",
                    [dst, draw(st.integers(min_value=0, max_value=255))],
                ))
            elif kind == "add_to_field":
                body.append(ast.PrimitiveCall(
                    "add_to_field",
                    [dst, draw(st.integers(min_value=0, max_value=255))],
                ))
            elif kind == "register_write":
                body.append(ast.PrimitiveCall(
                    "register_write", ["r0", 0, dst]
                ))
            else:
                src, _w2 = draw(st.sampled_from(refs))
                body.append(ast.PrimitiveCall("add", [dst, src, 1]))
        name = f"act{index}"
        program.add(ast.ActionDecl(name, [], body))
        action_names.append(name)

    # A table over a random subset of fields.
    n_reads = draw(st.integers(min_value=0, max_value=2))
    reads = []
    for _ in range(n_reads):
        ref, _w = draw(st.sampled_from(refs))
        match = draw(st.sampled_from(
            [ast.MatchType.EXACT, ast.MatchType.TERNARY, ast.MatchType.LPM]
        ))
        reads.append(ast.TableRead(ref, match))
    program.add(ast.TableDecl(
        "t0",
        reads=reads,
        action_names=list(action_names),
        default_action=(action_names[0], []),
        size=draw(st.sampled_from([None, 16, 1024])),
    ))

    # A control applying it, sometimes under a condition.
    ref, _w = draw(st.sampled_from(refs))
    body = [ast.ApplyCall("t0")]
    if draw(st.booleans()):
        body.append(ast.IfBlock(
            ast.BinOp(
                draw(st.sampled_from(["==", "<", ">=", "!="])),
                ref,
                draw(st.integers(min_value=0, max_value=100)),
            ),
            [ast.ApplyCall("t0")],
            [ast.ApplyCall("t0")] if draw(st.booleans()) else [],
        ))
    program.add(ast.ControlDecl("ingress", body))
    return program


@settings(max_examples=60, deadline=None)
@given(small_program())
def test_print_parse_is_fixed_point(program):
    printed = print_program(program)
    reparsed = parse_p4(printed)
    assert print_program(reparsed) == printed


@settings(max_examples=60, deadline=None)
@given(small_program())
def test_reparsed_program_validates(program):
    validate_program(program)
    reparsed = parse_p4(print_program(program))
    validate_program(reparsed)
    # Structure is preserved.
    assert set(reparsed.tables) == set(program.tables)
    assert set(reparsed.actions) == set(program.actions)
    assert (
        reparsed.controls["ingress"].applied_tables()
        == program.controls["ingress"].applied_tables()
    )


@settings(max_examples=30, deadline=None)
@given(small_program())
def test_generated_programs_load_into_the_emulator(program):
    from repro.switch.asic import SwitchAsic
    from repro.switch.packet import Packet

    asic = SwitchAsic(parse_p4(print_program(program)))
    # Any packet must process without raising (fields default to 0;
    # missing egress_spec stays port 0).
    asic.process(Packet({}))
