"""Semantic-validation tests."""

import pytest

from repro.errors import P4SemanticError
from repro.p4.parser import parse_p4
from repro.p4.validate import validate_program

HEADER = """
header_type h_t { fields { x : 8; y : 16; } }
header h_t hdr;
metadata h_t meta;
action nop() { no_op(); }
"""


def _expect_invalid(source):
    program = parse_p4(HEADER + source)
    with pytest.raises(P4SemanticError):
        validate_program(program)


def test_unknown_field_in_action():
    _expect_invalid(
        "action bad() { modify_field(hdr.nope, 1); }"
    )


def test_unknown_register():
    _expect_invalid(
        "action bad() { register_write(ghost, 0, 1); }"
    )


def test_unknown_counter():
    _expect_invalid("action bad() { count(ghost, 0); }")


def test_unknown_action_in_table():
    _expect_invalid(
        "table t { reads { hdr.x : exact; } actions { ghost; } }"
    )


def test_table_without_actions():
    _expect_invalid("table t { reads { hdr.x : exact; } actions { } }")


def test_default_action_arity():
    _expect_invalid(
        """
action set_x(v) { modify_field(hdr.x, v); }
table t { actions { set_x; } default_action : set_x(); }
"""
    )


def test_unknown_table_in_control():
    _expect_invalid("control ingress { apply(ghost); }")


def test_unknown_field_in_table_reads():
    _expect_invalid(
        "table t { reads { hdr.ghost : exact; } actions { nop; } }"
    )


def test_unknown_header_type_for_instance():
    program = parse_p4("header ghost_t hdr2;")
    with pytest.raises(P4SemanticError):
        validate_program(program)


def test_malleable_ref_rejected_in_plain_p4():
    program = parse_p4(
        HEADER + "action bad() { modify_field(hdr.x, ${mv}); }"
    )
    with pytest.raises(P4SemanticError):
        validate_program(program, allow_malleables=False)
    # ... but accepted when validating pre-transform P4R.
    validate_program(program, allow_malleables=True)


def test_field_list_calculation_unknown_input():
    _expect_invalid(
        """
field_list_calculation hash { input { ghost; } algorithm : crc16; output_width : 16; }
"""
    )


def test_valid_program_passes():
    program = parse_p4(
        HEADER
        + """
field_list fl { hdr.x; }
field_list_calculation hash {
    input { fl; }
    algorithm : crc16;
    output_width : 16;
}
register r { width : 32; instance_count : 2; }
action work() {
    register_write(r, 0, 5);
    modify_field_with_hash_based_offset(meta.y, 0, hash, 16);
}
table t { reads { hdr.x : exact; } actions { work; nop; } }
control ingress { apply(t); }
"""
    )
    validate_program(program)


def test_unknown_field_in_condition():
    _expect_invalid(
        """
table t { actions { nop; } default_action : nop(); }
control ingress {
    if (hdr.ghost > 3) {
        apply(t);
    }
}
"""
    )


def test_unknown_valid_in_condition():
    _expect_invalid(
        """
table t { actions { nop; } default_action : nop(); }
control ingress {
    if (valid(ghost)) {
        apply(t);
    }
}
"""
    )


def test_malleable_in_condition_respects_mode():
    program = parse_p4(
        HEADER
        + """
table t { actions { nop; } default_action : nop(); }
control ingress {
    if (${knob} > 3) {
        apply(t);
    }
}
"""
    )
    with pytest.raises(P4SemanticError):
        validate_program(program, allow_malleables=False)
    validate_program(program, allow_malleables=True)
