"""Parser tests for the P4-14 front end."""

import pytest

from repro.errors import P4SemanticError, P4SyntaxError
from repro.p4 import ast
from repro.p4.parser import parse_p4
from repro.p4.printer import print_program
from repro.p4.validate import validate_program

BASIC_PROGRAM = """
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type meta_t {
    fields {
        nhop : 32;
        port : 9;
    }
}

header ethernet_t ethernet;
metadata meta_t meta;

register byte_count {
    width : 32;
    instance_count : 4;
}

action set_port(port) {
    modify_field(meta.port, port);
}

action _drop() {
    drop();
}

table forward {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        set_port;
        _drop;
    }
    default_action : _drop();
    size : 1024;
}

control ingress {
    apply(forward);
    if (meta.port == 0) {
        apply(forward);
    }
}

parser start {
    extract(ethernet);
    return ingress;
}
"""


@pytest.fixture
def program():
    return parse_p4(BASIC_PROGRAM)


def test_header_type_fields(program):
    eth = program.header_types["ethernet_t"]
    assert [f.name for f in eth.fields] == ["dstAddr", "srcAddr", "etherType"]
    assert eth.field_width("etherType") == 16
    assert eth.total_width == 112


def test_instances(program):
    assert not program.headers["ethernet"].is_metadata
    assert program.headers["meta"].is_metadata
    assert program.field_width(ast.FieldRef("meta", "port")) == 9


def test_register(program):
    reg = program.registers["byte_count"]
    assert reg.width == 32
    assert reg.instance_count == 4


def test_action_body(program):
    action = program.actions["set_port"]
    assert action.params == ["port"]
    call = action.body[0]
    assert call.name == "modify_field"
    assert call.args[0] == ast.FieldRef("meta", "port")
    assert call.args[1] == "port"


def test_table(program):
    table = program.tables["forward"]
    assert table.reads[0].match_type is ast.MatchType.EXACT
    assert table.action_names == ["set_port", "_drop"]
    assert table.default_action == ("_drop", [])
    assert table.size == 1024
    assert not table.is_ternary()


def test_control_flow(program):
    control = program.controls["ingress"]
    assert isinstance(control.body[0], ast.ApplyCall)
    cond_block = control.body[1]
    assert isinstance(cond_block, ast.IfBlock)
    assert cond_block.cond.op == "=="
    assert control.applied_tables() == ["forward", "forward"]


def test_parser_state(program):
    state = program.parser_states["start"]
    assert state.extracts == ["ethernet"]
    assert state.return_target == "ingress"


def test_validate_passes(program):
    validate_program(program)


def test_roundtrip_is_fixed_point(program):
    printed = print_program(program)
    reparsed = parse_p4(printed)
    assert print_program(reparsed) == printed


def test_ternary_and_mask():
    program = parse_p4(
        BASIC_PROGRAM
        + """
table acl {
    reads {
        ethernet.srcAddr mask 0xffff : ternary;
        meta.nhop : lpm;
        valid(ethernet) : exact;
    }
    actions { _drop; }
}
"""
    )
    acl = program.tables["acl"]
    assert acl.reads[0].mask == 0xFFFF
    assert acl.reads[0].match_type is ast.MatchType.TERNARY
    assert acl.reads[1].match_type is ast.MatchType.LPM
    assert acl.reads[2].match_type is ast.MatchType.VALID
    assert acl.is_ternary()
    validate_program(program)


def test_syntax_error_reports_location():
    with pytest.raises(P4SyntaxError) as excinfo:
        parse_p4("table t {")
    assert "line" in str(excinfo.value)


def test_unknown_declaration_keyword():
    with pytest.raises(P4SyntaxError):
        parse_p4("gizmo t { }")


def test_duplicate_declaration_rejected():
    source = "header_type a_t { fields { x : 8; } }\n" * 2
    with pytest.raises(P4SemanticError):
        parse_p4(source)


def test_condition_precedence():
    program = parse_p4(
        BASIC_PROGRAM
        + """
control egress {
    if (meta.port == 1 || meta.nhop > 5 && meta.port != 0) {
        apply(forward);
    }
}
"""
    )
    cond = program.controls["egress"].body[0].cond
    # || binds loosest: (port == 1) || ((nhop > 5) && (port != 0))
    assert cond.op == "||"
    assert cond.right.op == "&&"


def test_comments_are_skipped():
    program = parse_p4(
        "// leading comment\n/* block */\n"
        "header_type h_t { fields { x : 8; /* inline */ } }\n"
    )
    assert "h_t" in program.header_types


def test_hex_and_decimal_literals():
    program = parse_p4(
        "header_type h_t { fields { x : 0x10; y : 16; } }"
    )
    ht = program.header_types["h_t"]
    assert ht.field_width("x") == 16
    assert ht.field_width("y") == 16
