"""Dirty-diff commits: the agent tracks which malleable values each
iteration actually changed and commits only those init shadows.

Guarantees under test:

- a write that matches the committed value is deduplicated (no
  staging, no shadow write, counted in ``dirty_writes_skipped``);
- a changed-then-reverted value leaves its shadow clean;
- ``diff`` and ``full`` mode converge to identical committed state on
  identical workloads -- the diff only removes redundant driver ops;
- ``full`` mode rewrites every non-master shadow each commit, so the
  op gap per idle iteration is exactly 2 writes per clean shadow.
"""

import pytest

from repro.agent.agent import COMMIT_MODES, MantisAgent
from repro.compiler import CompilerOptions
from repro.errors import AgentError
from repro.system import MantisSystem

PROGRAM = """
header_type h_t { fields { key : 16; out : 32; } }
header h_t hdr;
parser start { extract(hdr); return ingress; }

malleable value v0 { width : 32; init : 10; }
malleable value v1 { width : 32; init : 11; }
malleable value v2 { width : 32; init : 12; }
malleable value v3 { width : 32; init : 13; }

action stamp() { modify_field(hdr.out, ${v1}); }
table t { actions { stamp; } default_action : stamp(); }
control ingress { apply(t); }
"""


def build(**kwargs):
    # One malleable param per init bin: master carries (vv, mv, v0),
    # v1/v2/v3 each get their own shadow table.
    system = MantisSystem.from_source(
        PROGRAM,
        options=CompilerOptions(max_init_action_params=3),
        num_ports=4,
        **kwargs,
    )
    system.agent.prologue()
    return system


def iteration_ops(system):
    before = system.driver.ops_issued
    system.agent.run_iteration()
    return system.driver.ops_issued - before


def test_commit_mode_validated():
    with pytest.raises(AgentError):
        build(commit_mode="sometimes")
    assert set(COMMIT_MODES) == {"diff", "full"}


def test_redundant_write_is_skipped():
    system = build(commit_mode="diff")
    idle = iteration_ops(system)  # vv flip only
    system.agent.write_malleable("v1", 11)  # committed value
    assert system.agent.dirty_writes_skipped == 1
    assert system.agent.dirty_writes_staged == 0
    assert iteration_ops(system) == idle


def test_changed_write_commits_and_next_write_dedups_against_it():
    system = build(commit_mode="diff")
    system.agent.write_malleable("v1", 99)
    assert system.agent.dirty_writes_staged == 1
    system.agent.run_iteration()
    assert system.agent.read_malleable("v1") == 99
    # The committed baseline moved: 99 is now redundant, 11 is not.
    system.agent.write_malleable("v1", 99)
    assert system.agent.dirty_writes_skipped == 1
    system.agent.write_malleable("v1", 11)
    assert system.agent.dirty_writes_staged == 2


def test_write_then_revert_leaves_shadow_clean():
    system = build(commit_mode="diff")
    idle = iteration_ops(system)
    system.agent.write_malleable("v2", 50)
    system.agent.write_malleable("v2", 12)  # back to committed
    assert all(not s.dirty for s in system.agent._init_shadows.values())
    assert iteration_ops(system) == idle


def test_master_param_rides_the_flip_for_free():
    system = build(commit_mode="diff")
    idle = iteration_ops(system)
    # v0 lives in the master init entry: committing it costs no extra
    # op -- the updated args fold into the unavoidable vv flip.
    system.agent.write_malleable("v0", 77)
    assert iteration_ops(system) == idle
    assert system.agent.read_malleable("v0") == 77


def test_dirty_shadow_costs_prepare_plus_mirror():
    system = build(commit_mode="diff")
    idle = iteration_ops(system)
    system.agent.write_malleable("v3", 1000)
    assert iteration_ops(system) == idle + 2


def test_full_mode_rewrites_every_shadow():
    diff = build(commit_mode="diff")
    full = build(commit_mode="full")
    n_shadows = sum(
        1 for t in full.spec.init_tables if not t.master
    )
    assert n_shadows == 3
    assert iteration_ops(full) - iteration_ops(diff) == 2 * n_shadows


def test_diff_and_full_converge_identically():
    updates = [
        [("v1", 100)],
        [("v2", 200), ("v3", 300)],
        [],
        [("v1", 100)],  # redundant under diff
        [("v3", 301), ("v0", 400)],
    ]
    finals = {}
    ops = {}
    for mode in COMMIT_MODES:
        system = build(commit_mode=mode)
        baseline = system.driver.ops_issued
        for batch in updates:
            for name, value in batch:
                system.agent.write_malleable(name, value)
            system.agent.run_iteration()
        finals[mode] = {
            name: system.agent.read_malleable(name)
            for name in ("v0", "v1", "v2", "v3")
        }
        ops[mode] = system.driver.ops_issued - baseline
    assert finals["diff"] == finals["full"]
    assert finals["diff"] == {"v0": 400, "v1": 100, "v2": 200, "v3": 301}
    assert ops["diff"] < ops["full"]


def test_hit_rate_surfaces_in_health():
    system = build(commit_mode="diff")
    system.agent.write_malleable("v1", 11)  # skipped
    system.agent.write_malleable("v2", 40)  # staged
    system.agent.write_malleable("v3", 41)  # staged
    system.agent.write_malleable("v3", 13)  # reverted -> skipped
    system.agent.run_iteration()
    health = system.agent.health()
    assert health.commit_mode == "diff"
    assert health.dirty_diff_hit_rate == pytest.approx(0.5)


def test_recovered_agent_keeps_diffing_correctly():
    """Recovery rebuilds the committed baselines the diff compares
    against; a redundant write after recover() must still be skipped."""
    system = build(commit_mode="diff")
    system.agent.write_malleable("v1", 99)
    system.agent.run_iteration()

    fresh = MantisAgent(system.artifacts, system.driver, commit_mode="diff")
    fresh.recover()
    fresh.write_malleable("v1", 99)
    assert fresh.dirty_writes_skipped == 1
    fresh.write_malleable("v1", 5)
    fresh.run_iteration()
    assert fresh.read_malleable("v1") == 5
