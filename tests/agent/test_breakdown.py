"""Tests for the per-iteration phase breakdown (the Section 8.1
formula's terms, exposed for observability)."""

import pytest

from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register r { width : 32; instance_count : 8; }
malleable value v { width : 32; init : 0; }
action keep() { register_write(r, 0, hdr.f); }
table t { actions { keep; } default_action : keep(); }
control ingress { apply(t); }
reaction tick(ing hdr.f, reg r[0:7]) {
    ${v} = ${v} + hdr_f;
}
"""


@pytest.fixture
def agent():
    system = MantisSystem.from_source(PROGRAM)
    system.agent.prologue()
    return system.agent


def test_breakdown_sums_to_total(agent):
    agent.run_iteration()
    breakdown = agent.last_breakdown
    parts = (
        breakdown["mv_flip_us"]
        + breakdown["poll_us"]
        + breakdown["react_us"]
        + breakdown["commit_us"]
    )
    assert parts == pytest.approx(breakdown["total_us"])


def test_breakdown_phases_nonzero(agent):
    agent.run_iteration()
    breakdown = agent.last_breakdown
    assert breakdown["mv_flip_us"] > 0  # one init write
    assert breakdown["poll_us"] > 0  # container + mirror reads
    assert breakdown["react_us"] > 0  # interpreted C cost
    assert breakdown["commit_us"] > 0  # vv flip


def test_poll_dominates_for_wide_measurements():
    """Figure 16's observation: 'the majority of the reaction time is
    due to measuring all of the ports and ensuring isolation'."""
    wide = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register big { width : 32; instance_count : 256; }
malleable value v { width : 32; init : 0; }
action keep() { register_write(big, 0, hdr.f); }
table t { actions { keep; } default_action : keep(); }
control ingress { apply(t); }
reaction tick(reg big[0:255]) {
    ${v} = big[0];
}
"""
    system = MantisSystem.from_source(wide)
    system.agent.prologue()
    system.agent.run_iteration()
    breakdown = system.agent.last_breakdown
    assert breakdown["poll_us"] > breakdown["total_us"] / 2


def test_deferred_commit_has_zero_commit_phase(agent):
    agent.run_iteration(commit=False)
    assert agent.last_breakdown["commit_us"] == 0.0
    agent.commit()
