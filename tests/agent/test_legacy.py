"""Unit tests for the legacy-interference queueing model (Figure 12's
machinery)."""

import pytest

from repro.agent.legacy import LegacyClient, LegacyStats, legacy_latencies
from repro.switch.driver import OpRecord


def op(excl_start, excl_end, channel="mantis"):
    return OpRecord(
        start_us=excl_start - 0.3,
        end_us=excl_end + 0.3,
        kind="table_modify",
        target="t",
        channel=channel,
        excl_start_us=excl_start,
        excl_end_us=excl_end,
    )


class TestLegacyLatencies:
    def test_no_contention(self):
        latencies = legacy_latencies([], [0.0, 10.0, 20.0], op_cost_us=2.0)
        assert latencies == [2.0, 2.0, 2.0]

    def test_arrival_inside_exclusive_window_waits(self):
        timeline = [op(5.0, 7.0)]
        (latency,) = legacy_latencies(timeline, [6.0], op_cost_us=2.0)
        # Waits until 7.0, runs 2.0 -> completes 9.0, latency 3.0.
        assert latency == pytest.approx(3.0)

    def test_arrival_outside_window_unaffected(self):
        timeline = [op(5.0, 7.0)]
        (latency,) = legacy_latencies(timeline, [8.0], op_cost_us=2.0)
        assert latency == pytest.approx(2.0)

    def test_arrival_during_prep_not_blocked(self):
        # Exclusive window is only the device portion.
        timeline = [op(5.0, 7.0)]
        (latency,) = legacy_latencies(timeline, [4.8], op_cost_us=2.0)
        assert latency == pytest.approx(2.0)

    def test_back_to_back_legacy_ops_queue_on_each_other(self):
        latencies = legacy_latencies([], [0.0, 0.5], op_cost_us=2.0)
        assert latencies[0] == pytest.approx(2.0)
        # Second waits for the first: starts at 2.0, done 4.0.
        assert latencies[1] == pytest.approx(3.5)

    def test_queue_behind_at_most_one_mantis_op(self):
        """Section 6's claim: a legacy op waits for at most the one
        in-flight Mantis op, never a chain of them."""
        timeline = [op(5.0, 7.0), op(9.0, 11.0)]
        (latency,) = legacy_latencies(timeline, [6.0], op_cost_us=2.0)
        # Starts at 7.0 (not 11.0): only the in-flight op blocks.
        assert latency == pytest.approx(3.0)


class TestLegacyStats:
    def test_percentiles(self):
        stats = LegacyStats.from_latencies([1.0] * 99 + [10.0])
        assert stats.median_us == 1.0
        assert stats.p99_us == 10.0
        assert stats.mean_us == pytest.approx(1.09)

    def test_empty(self):
        stats = LegacyStats.from_latencies([])
        assert stats.median_us == 0.0


class TestLegacyClient:
    def test_arrival_schedule(self):
        from repro.p4.parser import parse_p4
        from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
        from repro.switch.driver import Driver

        asic = SwitchAsic(parse_p4(
            STANDARD_METADATA_P4
            + "header_type h_t { fields { f : 8; } }\nheader h_t hdr;\n"
        ))
        driver = Driver(asic, record_timeline=True)
        client = LegacyClient(driver, interval_us=10.0)
        arrivals = client.arrivals(0.0, 35.0)
        assert arrivals == [0.0, 10.0, 20.0, 30.0]
        baseline = client.latencies_without_mantis(0.0, 35.0)
        assert all(l == pytest.approx(client.op_cost_us) for l in baseline)
