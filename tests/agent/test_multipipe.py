"""Multi-pipeline agent tests (Sections 4 and 6)."""

import pytest

from repro.errors import AgentError
from repro.multipipe import MultiPipelineSwitch
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; out : 32; } }
header h_t hdr;
register seen { width : 32; instance_count : 4; }
malleable value scale { width : 16; init : 1; }
action work() {
    register_write(seen, 0, hdr.f);
    modify_field(hdr.out, ${scale});
}
table t { actions { work; } default_action : work(); }
control ingress { apply(t); }
reaction adapt(reg seen[0:3]) {
    ${scale} = seen[0];
}
"""


@pytest.fixture
def switch():
    multi = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=3)
    multi.prologue()
    return multi


class TestIsolationBetweenPipelines:
    def test_register_state_is_disjoint(self, switch):
        switch[0].asic.process(Packet({"hdr.f": 111}))
        switch[1].asic.process(Packet({"hdr.f": 222}))
        mirror = switch.artifacts.spec.mirrors["seen"].duplicate
        assert switch[0].asic.registers[mirror].read(0) == 111
        assert switch[1].asic.registers[mirror].read(0) == 222
        assert switch[2].asic.registers[mirror].read(0) == 0

    def test_agents_react_to_their_own_pipeline(self, switch):
        switch[0].asic.process(Packet({"hdr.f": 7}))
        switch[1].asic.process(Packet({"hdr.f": 9}))
        switch.run_round()
        assert switch[0].agent.read_malleable("scale") == 7
        assert switch[1].agent.read_malleable("scale") == 9
        assert switch[2].agent.read_malleable("scale") == 0

    def test_data_plane_sees_per_pipeline_config(self, switch):
        switch[0].asic.process(Packet({"hdr.f": 7}))
        switch.run_round()
        p0 = Packet({"hdr.f": 0})
        switch[0].asic.process(p0)
        p2 = Packet({"hdr.f": 0})
        switch[2].asic.process(p2)
        assert p0.get("hdr.out") == 7
        assert p2.get("hdr.out") == 0

    def test_table_state_is_disjoint(self, switch):
        # Driver-level entry add on one pipeline only.
        switch[0].driver.add_entry  # tables exist per pipeline
        t0 = switch[0].asic.tables["t"]
        t1 = switch[1].asic.tables["t"]
        assert t0 is not t1


class TestScheduling:
    def test_round_advances_shared_clock(self, switch):
        before = switch.clock.now
        busy = switch.run_round()
        assert switch.clock.now >= before + busy

    def test_round_robin_fairness(self, switch):
        switch.run_rounds(5)
        iterations = [p.agent.iterations for p in switch.pipelines]
        assert iterations == [5, 5, 5]

    def test_per_pipeline_reaction_factories(self, switch):
        log = {0: [], 1: [], 2: []}

        def factory(pipeline):
            def reaction(ctx):
                log[pipeline.index].append(ctx.args["seen"][0])

            return reaction

        switch.attach_python("adapt", factory)
        switch[1].asic.process(Packet({"hdr.f": 42}))
        switch.run_round()
        assert log[0] == [0]
        assert log[1] == [42]
        assert log[2] == [0]


class TestConstruction:
    def test_requires_one_pipeline(self):
        with pytest.raises(AgentError):
            MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=0)

    def test_len_and_indexing(self, switch):
        assert len(switch) == 3
        assert switch[2].index == 2
