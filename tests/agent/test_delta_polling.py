"""Delta polling: the measurement phase skips re-reading mirror
registers whose declared footprint did not advance since the last
successful poll.

A per-register sequence counter (bumped by every data-plane write)
is read first inside the poll batch; if the watched range's counters
are unchanged the ts+dup burst reads are skipped and the cached
values returned.  Guarantees under test:

- reaction-visible values are identical with and without delta
  polling, under traffic and in quiet periods;
- quiet iterations skip (cheaper polls), traffic invalidates;
- a driver fault invalidates the cache: no stale snapshot may justify
  skipping until a clean full poll re-establishes it.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register acc { width : 32; instance_count : 4; }

action touch() {
    register_write(acc, 0, hdr.f);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { touch; } default_action : touch(); }
control ingress { apply(t); }

reaction watch(reg acc[0:3]) {
    // Host-side body.
}
"""


def build(delta_polling, **kwargs):
    system = MantisSystem.from_source(
        PROGRAM, num_ports=4, delta_polling=delta_polling, **kwargs
    )
    seen = []
    system.agent.attach_python(
        "watch", lambda ctx: seen.append(dict(ctx.args["acc"]))
    )
    system.agent.prologue()
    return system, seen


def iteration_ops(system):
    before = system.driver.ops_issued
    system.agent.run_iteration()
    return system.driver.ops_issued - before


def run_workload(delta_polling):
    """Traffic on every third iteration, quiet otherwise."""
    system, seen = build(delta_polling)
    for i in range(12):
        if i % 3 == 0:
            system.asic.process(Packet({"hdr.f": i + 100}))
        system.agent.run_iteration()
    return system, seen


def test_reaction_sees_identical_values():
    _, plain = run_workload(False)
    system, delta = run_workload(True)
    assert delta == plain
    assert delta[-1][0] == 109  # the last burst's value, not a stale one
    assert system.agent.health().delta_polling is True
    assert system.agent.health().delta_poll_skip_rate > 0


def test_quiet_iterations_get_cheaper_polls():
    delta, _ = build(True)
    plain, _ = build(False)
    # First delta iteration is always a miss (cache is cold): the seq
    # read is pure overhead.
    assert iteration_ops(delta) == iteration_ops(plain) + 1
    # Steady quiet state: the seq read replaces the ts+dup pair.
    assert iteration_ops(delta) == iteration_ops(plain) - 1


def test_traffic_invalidates_the_cache():
    system, seen = build(True)
    system.agent.run_iteration()
    system.agent.run_iteration()  # quiet: served from cache
    assert seen[-1] == seen[-2]
    system.asic.process(Packet({"hdr.f": 42}))
    system.agent.run_iteration()
    assert seen[-1][0] == 42


def test_skip_rate_counts_hits_only():
    system, _ = run_workload(True)
    reader = next(iter(system.agent._mirror_readers.values()))
    assert reader.delta_checks == 12
    # Traffic lands on iterations 0/3/6/9 -> 8 of 12 polls skip.
    assert reader.delta_skips == 8
    assert system.agent.health().delta_poll_skip_rate == pytest.approx(8 / 12)


def test_fault_invalidates_delta_cache():
    system, seen = build(True)
    system.agent.run_iteration()
    system.agent.run_iteration()  # steady: skipping
    reader = next(iter(system.agent._mirror_readers.values()))
    assert reader.delta_skips > 0

    # One transient failure on the next register read (the seq read of
    # the following poll).
    plan = FaultPlan(seed=7, specs=[FaultSpec(
        kind="transient",
        op_kinds=frozenset({"register_read"}),
        op_range=(system.driver.ops_issued + 1, None),
        max_triggers=1,
    )])
    FaultInjector(plan).attach(system.driver)
    failures_before = system.agent.health().total_failures
    system.agent.run_iteration()
    assert system.agent.health().total_failures == failures_before + 1

    # The iteration after the fault must be a full poll even though
    # the register is quiet: the snapshot is no longer trusted.
    skips_before = reader.delta_skips
    system.agent.run_iteration()
    assert reader.delta_skips == skips_before
    # A clean full poll re-establishes the snapshot: skipping resumes.
    system.agent.run_iteration()
    assert reader.delta_skips == skips_before + 1
    # And the reaction never saw a torn value.
    assert all(v == seen[0] for v in seen)
