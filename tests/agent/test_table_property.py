"""Property-based test of the three-phase table update protocol.

A random sequence of user-level table operations (add / modify /
delete), interleaved with dialogue commits, must leave the data plane
in exactly the state of a trivial reference model (a dict), with two
extra guarantees checked at every step:

- *visibility*: changes are invisible until the commit that follows
  them;
- *durability*: once committed, entries survive any number of
  subsequent vv flips (the mirror phase keeps shadows in sync).
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; out : 16; } }
header h_t hdr;
action set_out(v) { modify_field(hdr.out, v); }
action nop() { no_op(); }
malleable table m {
    reads { hdr.key : exact; }
    actions { set_out; nop; }
    default_action : nop();
    size : 512;
}
control ingress { apply(m); }
"""

KEYS = list(range(6))

operation = st.one_of(
    st.tuples(st.just("add"), st.sampled_from(KEYS),
              st.integers(min_value=1, max_value=999)),
    st.tuples(st.just("modify"), st.sampled_from(KEYS),
              st.integers(min_value=1, max_value=999)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(0)),
    st.tuples(st.just("commit"), st.just(0), st.just(0)),
)


def lookup(system, key):
    packet = Packet({"hdr.key": key})
    system.asic.process(packet)
    return packet.get("hdr.out")


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(operation, min_size=1, max_size=25))
def test_handle_matches_reference_model(operations):
    system = MantisSystem.from_source(PROGRAM)
    system.agent.prologue()
    handle = system.agent.table("m")

    committed = {}  # reference: key -> value visible to packets
    pending = {}  # staged view: key -> value (or None = deleted)
    user_ids = {}  # key -> user entry id

    for op, key, value in operations:
        staged_view = {**committed, **{
            k: v for k, v in pending.items()
        }}
        if op == "add":
            if key in staged_view and staged_view[key] is not None:
                continue  # model: one logical entry per key
            user_ids[key] = handle.add([key], "set_out", [value])
            pending[key] = value
        elif op == "modify":
            if key not in staged_view or staged_view[key] is None:
                continue
            handle.modify(user_ids[key], args=[value])
            pending[key] = value
        elif op == "delete":
            if key not in staged_view or staged_view[key] is None:
                continue
            handle.delete(user_ids[key])
            del user_ids[key]
            pending[key] = None
        else:  # commit
            system.agent.run_iteration()
            for k, v in pending.items():
                if v is None:
                    committed.pop(k, None)
                else:
                    committed[k] = v
            pending.clear()

        # Visibility invariant: the data plane always reflects the
        # *committed* model, never the staged one.
        for probe in KEYS:
            expected = committed.get(probe, 0)
            assert lookup(system, probe) == expected, (
                f"after {op}({key}): key {probe} visible as "
                f"{lookup(system, probe)}, expected {expected}"
            )

    # Durability: commit everything, then flip versions repeatedly.
    system.agent.run_iteration()
    for k, v in pending.items():
        if v is None:
            committed.pop(k, None)
        else:
            committed[k] = v
    for _ in range(4):
        system.agent.run_iteration()
    for probe in KEYS:
        assert lookup(system, probe) == committed.get(probe, 0)
