"""End-to-end Mantis agent tests: the Figure 1 program running against
the emulated switch, plus the dialogue-loop mechanics."""

import pytest

from repro.errors import AgentError
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

FIGURE1 = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header hdr_t hdr;

register qdepths { width : 32; instance_count : 16; }

malleable value value_var { width : 16; init : 1; }
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; mark; }
    default_action : mark();
}
action my_action() {
    add(hdr.qux, hdr.baz, ${value_var});
}
action mark() { modify_field(hdr.qux, 0xdead); }
action track() {
    register_write(qdepths, standard_metadata.ingress_port, hdr.baz);
}
table tracker { actions { track; } default_action : track(); }
control ingress {
    apply(table_var);
    apply(tracker);
}

reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
"""


@pytest.fixture
def system():
    sys_ = MantisSystem.from_source(FIGURE1)
    sys_.agent.prologue()
    return sys_


@pytest.fixture
def quiet_system(system):
    """Figure 1's C reaction overwrites value_var every iteration
    (max-qdepth port, 0 with no traffic); neutralize it for tests
    that exercise other mechanics."""
    system.agent.attach_python("my_reaction", lambda ctx: None)
    return system


class TestPrologue:
    def test_master_init_default_installed(self, system):
        init = system.asic.tables["p4r_init_"]
        # vv=0, mv=0, value_var=1, field_var_alt=0
        assert init.default_action[1][:2] == [0, 0]

    def test_prologue_runs_once(self, system):
        with pytest.raises(AgentError):
            system.agent.prologue()

    def test_requires_prologue_before_dialogue(self):
        fresh = MantisSystem.from_source(FIGURE1)
        with pytest.raises(AgentError):
            fresh.agent.run_iteration()

    def test_user_init_runs_with_context(self):
        fresh = MantisSystem.from_source(FIGURE1)
        seen = {}

        def init(ctx):
            seen["value"] = ctx.read("value_var")
            ctx.write("value_var", 5)

        fresh.agent.prologue(user_init=init)
        fresh.agent.attach_python("my_reaction", lambda ctx: None)
        assert seen["value"] == 1
        # User-staged config was committed by the prologue.
        packet = Packet({"hdr.foo": 0, "hdr.baz": 100})
        fresh.agent.table("table_var").add([0], "my_action")
        fresh.agent.run_iteration()
        fresh.asic.process(packet)
        assert packet.get("hdr.qux") == 105


class TestMalleableValueFlow:
    def test_init_value_reaches_data_plane(self, quiet_system):
        quiet_system.agent.table("table_var").add([7], "my_action")
        quiet_system.agent.run_iteration()  # commit the entry
        packet = Packet({"hdr.foo": 7, "hdr.baz": 10})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 11  # baz + init value 1

    def test_reaction_updates_value_from_register(self, system):
        system.agent.table("table_var").add([7], "my_action")
        # Data plane records per-port "queue depths" via tracker.
        deep = Packet({"hdr.foo": 0, "hdr.baz": 42}, ingress_port=6)
        system.asic.process(deep)
        system.agent.run_iteration()  # polls mirror, writes value_var
        assert system.agent.read_malleable("value_var") == 6
        packet = Packet({"hdr.foo": 7, "hdr.baz": 100})
        system.asic.process(packet)
        assert packet.get("hdr.qux") == 106  # baz + max_port

    def test_write_commits_only_at_vv_flip(self, quiet_system):
        quiet_system.agent.table("table_var").add([7], "my_action")
        quiet_system.agent.run_iteration()
        quiet_system.agent.write_malleable("value_var", 9)
        # Staged, not yet committed: the data plane still sees 1.
        packet = Packet({"hdr.foo": 7, "hdr.baz": 0})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 1
        quiet_system.agent.run_iteration()
        packet = Packet({"hdr.foo": 7, "hdr.baz": 0})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 9


class TestMalleableFieldFlow:
    def test_shift_changes_matched_field(self, quiet_system):
        agent = quiet_system.agent
        agent.table("table_var").add([5], "my_action")
        agent.run_iteration()
        # Initially ${field_var} = hdr.foo.
        hit = Packet({"hdr.foo": 5, "hdr.bar": 0, "hdr.baz": 1})
        quiet_system.asic.process(hit)
        assert hit.get("hdr.qux") == 2
        # Shift to hdr.bar; now matching is on bar.
        agent.shift_field("field_var", "hdr.bar")
        agent.run_iteration()
        miss = Packet({"hdr.foo": 5, "hdr.bar": 0, "hdr.baz": 1})
        quiet_system.asic.process(miss)
        assert miss.get("hdr.qux") == 0xDEAD  # default action
        hit2 = Packet({"hdr.foo": 0, "hdr.bar": 5, "hdr.baz": 1})
        quiet_system.asic.process(hit2)
        assert hit2.get("hdr.qux") == 2

    def test_shift_by_index(self, system):
        system.agent.shift_field("field_var", 1)
        assert system.agent.read_malleable("field_var") == 1
        with pytest.raises(AgentError):
            system.agent.shift_field("field_var", 5)
        with pytest.raises(AgentError):
            system.agent.shift_field("field_var", "hdr.nope")


class TestThreePhaseTables:
    def test_add_invisible_until_commit(self, quiet_system):
        handle = quiet_system.agent.table("table_var")
        handle.add([3], "my_action")
        packet = Packet({"hdr.foo": 3, "hdr.baz": 1})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 0xDEAD  # prepare only: still miss
        quiet_system.agent.run_iteration()  # commit + mirror
        packet = Packet({"hdr.foo": 3, "hdr.baz": 1})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 2

    def test_entry_survives_subsequent_flips(self, quiet_system):
        handle = quiet_system.agent.table("table_var")
        handle.add([3], "my_action")
        for _ in range(5):
            quiet_system.agent.run_iteration()
        packet = Packet({"hdr.foo": 3, "hdr.baz": 1})
        quiet_system.asic.process(packet)
        assert packet.get("hdr.qux") == 2

    def test_group_of_updates_commits_atomically(self, quiet_system):
        handle = quiet_system.agent.table("table_var")
        first = handle.add([1], "my_action")
        quiet_system.agent.run_iteration()

        def reaction(ctx):
            ctx.table("table_var").delete(first)
            ctx.table("table_var").add([2], "my_action")

        quiet_system.agent.attach_python("my_reaction", reaction)
        quiet_system.agent.run_iteration()
        miss = Packet({"hdr.foo": 1, "hdr.baz": 1})
        quiet_system.asic.process(miss)
        assert miss.get("hdr.qux") == 0xDEAD
        hit = Packet({"hdr.foo": 2, "hdr.baz": 1})
        quiet_system.asic.process(hit)
        assert hit.get("hdr.qux") == 2

    def test_modify_entry_args(self, system):
        # table_var's actions take no args; test modify via action swap.
        handle = system.agent.table("table_var")
        entry = handle.add([4], "my_action")
        system.agent.run_iteration()
        handle.modify(entry, action="mark")
        system.agent.run_iteration()
        packet = Packet({"hdr.foo": 4, "hdr.baz": 1})
        system.asic.process(packet)
        assert packet.get("hdr.qux") == 0xDEAD

    def test_shadow_doubles_concrete_entries(self, system):
        handle = system.agent.table("table_var")
        handle.add([3], "my_action")
        system.agent.run_iteration()
        # 1 user entry x 2 alts (field_var in reads+action) x 2 versions
        assert system.asic.tables["table_var"].entry_count == 4
        assert handle.user_entry_count() == 1


class TestDialogueMechanics:
    def test_vv_and_mv_flip_each_iteration(self, system):
        assert (system.agent.vv, system.agent.mv) == (0, 0)
        system.agent.run_iteration()
        assert (system.agent.vv, system.agent.mv) == (1, 1)
        system.agent.run_iteration()
        assert (system.agent.vv, system.agent.mv) == (0, 0)

    def test_iteration_advances_clock(self, system):
        before = system.clock.now
        system.agent.run_iteration()
        assert system.clock.now > before

    def test_reaction_time_tens_of_us(self, system):
        """The paper's headline: reaction granularity of 10s of us."""
        system.agent.run(100)
        assert 1.0 < system.agent.avg_reaction_time_us < 100.0

    def test_pacing_trades_cpu_for_latency(self):
        fast = MantisSystem.from_source(FIGURE1)
        fast.agent.prologue()
        fast.agent.run(200)
        slow = MantisSystem.from_source(FIGURE1, pacing_sleep_us=50.0)
        slow.agent.prologue()
        slow.agent.run(200)
        assert fast.agent.cpu_utilization == pytest.approx(1.0)
        assert slow.agent.cpu_utilization < 0.5
        assert slow.agent.avg_reaction_time_us > fast.agent.avg_reaction_time_us

    def test_run_until(self, system):
        iterations = system.agent.run_until(system.clock.now + 500.0)
        assert iterations > 1
        assert system.clock.now >= 500.0

    def test_static_state_persists_in_c_reaction(self):
        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
malleable value counter { width : 32; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
reaction tick() {
    static uint32_t n = 0;
    n++;
    ${counter} = n;
}
"""
        system = MantisSystem.from_source(source)
        system.agent.prologue()
        system.agent.run(3)
        assert system.agent.read_malleable("counter") == 3

    def test_attach_python_hot_swap(self, system):
        calls = []
        system.agent.attach_python(
            "my_reaction", lambda ctx: calls.append(ctx.now)
        )
        system.agent.run(2)
        assert len(calls) == 2
        with pytest.raises(AgentError):
            system.agent.attach_python("ghost", lambda ctx: None)

    def test_extern_callable_from_c(self):
        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
malleable value v { width : 32; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
reaction callout() {
    ${v} = host_decision(${v});
}
"""
        system = MantisSystem.from_source(source)
        system.agent.register_extern("host_decision", lambda v: v + 10)
        system.agent.prologue()
        system.agent.run(2)
        assert system.agent.read_malleable("v") == 20


class TestDurationStatistics:
    def test_average_exact_after_window_trim(self, system):
        """avg_reaction_time_us aggregates every iteration, not just
        the trimmed iteration_durations window."""
        agent = system.agent
        agent.run(10)
        expected = sum(agent.iteration_durations) / 10
        assert agent.avg_reaction_time_us == pytest.approx(expected)
        # Simulate the window trim losing the oldest samples: the
        # lifetime statistic must not move.
        del agent.iteration_durations[:5]
        assert agent.avg_reaction_time_us == pytest.approx(expected)
        agent.iteration_durations.clear()
        assert agent.avg_reaction_time_us == pytest.approx(expected)

    def test_trim_keeps_window_bounded(self, system):
        agent = system.agent
        agent.run_iteration()
        baseline = agent.avg_reaction_time_us
        # Fake a long history to trigger the trim branch cheaply.
        agent.iteration_durations.extend([baseline] * 100_001)
        agent._duration_sum_us += baseline * 100_001
        agent._duration_count += 100_001
        agent.run_iteration()
        assert len(agent.iteration_durations) <= 100_000
        assert agent.avg_reaction_time_us == pytest.approx(
            baseline, rel=0.5
        )
