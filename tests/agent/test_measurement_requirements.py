"""The Section 4.2 measurement requirements, as executable checks.

R1 -- measurement is NOT per-packet: control-plane work is independent
      of the packet rate;
R2 -- the measurement schedule is flexible: irregular polling
      intervals are tolerated;
R3 -- measurements return the MOST RECENT data: no head-of-line
      blocking behind unprocessed older samples (the paper's argument
      against digest streams).
"""

import pytest

from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type flow_t { fields { src : 32; } }
header flow_t flow;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
reaction watch(ing flow.src) {
    int x = flow_src;
}
"""


@pytest.fixture
def system():
    sys_ = MantisSystem.from_source(PROGRAM)
    sys_.agent.prologue()
    return sys_


def observed(system):
    seen = []
    system.agent.attach_python(
        "watch", lambda ctx: seen.append(ctx.args["flow_src"])
    )
    return seen


class TestR1NotPerPacket:
    def test_control_plane_cost_independent_of_packet_rate(self, system):
        seen = observed(system)
        # 1 packet, one iteration:
        system.asic.process(Packet({"flow.src": 1}))
        ops_before = system.driver.ops_issued
        system.agent.run_iteration()
        ops_light = system.driver.ops_issued - ops_before
        # 500 packets, one iteration:
        for index in range(500):
            system.asic.process(Packet({"flow.src": index}))
        ops_before = system.driver.ops_issued
        system.agent.run_iteration()
        ops_heavy = system.driver.ops_issued - ops_before
        assert ops_heavy == ops_light
        assert len(seen) == 2  # one sample per iteration, not per packet


class TestR2FlexibleSchedule:
    def test_irregular_intervals_still_consistent(self, system):
        seen = observed(system)
        gaps = [1.0, 500.0, 3.0, 10_000.0]
        for index, gap in enumerate(gaps):
            system.clock.advance(gap)
            system.asic.process(Packet({"flow.src": 100 + index}))
            system.agent.run_iteration()
        # Every poll returned the freshest packet despite wildly
        # varying dialogue intervals.
        assert seen == [100, 101, 102, 103]


class TestR3MostRecentData:
    def test_poll_returns_latest_not_oldest(self, system):
        """A digest stream would deliver src=0 first (head-of-line);
        the register poll must return the newest sample."""
        seen = observed(system)
        for index in range(50):
            system.asic.process(Packet({"flow.src": index}))
        system.agent.run_iteration()
        assert seen == [49]

    def test_no_backlog_across_iterations(self, system):
        """Old unread samples never resurface later."""
        seen = observed(system)
        system.asic.process(Packet({"flow.src": 7}))
        system.agent.run_iteration()
        system.asic.process(Packet({"flow.src": 8}))
        system.agent.run_iteration()
        # A digest queue with backlog might have delivered 7 again.
        assert seen == [7, 8]

    def test_users_must_retain_history_themselves(self, system):
        """The paper's caveat: 'this pull-based model will only see a
        subset of updates' -- intermediate packets are lost unless the
        data plane accumulates."""
        seen = observed(system)
        for index in range(10):
            system.asic.process(Packet({"flow.src": index}))
        system.agent.run_iteration()
        assert seen == [9]
        assert 5 not in seen  # intermediate samples are gone
