"""Agent-side measurement batching (the paper's Section 6 batched-DMA
optimization, extended to the dialogue's poll phase).

With ``poll_batching=True`` the agent wraps every reaction's
measurement reads in one driver batch, so the whole poll pays a single
PCIe round trip instead of one per container/mirror array.  Reaction
semantics must be unchanged -- only the poll phase gets cheaper -- and
the cost model's ``poll_batched`` flag must track the measured time.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import (
    predict_measurement_us,
    predict_reaction_time_us,
)
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

TWO_ARRAY_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register r1 { width : 32; instance_count : 8; }
register r2 { width : 32; instance_count : 8; }

action touch() {
    register_write(r1, 0, hdr.f);
    register_write(r2, 1, hdr.f);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { touch; } default_action : touch(); }
control ingress { apply(t); }

reaction watch(reg r1[0:7], reg r2[0:7]) {
    // Host-side body.
}
"""


def _system(poll_batching: bool) -> MantisSystem:
    system = MantisSystem.from_source(
        TWO_ARRAY_P4R, num_ports=4, poll_batching=poll_batching
    )
    return system


class TestPollBatching:
    def _run(self, poll_batching: bool, iterations: int = 20):
        system = _system(poll_batching)
        seen = []
        system.agent.attach_python(
            "watch", lambda ctx: seen.append(dict(ctx.args))
        )
        system.agent.prologue()
        for i in range(iterations):
            system.asic.process(Packet({"hdr.f": i + 1}))
            system.agent.run_iteration()
        return system, seen

    def test_semantics_unchanged(self):
        """The reaction sees identical measurement values either way."""
        _, plain = self._run(False)
        _, batched = self._run(True)
        assert batched == plain
        assert batched  # the reaction did run
        assert batched[-1]["r1"][0] == 20

    def test_poll_phase_is_cheaper(self):
        """Two mirror arrays: 2 PCIe RTTs unbatched vs 1 batched."""
        plain, _ = self._run(False)
        batched, _ = self._run(True)
        saved = plain.driver.model.pcie_rtt_us
        assert (
            plain.agent.last_breakdown["poll_us"]
            - batched.agent.last_breakdown["poll_us"]
        ) == pytest.approx(saved, rel=0.01)
        # Only the poll phase changed.
        assert batched.agent.last_breakdown["mv_flip_us"] == (
            plain.agent.last_breakdown["mv_flip_us"]
        )
        assert batched.agent.last_breakdown["commit_us"] == (
            plain.agent.last_breakdown["commit_us"]
        )

    def test_phase_totals_accumulate(self):
        system, _ = self._run(True, iterations=10)
        totals = system.agent.phase_totals
        parts = (
            totals["mv_flip_us"] + totals["poll_us"]
            + totals["react_us"] + totals["commit_us"]
        )
        assert totals["total_us"] == pytest.approx(parts, rel=1e-9)
        assert totals["poll_us"] > 0

    def test_predictor_tracks_batched_measurement(self):
        model = _system(True).driver.model
        unbatched = predict_measurement_us(
            model, register_entries=8, register_arrays=2
        )
        batched = predict_measurement_us(
            model, register_entries=8, register_arrays=2, poll_batched=True
        )
        assert unbatched - batched == pytest.approx(model.pcie_rtt_us)

    @pytest.mark.parametrize("poll_batching", [False, True])
    def test_reaction_formula_matches_agent(self, poll_batching: bool):
        """The Section 8.1 formula with the matching poll_batched flag
        predicts the measured dialogue latency in both modes."""
        system = _system(poll_batching)
        system.agent.attach_python("watch", lambda ctx: None)
        system.agent.prologue()
        system.agent.run(50)
        measured = system.agent.avg_reaction_time_us
        predicted = predict_reaction_time_us(
            system.driver.model, system.spec, "watch",
            poll_batched=poll_batching,
        )
        assert predicted == pytest.approx(measured, rel=0.35)
        # And cross-checked: the mode flag matters (the two predictions
        # differ by exactly the saved round trips).
        other = predict_reaction_time_us(
            system.driver.model, system.spec, "watch",
            poll_batched=not poll_batching,
        )
        assert abs(predicted - other) == pytest.approx(
            system.driver.model.pcie_rtt_us
        )
