"""Unit tests for the malleable table handle's user-facing API,
including the C-style flat-call convention reaction bodies use."""

import pytest

from repro.errors import AgentError
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { src : 32; port : 16; out : 16; } }
header h_t hdr;
action set_out(v) { modify_field(hdr.out, v); }
action block() { drop(); }
action nop() { no_op(); }
malleable table acl {
    reads { hdr.src : exact; hdr.port : range; }
    actions { set_out; block; nop; }
    default_action : nop();
    size : 64;
}
control ingress { apply(acl); }
"""


@pytest.fixture
def system():
    sys_ = MantisSystem.from_source(PROGRAM)
    sys_.agent.prologue()
    return sys_


class TestFlatCallConvention:
    def test_addEntry_flat(self, system):
        handle = system.agent.table("acl")
        user_id = handle.addEntry(7, (10, 20), "set_out", 99)
        system.agent.run_iteration()
        packet = Packet({"hdr.src": 7, "hdr.port": 15})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 99
        assert isinstance(user_id, int)

    def test_modEntry_flat(self, system):
        handle = system.agent.table("acl")
        user_id = handle.addEntry(7, (10, 20), "set_out", 99)
        system.agent.run_iteration()
        handle.modEntry(user_id, 111)
        system.agent.run_iteration()
        packet = Packet({"hdr.src": 7, "hdr.port": 15})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 111

    def test_delEntry_flat(self, system):
        handle = system.agent.table("acl")
        user_id = handle.addEntry(7, (10, 20), "block")
        system.agent.run_iteration()
        handle.delEntry(user_id)
        system.agent.run_iteration()
        packet = Packet({"hdr.src": 7, "hdr.port": 15})
        assert system.asic.process(packet) is not None  # no longer blocked

    def test_setDefault_immediate(self, system):
        handle = system.agent.table("acl")
        handle.setDefault("set_out", 5)
        # Default updates are single atomic ops, visible immediately.
        packet = Packet({"hdr.src": 1, "hdr.port": 1})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 5

    def test_flat_call_arity_checked(self, system):
        handle = system.agent.table("acl")
        with pytest.raises(AgentError):
            handle.addEntry(7, "set_out", 99)  # missing range key part
        with pytest.raises(AgentError):
            handle.addEntry(7, (1, 2), 99)  # action name not a string

    def test_from_c_reaction_body_bad_key_kind(self, system):
        """A C body can call acl.addEntry with a string action name,
        but an int for a range key part is rejected by the handle."""
        from repro.errors import AgentError
        from repro.p4r.creaction import CReaction, ReactionEnv

        body = CReaction('return acl.addEntry(7, 0, "block");', "x")
        with pytest.raises(AgentError):
            body.run(ReactionEnv(tables={"acl": system.agent.table("acl")}))

    def test_from_c_reaction_body_exact_table(self):
        """Positive path: a C reaction installs a drop rule through a
        malleable exact-match table (the DoS use case's C shape)."""
        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { src : 32; } }
header h_t hdr;
action allow() { no_op(); }
action block() { drop(); }
malleable table blocklist {
    reads { hdr.src : exact; }
    actions { allow; block; }
    default_action : allow();
    size : 32;
}
control ingress { apply(blocklist); }
reaction guard(ing hdr.src) {
    if (hdr_src == 666) {
        blocklist.addEntry(hdr_src, "block");
    }
}
"""
        system = MantisSystem.from_source(source)
        system.agent.prologue()
        system.asic.process(Packet({"hdr.src": 666}))
        system.agent.run_iteration()  # reaction installs the rule
        system.agent.run_iteration()  # commit already happened; settle
        assert system.asic.process(Packet({"hdr.src": 666})) is None
        assert system.asic.process(Packet({"hdr.src": 5})) is not None


class TestRangeKeys:
    def test_range_match_and_wildcard(self, system):
        handle = system.agent.table("acl")
        handle.add([5, (100, 200)], "set_out", [1])
        system.agent.run_iteration()
        hit = Packet({"hdr.src": 5, "hdr.port": 150})
        system.asic.process(hit)
        assert hit.get("hdr.out") == 1
        miss = Packet({"hdr.src": 5, "hdr.port": 300})
        system.asic.process(miss)
        assert miss.get("hdr.out") == 0

    def test_bad_range_key_rejected(self, system):
        handle = system.agent.table("acl")
        with pytest.raises(AgentError):
            handle.add([5, 100], "set_out", [1])  # int for a range read


class TestHandleErrors:
    def test_wrong_key_arity(self, system):
        with pytest.raises(AgentError):
            system.agent.table("acl").add([5], "block")

    def test_unknown_user_entry(self, system):
        handle = system.agent.table("acl")
        with pytest.raises(AgentError):
            handle.modify(12345, args=[1])
        with pytest.raises(AgentError):
            handle.delete(12345)

    def test_unknown_table(self, system):
        with pytest.raises(AgentError):
            system.agent.table("ghost")

    def test_pending_ops_counter(self, system):
        handle = system.agent.table("acl")
        assert handle.pending_ops == 0
        handle.add([5, (1, 2)], "block")
        assert handle.pending_ops == 1
        system.agent.run_iteration()
        assert handle.pending_ops == 0
