"""Hot reaction swap (Section 7) under control-channel failure.

``request_swap`` + ``_apply_pending_swaps`` must be atomic from the
data plane's perspective: the swapped implementation takes over at one
iteration boundary, its statics/state are cleared exactly once, and a
failed post-swap user-init commit defers (staged state preserved)
rather than half-applying -- the swap itself stays in effect.
"""

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; out1 : 16; } }
header h_t hdr;
malleable value knob { width : 16; init : 1; }
action stamp() { modify_field(hdr.out1, ${knob}); }
table t { actions { stamp; } default_action : stamp(); }
action set_out(v) { modify_field(hdr.out1, v); }
action nop() { no_op(); }
malleable table m {
    reads { hdr.key : exact; }
    actions { set_out; nop; }
    default_action : nop();
    size : 32;
}
control ingress { apply(t); apply(m); }
reaction r() {
    int x = 0;
}
"""


def observe(system, key=0):
    packet = Packet({"hdr.key": key})
    system.asic.process(packet)
    return packet.get("hdr.out1")


def build():
    system = MantisSystem.from_source(PROGRAM)
    system.agent.prologue(user_init=lambda ctx: ctx.write("knob", 10))
    return system


class TestSwapUnderFailure:
    def test_swap_survives_failed_reinit_commit(self):
        system = build()
        agent = system.agent
        assert observe(system) == 10
        calls = {"set_defaults": 0, "new_impl_runs": 0}

        def new_impl(ctx):
            calls["new_impl_runs"] += 1

        def reinit(ctx):
            ctx.write("knob", 77)

        agent._user_init = reinit

        # Fail every master write except this iteration's own commit
        # flip, long enough to exhaust the in-iteration retry budget.
        def only_after_first(kind, target, channel):
            calls["set_defaults"] += 1
            return calls["set_defaults"] >= 2

        FaultInjector(FaultPlan(seed=0, specs=[FaultSpec(
            kind="transient",
            op_kinds=frozenset({"table_set_default"}),
            predicate=only_after_first,
            max_triggers=agent.commit_retry_limit,
        )])).attach(system.driver)

        agent.request_swap("r", new_impl, rerun_user_init=True)
        agent.run_iteration()
        # The swap is in effect even though its re-init commit failed.
        assert agent._reactions[0].py_impl is new_impl
        assert calls["new_impl_runs"] == 0  # takes over NEXT iteration
        # The re-init's staged value is invisible (commit deferred)...
        assert observe(system) == 10
        assert agent.health().degraded
        # ...and lands atomically at the next iteration's commit.
        agent.run_iteration()
        assert calls["new_impl_runs"] == 1
        assert observe(system) == 77
        agent.run_iteration()
        assert agent.health().healthy

    def test_statics_cleared_exactly_once_across_failed_commits(self):
        system = build()
        agent = system.agent
        runtime = agent._reactions[0]
        observed_states = []

        def old_impl(ctx):
            ctx.state["marker"] = "old"

        def new_impl(ctx):
            observed_states.append(dict(ctx.state))
            ctx.state["marker"] = "new"

        agent.attach_python("r", old_impl)
        agent.run_iteration()
        assert runtime.state == {"marker": "old"}
        runtime.statics["leftover"] = 1

        counter = {"n": 0}

        def after_first(kind, target, channel):
            counter["n"] += 1
            return counter["n"] >= 2

        FaultInjector(FaultPlan(seed=0, specs=[FaultSpec(
            kind="transient",
            op_kinds=frozenset({"table_set_default"}),
            predicate=after_first,
            max_triggers=agent.commit_retry_limit,
        )])).attach(system.driver)

        agent._user_init = lambda ctx: ctx.write("knob", 5)
        agent.request_swap("r", new_impl, rerun_user_init=True)
        agent.run_iteration()  # swap applies; its re-init commit defers
        assert runtime.statics == {} and runtime.state == {}
        agent.run_iteration()  # new impl runs with the cleared state
        agent.run_iteration()
        # The module DATA segment was reset once, at swap time; the
        # deferred commit did not trigger a second reset.
        assert observed_states[0] == {}
        assert observed_states[1] == {"marker": "new"}
        assert agent.health().healthy

    def test_table_state_consistent_across_swap_failure(self):
        """A swap whose re-init adds table entries while the channel
        flakes must still converge to the two-entry invariant."""
        from repro.faults import shadow_parity_violations

        system = build()
        agent = system.agent
        handle = agent.table("m")

        def reinit(ctx):
            ctx.table("m").add([4], "set_out", [40])

        agent._user_init = reinit
        injector = FaultInjector(FaultPlan(seed=3, specs=[FaultSpec(
            kind="transient",
            op_kinds=frozenset({"table_add", "table_set_default"}),
            targets=frozenset({"m", agent._master.table}),
            probability=0.6,
            max_triggers=12,
        )])).attach(system.driver)

        agent.request_swap("r", lambda ctx: None, rerun_user_init=True)
        for _ in range(6):
            try:
                agent.run_iteration()
            except Exception:
                # A prepare inside the re-init may fail outright; the
                # swap machinery must still leave consistent state.
                continue
        injector.enabled = False
        # The re-init may need re-queuing if its prepare failed before
        # anything was staged; what matters is convergence afterwards.
        if handle.user_entry_count() == 0:
            handle.add([4], "set_out", [40])
        agent.run_iteration()
        agent.run_iteration()
        assert shadow_parity_violations(system) == []
        assert agent.health().healthy
        assert observe(system, key=4) == 40
