"""Serializable-isolation tests (Section 5).

These are the reproduction's checks of the paper's core correctness
claims: per-pipeline serializable isolation between measurements,
malleable updates, and packet processing.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

TWO_FIELD_PROGRAM = STANDARD_METADATA_P4 + """
header_type flow_t { fields { a : 32; b : 32; } }
header flow is not used
"""

FIELD_ARGS_PROGRAM = STANDARD_METADATA_P4 + """
header_type flow_t { fields { a : 32; b : 32; } }
header flow_t flow;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }

reaction watch(ing flow.a, ing flow.b) {
    int x = flow_a;
}
"""


class TestMeasurementIsolation:
    """Section 5.2: a reaction's field arguments reflect one
    consistent checkpoint even when packets arrive mid-poll."""

    def _build(self):
        system = MantisSystem.from_source(FIELD_ARGS_PROGRAM)
        system.agent.prologue()
        return system

    def test_field_args_come_from_one_checkpoint(self):
        system = self._build()
        # Two 32-bit args -> two separate containers, read by two
        # separate driver operations.
        assert len(system.spec.containers) == 2
        system.asic.process(Packet({"flow.a": 1, "flow.b": 1}))

        observed = {}
        real_read = system.driver.read_registers
        injected = {"done": False}

        def racy_read(name, lo=0, hi=None, **kwargs):
            values = real_read(name, lo, hi, **kwargs)
            if not injected["done"]:
                # A second packet lands between the two container reads.
                injected["done"] = True
                system.asic.process(Packet({"flow.a": 2, "flow.b": 2}))
            return values

        system.driver.read_registers = racy_read

        def reaction(ctx):
            observed["a"] = ctx.args["flow_a"]
            observed["b"] = ctx.args["flow_b"]

        system.agent.attach_python("watch", reaction)
        system.agent.run_iteration()
        # Without the mv checkpoint, the poll would see the torn pair
        # (1, 2).  With Mantis both come from packet 1's snapshot.
        assert observed == {"a": 1, "b": 1}

    def test_unisolated_read_would_tear(self):
        """Contrast case: reading the *working* copy directly shows
        exactly the inconsistency the paper motivates."""
        system = self._build()
        system.asic.process(Packet({"flow.a": 1, "flow.b": 1}))
        containers = sorted(c.register for c in system.spec.containers)
        working = system.agent.mv  # data plane writes here
        first = system.asic.registers[containers[0]].read(working)
        system.asic.process(Packet({"flow.a": 2, "flow.b": 2}))
        second = system.asic.registers[containers[1]].read(working)
        assert (first, second) in {(1, 2), (2, 1)}  # torn


REGISTER_PROGRAM = STANDARD_METADATA_P4 + """
header_type flow_t { fields { v : 32; } }
header flow_t flow;

register acc { width : 32; instance_count : 4; }

action record() { register_write(acc, 0, flow.v); }
table t { actions { record; } default_action : record(); }
control ingress { apply(t); }

reaction watch(reg acc[0:3]) {
    int x = acc[0];
}
"""


class TestRegisterFreshness:
    """Section 5.2: without the timestamp cache, measured values
    alternate between r_i and r_{i+1}; the cache returns only the
    most recent committed value."""

    def _build(self):
        system = MantisSystem.from_source(REGISTER_PROGRAM)
        system.agent.prologue()
        observed = []
        system.agent.attach_python(
            "watch", lambda ctx: observed.append(ctx.args["acc"][0])
        )
        return system, observed

    def test_cache_suppresses_stale_alternation(self):
        system, observed = self._build()
        system.asic.process(Packet({"flow.v": 10}))  # written at mv=0
        system.agent.run_iteration()  # reads checkpoint 0 -> 10
        system.asic.process(Packet({"flow.v": 20}))  # written at mv=1
        system.agent.run_iteration()  # reads checkpoint 1 -> 20
        # No new packets: copy 0 still holds the stale 10.
        system.agent.run_iteration()
        system.agent.run_iteration()
        assert observed == [10, 20, 20, 20]

    def test_raw_copy_really_is_stale(self):
        system, observed = self._build()
        mirror = system.spec.mirrors["acc"]
        system.asic.process(Packet({"flow.v": 10}))
        system.agent.run_iteration()
        system.asic.process(Packet({"flow.v": 20}))
        system.agent.run_iteration()
        # The mv=0 copy still holds 10: the alternation hazard exists
        # in the raw registers and is fixed purely by the cache.
        dup = system.asic.registers[mirror.duplicate]
        assert dup.read(0 * mirror.padded_count + 0) == 10
        assert dup.read(1 * mirror.padded_count + 0) == 20

    def test_original_register_eliminated(self):
        system, _ = self._build()
        assert system.spec.mirrors["acc"].original_eliminated
        assert "acc" not in system.asic.registers


UPDATE_PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; out1 : 16; out2 : 16; } }
header h_t hdr;

malleable value scale { width : 16; init : 10; }

action apply1() { modify_field(hdr.out1, ${scale}); }
action apply2() { modify_field(hdr.out2, ${scale}); }
malleable table stage1 {
    reads { hdr.key : exact; }
    actions { apply1; }
}
malleable table stage2 {
    reads { hdr.key : exact; }
    actions { apply2; }
}
control ingress {
    apply(stage1);
    apply(stage2);
}
"""


class TestUpdateIsolation:
    """Section 5.1: packets past the init stage keep the old
    configuration; commits appear atomically to new packets."""

    def _build(self):
        system = MantisSystem.from_source(UPDATE_PROGRAM)
        system.agent.prologue()
        handle1 = system.agent.table("stage1")
        handle2 = system.agent.table("stage2")
        handle1.add([1], "apply1")
        handle2.add([1], "apply2")
        system.agent.run_iteration()
        return system

    def test_in_flight_packet_keeps_old_config(self):
        system = self._build()
        packet = Packet({"hdr.key": 1})
        stepper = system.asic.process_stepped(packet)
        # Advance past the init table and stage1.
        applied = []
        for step in stepper:
            applied.append(step[1])
            if step[1] == "stage2":
                # Commit a config change mid-packet, before stage2 runs.
                system.agent.write_malleable("scale", 99)
                system.agent.run_iteration()
                break
        for _ in stepper:
            pass
        # Both stages saw the OLD value: config was latched at init.
        assert packet.get("hdr.out1") == 10
        assert packet.get("hdr.out2") == 10
        # A fresh packet sees the new value in both stages.
        fresh = Packet({"hdr.key": 1})
        system.asic.process(fresh)
        assert fresh.get("hdr.out1") == 99
        assert fresh.get("hdr.out2") == 99

    def test_table_update_mid_packet_respects_version(self):
        """Section 5.1.2's timing argument: an in-flight packet uses
        its latched vv through prepare AND commit; the mirror phase
        runs at least one PCIe RTT later, after any pipeline-latency
        packet has drained.  We step the packet across prepare and
        commit (but not past the mirror, which the paper's timing
        forbids) and check it still hits the old copy."""
        system = self._build()
        agent = system.agent
        packet = Packet({"hdr.key": 1})
        stepper = system.asic.process_stepped(packet)
        for step in stepper:
            if step[1] == "stage2":
                handle = agent.table("stage2")
                for user_id in list(handle._users):
                    handle.delete(user_id)  # prepare: shadow only
                old_vv = agent.vv
                agent._write_master(vv=agent.vv ^ 1, fold_staged=True)
                agent.vv ^= 1  # commit
                break
        for _ in stepper:
            pass
        # The in-flight packet still matched its latched-version entry.
        assert packet.get("hdr.out2") == 10
        # Mirror phase runs after the pipeline has drained.
        agent.table("stage2").fill_shadow(old_vv)
        fresh = Packet({"hdr.key": 1})
        system.asic.process(fresh)
        assert fresh.get("hdr.out2") == 0

    def test_pipeline_drains_before_mirror_in_real_timing(self):
        """The timing assumption itself: one PCIe round trip (the
        commit) exceeds the full pipeline latency, so by the time the
        mirror phase runs no packet can still hold the old vv."""
        system = self._build()
        model = system.driver.model
        assert model.pcie_rtt_us > system.asic.pipeline_latency_us


class TestMultiInitSerializability:
    """Section 5.1.1: when configuration spills into several init
    tables, updates across all of them still commit atomically."""

    WIDE = STANDARD_METADATA_P4 + """
header_type h_t { fields { o0 : 32; o1 : 32; o2 : 32; o3 : 32; } }
header h_t hdr;
malleable value v0 { width : 32; init : 1; }
malleable value v1 { width : 32; init : 1; }
malleable value v2 { width : 32; init : 1; }
malleable value v3 { width : 32; init : 1; }
action stamp() {
    modify_field(hdr.o0, ${v0});
    modify_field(hdr.o1, ${v1});
    modify_field(hdr.o2, ${v2});
    modify_field(hdr.o3, ${v3});
}
table t { actions { stamp; } default_action : stamp(); }
control ingress { apply(t); }
"""

    def _build(self):
        # Force a split: only ~2 values fit per init action.
        options = CompilerOptions(max_init_action_bits=80)
        system = MantisSystem.from_source(self.WIDE, options)
        system.agent.prologue()
        return system

    def test_split_happened(self):
        system = self._build()
        assert len(system.spec.init_tables) >= 2

    def test_cross_init_table_updates_are_atomic(self):
        system = self._build()
        agent = system.agent
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 7)
        # Before commit: all old.
        packet = Packet({"hdr.o0": 0})
        system.asic.process(packet)
        values = [packet.get(f"hdr.o{i}") for i in range(4)]
        assert values == [1, 1, 1, 1]
        agent.run_iteration()
        packet = Packet({"hdr.o0": 0})
        system.asic.process(packet)
        values = [packet.get(f"hdr.o{i}") for i in range(4)]
        assert values == [7, 7, 7, 7]

    def test_no_torn_state_mid_commit(self):
        """Drive the commit manually and probe between driver ops:
        a packet processed at ANY point sees all-old or all-new."""
        system = self._build()
        agent = system.agent
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 7)

        torn = []
        real_set_default = system.driver.set_default
        real_modify = system.driver.modify_entry

        def probe():
            packet = Packet({"hdr.o0": 0})
            system.asic.process(packet)
            values = tuple(packet.get(f"hdr.o{i}") for i in range(4))
            if values not in {(1, 1, 1, 1), (7, 7, 7, 7)}:
                torn.append(values)

        def spy_set_default(*args, **kwargs):
            probe()
            result = real_set_default(*args, **kwargs)
            probe()
            return result

        def spy_modify(*args, **kwargs):
            probe()
            result = real_modify(*args, **kwargs)
            probe()
            return result

        system.driver.set_default = spy_set_default
        system.driver.modify_entry = spy_modify
        agent.run_iteration()
        assert torn == []
