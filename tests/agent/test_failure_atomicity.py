"""Failure injection: a crashing reaction must not leave the data
plane in a partially updated state."""

import pytest

from repro.errors import ReactionError, SwitchError
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; out1 : 16; out2 : 16; } }
header h_t hdr;
malleable value a { width : 16; init : 1; }
malleable value b { width : 16; init : 1; }
action stamp() {
    modify_field(hdr.out1, ${a});
    modify_field(hdr.out2, ${b});
}
table t { actions { stamp; } default_action : stamp(); }
action set_out(v) { modify_field(hdr.out1, v); }
action nop() { no_op(); }
malleable table m {
    reads { hdr.key : exact; }
    actions { set_out; nop; }
    default_action : nop();
    size : 32;
}
control ingress { apply(t); apply(m); }
reaction r() {
    int x = 0;
}
"""


def observe(system):
    packet = Packet({"hdr.key": 0})
    system.asic.process(packet)
    return packet.get("hdr.out1"), packet.get("hdr.out2")


class TestCrashingReactions:
    def _system(self):
        system = MantisSystem.from_source(PROGRAM)
        system.agent.prologue()
        return system

    def test_python_exception_propagates_without_partial_commit(self):
        system = self._system()

        def crasher(ctx):
            ctx.write("a", 50)
            raise RuntimeError("boom")

        system.agent.attach_python("r", crasher)
        with pytest.raises(RuntimeError):
            system.agent.run_iteration()
        # Nothing committed: both values still at init.
        assert observe(system) == (1, 1)

    def test_c_reaction_error_propagates_without_partial_commit(self):
        system = self._system()
        # Replace the body with one that writes then divides by zero.
        from repro.p4r.creaction import CReaction

        runtime = system.agent._reactions[0]
        runtime.c_impl = CReaction("${a} = 50; int x = 1 / 0;", "r")
        with pytest.raises(ReactionError):
            system.agent.run_iteration()
        assert observe(system) == (1, 1)

    def test_recovery_after_crash(self):
        """The loop can continue after a failed iteration; staged
        state from the crashed reaction commits with the next
        successful one (the agent does not roll staging back -- as
        with the paper's C, a crashed reaction's prior writes are
        already staged in agent memory)."""
        system = self._system()
        calls = {"n": 0}

        def flaky(ctx):
            calls["n"] += 1
            if calls["n"] == 1:
                ctx.write("a", 50)
                raise RuntimeError("boom")
            ctx.write("b", 60)

        system.agent.attach_python("r", flaky)
        with pytest.raises(RuntimeError):
            system.agent.run_iteration()
        system.agent.run_iteration()
        # Both staged writes are in, committed atomically together.
        assert observe(system) == (50, 60)

    def test_driver_error_mid_reaction_keeps_old_config(self):
        system = self._system()
        handle = system.agent.table("m")
        # Fill to capacity: the declared size 32 doubles to 64 for the
        # shadow copies, so 32 user entries x 2 versions fill it.
        for key in range(32):
            handle.add([key], "set_out", [key])
        system.agent.run_iteration()
        before = system.asic.tables["m"].entry_count

        def overflower(ctx):
            ctx.table("m").add([99], "set_out", [99])  # table full

        system.agent.attach_python("r", overflower := overflower)
        with pytest.raises(SwitchError):
            system.agent.run_iteration()
        # The failed prepare added nothing visible; committed entries
        # are intact and lookups still work.
        packet = Packet({"hdr.key": 3})
        system.asic.process(packet)
        assert packet.get("hdr.out1") == 3
        assert system.asic.tables["m"].entry_count >= before
