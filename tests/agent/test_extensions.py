"""Tests for the Section 7 hot-swap protocol and the future-work
synchronized cross-pipeline commit extension."""

import pytest

from repro.errors import AgentError
from repro.multipipe import MultiPipelineSwitch
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; out : 32; } }
header h_t hdr;
register seen { width : 32; instance_count : 2; }
malleable value scale { width : 16; init : 1; }
action work() {
    register_write(seen, 0, hdr.f);
    modify_field(hdr.out, ${scale});
}
table t { actions { work; } default_action : work(); }
control ingress { apply(t); }
reaction adapt(reg seen[0:1]) {
    ${scale} = ${scale} + 1;
}
"""


class TestHotSwap:
    def _system(self, user_init=None):
        system = MantisSystem.from_source(PROGRAM)
        system.agent.prologue(user_init=user_init)
        return system

    def test_swap_takes_effect_after_current_dialogue(self):
        system = self._system()
        order = []

        def old(ctx):
            order.append("old")
            # Request the swap mid-dialogue: the paper's transition
            # flag only breaks the loop AFTER this dialogue completes.
            system.agent.request_swap("adapt", new)

        def new(ctx):
            order.append("new")

        system.agent.attach_python("adapt", old)
        system.agent.run_iteration()
        assert order == ["old"]
        system.agent.run_iteration()
        assert order == ["old", "new"]

    def test_swap_clears_module_state(self):
        """Unloading the old .so drops its DATA segment: statics and
        Python state start fresh in the new module."""
        system = self._system()

        def counting(ctx):
            ctx.state["n"] = ctx.state.get("n", 0) + 1

        system.agent.attach_python("adapt", counting)
        system.agent.run(3)
        runtime = system.agent._reactions[0]
        assert runtime.state["n"] == 3
        system.agent.request_swap("adapt", counting)
        system.agent.run_iteration()  # applies swap at iteration end
        system.agent.run_iteration()
        assert runtime.state["n"] == 1  # fresh module state

    def test_swap_can_rerun_user_init(self):
        inits = []

        def user_init(ctx):
            inits.append(ctx.now)
            ctx.write("scale", 9)

        system = self._system(user_init=user_init)
        assert len(inits) == 1
        system.agent.attach_python("adapt", lambda ctx: None)
        system.agent.run_iteration()
        # Drift the value away, then swap with rerun_user_init=True.
        system.agent.write_malleable("scale", 2)
        system.agent.run_iteration()
        assert system.agent.read_malleable("scale") == 2
        system.agent.request_swap(
            "adapt", lambda ctx: None, rerun_user_init=True
        )
        system.agent.run_iteration()
        assert len(inits) == 2
        assert system.agent.read_malleable("scale") == 9

    def test_swap_unknown_reaction_rejected(self):
        system = self._system()
        with pytest.raises(AgentError):
            system.agent.request_swap("ghost", lambda ctx: None)


class TestSynchronizedCommit:
    def _switch(self):
        switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=4)
        switch.prologue()
        return switch

    def test_skew_much_smaller_than_round(self):
        switch = self._switch()
        # Baseline: unsynchronized round -- commits are spread across
        # the whole round.
        start = switch.clock.now
        switch.run_round()
        round_duration = switch.clock.now - start

        skew = switch.run_round_synchronized()
        assert skew < round_duration / 3

    def test_all_pipelines_commit(self):
        switch = self._switch()
        switch.run_round_synchronized()
        # The C reaction bumps scale by 1 per iteration on each pipe;
        # after the synchronized round, every data plane shows it.
        for pipeline in switch.pipelines:
            packet = Packet({"hdr.f": 0})
            pipeline.asic.process(packet)
            assert packet.get("hdr.out") == 2  # init 1 + one bump

    def test_deferred_commit_really_defers(self):
        system = MantisSystem.from_source(PROGRAM)
        system.agent.prologue()
        system.agent.attach_python(
            "adapt", lambda ctx: ctx.write("scale", 7)
        )
        system.agent.run_iteration(commit=False)
        packet = Packet({"hdr.f": 0})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 1  # still the old config
        system.agent.commit()
        packet = Packet({"hdr.f": 0})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 7
