"""Commit-failure recovery: the dialogue loop under a faulty control
channel (DESIGN.md, "Fault model and recovery").

The protocol guarantees under test:

- a failed vv flip defers the commit with ALL staged state preserved;
  the next successful commit applies it atomically;
- a flip that lands is never retried (no double flips), only the
  mirror phase is rolled forward;
- a failed mv flip or measurement poll degrades to the previous
  checkpoint instead of crashing the loop;
- ``verify_commits`` turns silently dropped commit writes into
  retried transients;
- ``health()`` reports degradation while any of this is outstanding
  and recovers once the channel does.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.errors import TransientDriverError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    shadow_parity_violations,
)
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

WIDE = STANDARD_METADATA_P4 + """
header_type h_t { fields { o0 : 32; o1 : 32; o2 : 32; o3 : 32; } }
header h_t hdr;
malleable value v0 { width : 32; init : 1; }
malleable value v1 { width : 32; init : 1; }
malleable value v2 { width : 32; init : 1; }
malleable value v3 { width : 32; init : 1; }
action stamp() {
    modify_field(hdr.o0, ${v0});
    modify_field(hdr.o1, ${v1});
    modify_field(hdr.o2, ${v2});
    modify_field(hdr.o3, ${v3});
}
table t { actions { stamp; } default_action : stamp(); }
control ingress { apply(t); }
"""

TABLE_PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; out1 : 16; } }
header h_t hdr;
action set_out(v) { modify_field(hdr.out1, v); }
action nop() { no_op(); }
malleable table m {
    reads { hdr.key : exact; }
    actions { set_out; nop; }
    default_action : nop();
    size : 32;
}
control ingress { apply(m); }
"""

REGISTER_PROGRAM = STANDARD_METADATA_P4 + """
header_type flow_t { fields { v : 32; } }
header flow_t flow;

register acc { width : 32; instance_count : 4; }

action record() { register_write(acc, 0, flow.v); }
table t { actions { record; } default_action : record(); }
control ingress { apply(t); }

reaction watch(reg acc[0:3]) {
    int x = acc[0];
}
"""


def observe_wide(system):
    packet = Packet({"hdr.o0": 0})
    system.asic.process(packet)
    return [packet.get(f"hdr.o{i}") for i in range(4)]


def wide_system(**kwargs):
    # Force a split: some malleables land in non-master init shadows,
    # so a commit spans several driver writes.
    options = CompilerOptions(max_init_action_bits=80)
    system = MantisSystem.from_source(WIDE, options, **kwargs)
    system.agent.prologue()
    assert len(system.spec.init_tables) >= 2
    return system


def inject(system, *specs, seed=0):
    plan = FaultPlan(seed=seed, specs=list(specs))
    return FaultInjector(plan).attach(system.driver)


class TestCommitDeferral:
    def test_single_flip_failure_recovers_within_iteration(self):
        system = wide_system()
        agent = system.agent
        master = agent._master.table
        inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_set_default"}),
            targets=frozenset({master}), max_triggers=1,
        ))
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 7)
        agent.run_iteration()
        # The commit retried inside the iteration and landed.
        assert observe_wide(system) == [7, 7, 7, 7]
        assert agent._total_failures == 1
        # A later clean iteration clears the failure streak.
        agent.run_iteration()
        assert agent.health().healthy

    def test_persistent_flip_failure_defers_whole_commit(self):
        system = wide_system()
        agent = system.agent
        master = agent._master.table
        # 5 in-iteration retries + 2 next-iteration retries all fail;
        # the 8th attempt succeeds.
        inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_set_default"}),
            targets=frozenset({master}), max_triggers=7,
        ))
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 9)
        agent.run_iteration()
        # Nothing visible: the flip never landed, staged state intact.
        assert observe_wide(system) == [1, 1, 1, 1]
        health = agent.health()
        assert health.degraded and health.commit_pending
        assert health.consecutive_failed_iterations == 1
        assert agent._master_staged or any(
            s.dirty for s in agent._init_shadows.values()
        )
        agent.run_iteration()
        # All four values appear atomically, in one later commit.
        assert observe_wide(system) == [9, 9, 9, 9]
        agent.run_iteration()
        assert agent.health().healthy

    def test_no_torn_state_while_deferred(self):
        """Even across a multi-init-table commit interrupted at an
        arbitrary write, packets see all-old or all-new."""
        system = wide_system()
        agent = system.agent
        master = agent._master.table
        # Fail prepares (init-shadow entry writes) a few times too.
        injector = inject(
            system,
            FaultSpec(kind="transient",
                      op_kinds=frozenset({"table_modify"}),
                      probability=0.5, max_triggers=4),
            FaultSpec(kind="transient",
                      op_kinds=frozenset({"table_set_default"}),
                      targets=frozenset({master}),
                      probability=0.5, max_triggers=4),
            seed=11,
        )
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 5)
        for _ in range(6):
            agent.run_iteration()
            assert observe_wide(system) in ([1, 1, 1, 1], [5, 5, 5, 5])
        injector.enabled = False
        agent.run_iteration()
        agent.run_iteration()
        assert observe_wide(system) == [5, 5, 5, 5]
        assert agent.health().healthy

    def test_staged_master_survives_failed_write(self):
        """Regression: staged values must not be cleared before the
        device accepted the write."""
        system = wide_system()
        agent = system.agent

        def failing_set_default(*args, **kwargs):
            raise TransientDriverError("injected")

        agent.write_malleable("v0", 42)
        staged_before = dict(agent._master_staged)
        args_before = list(agent._master_args)
        system.driver.set_default = failing_set_default
        with pytest.raises(TransientDriverError):
            agent._write_master(vv=agent.vv ^ 1, fold_staged=True)
        assert agent._master_staged == staged_before
        assert agent._master_args == args_before


class TestMirrorRollForward:
    def _system(self):
        system = MantisSystem.from_source(TABLE_PROGRAM)
        system.agent.prologue()
        return system

    def observe(self, system, key):
        packet = Packet({"hdr.key": key})
        system.asic.process(packet)
        return packet.get("hdr.out1")

    def test_mirror_failure_leaves_commit_visible_and_rolls_forward(self):
        system = self._system()
        agent = system.agent
        handle = agent.table("m")
        handle.add([1], "set_out", [5])  # prepare (clean channel)
        injector = inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_add"}),
            targets=frozenset({"m"}), max_triggers=50,
        ))
        agent.run_iteration()
        # The flip landed: packets already see the new entry...
        assert self.observe(system, 1) == 5
        # ...but the old-version copy is missing it (mirror deferred).
        assert handle.mirror_backlog == 1
        health = agent.health()
        assert health.degraded and health.commit_pending
        assert shadow_parity_violations(system)
        injector.enabled = False
        agent.run_iteration()
        assert handle.mirror_backlog == 0
        assert shadow_parity_violations(system) == []
        assert agent.health().healthy
        assert self.observe(system, 1) == 5

    def test_commit_never_double_flips(self):
        """A flip that landed must not be repeated when its mirror
        phase fails: vv advances exactly once per committed batch."""
        system = self._system()
        agent = system.agent
        handle = agent.table("m")
        handle.add([2], "set_out", [7])
        injector = inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_add"}),
            targets=frozenset({"m"}), max_triggers=50,
        ))
        vv_before = agent.vv
        agent.run_iteration()  # flip + failed mirror, retried in place
        assert agent.vv == vv_before ^ 1
        injector.enabled = False
        agent.run_iteration()  # drains backlog, then its own flip
        assert agent.vv == vv_before
        assert handle.mirror_backlog == 0

    def test_interrupted_mirror_does_not_resurrect_deleted_entries(self):
        """A stale mirror op must not replay after a later generation
        deleted the entry: generations drain strictly in order, before
        new prepares."""
        system = self._system()
        agent = system.agent
        handle = agent.table("m")
        user_id = handle.add([3], "set_out", [9])
        injector = inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_add"}),
            targets=frozenset({"m"}), max_triggers=50,
        ))
        agent.run_iteration()  # committed; mirror of the add deferred
        assert handle.mirror_backlog == 1
        injector.enabled = False
        handle.delete(user_id)  # next generation deletes it
        agent.run_iteration()
        agent.run_iteration()
        assert shadow_parity_violations(system) == []
        assert self.observe(system, 3) == 0  # gone from both copies
        assert handle.user_entry_count() == 0


class TestMeasurementDegradation:
    def _system(self):
        system = MantisSystem.from_source(REGISTER_PROGRAM)
        system.agent.prologue()
        observed = []
        system.agent.attach_python(
            "watch", lambda ctx: observed.append(ctx.args["acc"][0])
        )
        return system, observed

    def test_failed_mv_flip_reuses_previous_checkpoint(self):
        system, observed = self._system()
        agent = system.agent
        master = agent._master.table
        system.asic.process(Packet({"flow.v": 10}))
        agent.run_iteration()  # clean: reads 10
        inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"table_set_default"}),
            targets=frozenset({master}), max_triggers=1,
        ))
        agent.run_iteration()  # mv flip fails: stale-but-consistent poll
        assert observed == [10, 10]
        assert agent._total_failures == 1
        agent.run_iteration()
        assert agent.health().healthy

    def test_failed_poll_serves_cached_values(self):
        system, observed = self._system()
        agent = system.agent
        system.asic.process(Packet({"flow.v": 10}))
        agent.run_iteration()  # populates the timestamp cache
        inject(system, FaultSpec(
            kind="transient", op_kinds=frozenset({"register_read"}),
            max_triggers=1,
        ))
        agent.run_iteration()  # the mirror poll fails: cache serves 10
        assert observed == [10, 10]
        agent.run_iteration()
        assert agent.health().healthy


class TestVerifyCommits:
    def test_dropped_flip_detected_and_retried(self):
        system = wide_system(verify_commits=True)
        agent = system.agent
        master = agent._master.table
        inject(system, FaultSpec(
            kind="drop", op_kinds=frozenset({"table_set_default"}),
            targets=frozenset({master}), max_triggers=1,
        ))
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 6)
        agent.run_iteration()
        # The dropped write was caught by read-back and rewritten.
        assert observe_wide(system) == [6, 6, 6, 6]
        assert agent._total_failures >= 1
        agent.run_iteration()
        assert agent.health().healthy

    def test_dropped_shadow_prepare_detected(self):
        system = wide_system(verify_commits=True)
        agent = system.agent
        shadow_tables = frozenset(agent._init_shadows)
        assert shadow_tables
        inject(system, FaultSpec(
            kind="drop", op_kinds=frozenset({"table_modify"}),
            targets=shadow_tables, max_triggers=1,
        ))
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 8)
        agent.run_iteration()
        assert observe_wide(system) == [8, 8, 8, 8]
        agent.run_iteration()
        assert agent.health().healthy
        assert shadow_parity_violations(system) == []


class TestCommitPathMemoization:
    def test_init_shadow_prepare_uses_memo(self):
        """Satellite fix: the per-commit init-shadow entry writes must
        ride the prologue's memoized instruction buffers."""
        system = wide_system()
        agent = system.agent
        calls = []
        real_modify = system.driver.modify_entry

        def spy(table, entry_id, action=None, args=None, memo=None, **kw):
            calls.append((table, memo))
            return real_modify(
                table, entry_id, action=action, args=args, memo=memo, **kw
            )

        system.driver.modify_entry = spy
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 3)
        agent.run_iteration()
        shadow_calls = [
            (table, memo) for table, memo in calls
            if table in agent._init_shadows
        ]
        assert shadow_calls  # the split program really has shadows
        assert all(memo is not None for _table, memo in shadow_calls)
