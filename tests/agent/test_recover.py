"""Agent crash recovery: :meth:`MantisAgent.recover` rebuilds a
restarted agent's bookkeeping from switch state.

Guarantees under test (DESIGN.md, "Fault model and recovery"):

- the reconstructed agent agrees with the crashed one on vv/mv,
  master arguments, malleable values, init-shadow entry ids, and
  user-level table entries -- without reinstalling anything;
- interrupted commits are rolled forward (stale shadow copies are
  repaired) and uncommitted prepares are discarded, restoring the
  two-entry invariant;
- a crash-and-recover run converges to the same committed state as an
  uninterrupted twin driving the identical workload.
"""

import pytest

from repro.agent.agent import MantisAgent
from repro.compiler import CompilerOptions
from repro.errors import AgentError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    shadow_parity_violations,
)
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { key : 16; o0 : 32; o1 : 32; o2 : 32; o3 : 32; } }
header h_t hdr;
malleable value v0 { width : 32; init : 1; }
malleable value v1 { width : 32; init : 1; }
malleable value v2 { width : 32; init : 1; }
malleable value v3 { width : 32; init : 1; }
action stamp() {
    modify_field(hdr.o0, ${v0});
    modify_field(hdr.o1, ${v1});
    modify_field(hdr.o2, ${v2});
    modify_field(hdr.o3, ${v3});
}
table t { actions { stamp; } default_action : stamp(); }
action set_out(v) { modify_field(hdr.o0, v); }
action nop() { no_op(); }
malleable table m {
    reads { hdr.key : exact; }
    actions { set_out; nop; }
    default_action : nop();
    size : 64;
}
control ingress { apply(t); apply(m); }
"""


def build(**kwargs):
    # Split the init layout so recovery must handle non-master shadows.
    options = CompilerOptions(max_init_action_bits=80)
    system = MantisSystem.from_source(PROGRAM, options, **kwargs)
    system.agent.prologue()
    assert len(system.spec.init_tables) >= 2
    return system


def restarted_agent(system):
    """A fresh agent bound to the same driver: the crashed process's
    replacement."""
    agent = MantisAgent(system.artifacts, system.driver)
    agent.recover()
    return agent


def device_tables(system):
    state = {}
    for name, runtime in system.asic.tables.items():
        state[name] = sorted(
            (entry.key, entry.action_name, tuple(entry.action_args),
             entry.priority)
            for entry in runtime.entries.values()
        )
    return state


def user_view(handle):
    return sorted(
        (user.key, user.action, tuple(user.args), user.priority)
        for user in handle._users.values()
    )


class TestStateReconstruction:
    def test_reconstructs_versions_values_and_entries(self):
        system = build()
        agent = system.agent
        handle = agent.table("m")
        agent.write_malleable("v0", 11)
        agent.write_malleable("v3", 33)
        handle.add([1], "set_out", [100])
        handle.add([2], "set_out", [200])
        agent.run_iteration()
        agent.run_iteration()
        before = device_tables(system)

        fresh = restarted_agent(system)
        assert fresh.vv == agent.vv
        assert fresh.mv == agent.mv
        assert fresh._master_args == agent._master_args
        assert fresh._param_values == agent._param_values
        for table, shadow in agent._init_shadows.items():
            recovered = fresh._init_shadows[table]
            assert recovered.entry_ids == shadow.entry_ids
            assert recovered.args == shadow.args
        assert user_view(fresh.table("m")) == user_view(handle)
        # Recovery reads; it must not have reinstalled anything.
        assert device_tables(system) == before

    def test_recovered_agent_continues_the_dialogue(self):
        system = build()
        agent = system.agent
        agent.table("m").add([5], "set_out", [50])
        agent.run_iteration()

        fresh = restarted_agent(system)
        fresh.write_malleable("v1", 99)
        fresh.table("m").add([6], "set_out", [60])
        fresh.run_iteration()
        packet = Packet({"hdr.key": 6})
        system.asic.process(packet)
        assert packet.get("hdr.o1") == 99
        assert packet.get("hdr.o0") == 60
        fresh.run_iteration()
        assert shadow_parity_violations(system) == []
        assert fresh.health().healthy

    def test_recover_requires_fresh_agent(self):
        system = build()
        with pytest.raises(AgentError):
            system.agent.recover()

    def test_recover_rejects_field_transformed_tables_with_entries(self):
        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 16; b : 16; out : 16; } }
header h_t hdr;
malleable field sel { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action set_out(v) { modify_field(hdr.out, v); }
action nop() { no_op(); }
malleable table ft {
    reads { ${sel} : exact; }
    actions { set_out; nop; }
    default_action : nop();
}
control ingress { apply(ft); }
"""
        system = MantisSystem.from_source(source)
        system.agent.prologue()
        system.agent.table("ft").add([7], "set_out", [1])
        system.agent.run_iteration()
        fresh = MantisAgent(system.artifacts, system.driver)
        with pytest.raises(AgentError):
            fresh.recover()


class TestInterruptedCommitRepair:
    def test_unmirrored_table_commit_rolled_forward(self):
        system = build()
        agent = system.agent
        handle = agent.table("m")
        handle.add([1], "set_out", [10])
        FaultInjector(FaultPlan(seed=0, specs=[FaultSpec(
            kind="transient", op_kinds=frozenset({"table_add"}),
            targets=frozenset({"m"}), max_triggers=50,
        )])).attach(system.driver)
        agent.run_iteration()  # flip lands, mirror add keeps failing
        assert handle.mirror_backlog == 1
        assert shadow_parity_violations(system)
        system.driver.fault_injector.enabled = False

        # The agent dies here; its replacement repairs the device.
        fresh = restarted_agent(system)
        assert shadow_parity_violations(system) == []
        assert user_view(fresh.table("m")) == [((1,), "set_out", (10,), 0)]
        packet = Packet({"hdr.key": 1})
        system.asic.process(packet)
        assert packet.get("hdr.o0") == 10

    def test_unmirrored_init_commit_rolled_forward(self):
        system = build()
        agent = system.agent
        shadow_tables = frozenset(agent._init_shadows)
        writes = {"n": 0}

        def second_write(kind, target, channel):
            writes["n"] += 1
            return writes["n"] >= 2  # let the prepare through

        FaultInjector(FaultPlan(seed=0, specs=[FaultSpec(
            kind="transient", op_kinds=frozenset({"table_modify"}),
            targets=shadow_tables, predicate=second_write,
            max_triggers=50,
        )])).attach(system.driver)
        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 21)
        agent.run_iteration()  # committed; init mirror writes fail
        assert agent.health().degraded
        assert shadow_parity_violations(system)
        system.driver.fault_injector.enabled = False

        fresh = restarted_agent(system)
        assert shadow_parity_violations(system) == []
        assert fresh._param_values == agent._param_values
        assert all(
            fresh._init_shadows[t].args == agent._init_shadows[t].args
            for t in shadow_tables
        )

    def test_uncommitted_table_prepare_discarded(self):
        system = build()
        agent = system.agent
        handle = agent.table("m")
        handle.add([1], "set_out", [10])
        agent.run_iteration()
        handle.add([2], "set_out", [20])  # prepared, never committed

        fresh = restarted_agent(system)
        # Only the committed entry survives; the dangling prepare is
        # removed so it cannot leak at the next flip.
        assert user_view(fresh.table("m")) == [((1,), "set_out", (10,), 0)]
        assert shadow_parity_violations(system) == []
        fresh.run_iteration()
        packet = Packet({"hdr.key": 2})
        system.asic.process(packet)
        assert packet.get("hdr.o0") != 20

    def test_uncommitted_init_prepare_discarded(self):
        system = build()
        agent = system.agent
        master = agent._master.table

        def fail_flip(*args, **kwargs):
            from repro.errors import TransientDriverError

            raise TransientDriverError("injected crash point")

        for name in ("v0", "v1", "v2", "v3"):
            agent.write_malleable(name, 55)
        real = system.driver.set_default
        system.driver.set_default = fail_flip
        agent.run_iteration()  # prepare lands, every flip attempt dies
        system.driver.set_default = real
        assert agent.health().degraded

        fresh = restarted_agent(system)
        # The prepared-but-uncommitted args were rolled back to the
        # committed ones on the device.
        assert shadow_parity_violations(system) == []
        for name in ("v0", "v1", "v2", "v3"):
            assert fresh.read_malleable(name) == 1
        packet = Packet({"hdr.key": 0})
        system.asic.process(packet)
        assert packet.get("hdr.o0") == 1


class TestTwinDeterminism:
    CRASH_AT = 5
    TOTAL = 12

    @staticmethod
    def _uid_for_key(handle, key):
        return min(
            uid for uid, user in handle._users.items() if user.key == (key,)
        )

    def _drive(self, agent, index):
        handle = agent.table("m")
        agent.write_malleable("v0", index * 3 + 1)
        agent.write_malleable("v2", index ^ 0x5A)
        if index % 3 == 0:
            handle.add([index], "set_out", [index + 100])
        if index in (7, 10):  # delete keys 3 and 6, added earlier
            handle.delete(self._uid_for_key(handle, index - 4))
        agent.run_iteration()

    def test_crash_recover_matches_uninterrupted_twin(self):
        straight = build()
        for index in range(self.TOTAL):
            self._drive(straight.agent, index)

        crashed = build()
        agent = crashed.agent
        for index in range(self.CRASH_AT):
            self._drive(agent, index)
        agent = restarted_agent(crashed)  # crash + restart here
        for index in range(self.CRASH_AT, self.TOTAL):
            self._drive(agent, index)

        assert agent.vv == straight.agent.vv
        assert agent.mv == straight.agent.mv
        assert agent._master_args == straight.agent._master_args
        assert agent._param_values == straight.agent._param_values
        assert device_tables(crashed) == device_tables(straight)
        assert user_view(agent.table("m")) == user_view(
            straight.agent.table("m")
        )
        assert shadow_parity_violations(crashed) == []
        assert agent.health().healthy
