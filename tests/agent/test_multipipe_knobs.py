"""Per-pipeline system knobs and commit-skew measurement.

The Pipeline class delegates to :class:`MantisSystem`, so the fault /
retry / verification / timeline knobs behave per pipeline exactly as
on a single-pipeline switch; ``run_round_synchronized`` reports the
window between the first and last commit *completions*.
"""

import pytest

from repro.errors import AgentError
from repro.faults import FaultPlan, FaultSpec
from repro.multipipe import MultiPipelineSwitch
from repro.runtime import Scheduler
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.driver import RetryPolicy

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; out : 32; } }
header h_t hdr;
register seen { width : 32; instance_count : 4; }
malleable value scale { width : 16; init : 1; }
action work() {
    register_write(seen, 0, hdr.f);
    modify_field(hdr.out, ${scale});
}
table t { actions { work; } default_action : work(); }
control ingress { apply(t); }
reaction adapt(reg seen[0:3]) {
    ${scale} = seen[0];
}
"""


def _transient_plan(seed=0, triggers=3):
    return FaultPlan(seed=seed, specs=[
        FaultSpec(kind="transient", max_triggers=triggers),
    ])


class TestKnobPlumbing:
    def test_fault_plan_fires_on_pipeline_1_only(self):
        """Regression: these knobs used to be silently dropped."""
        switch = MultiPipelineSwitch.from_source(
            PROGRAM, n_pipelines=3,
            fault_plan={1: _transient_plan()},
            retry_policy=RetryPolicy(),
        )
        switch.prologue()
        switch.run_rounds(3)
        assert switch[0].fault_injector is None
        assert switch[2].fault_injector is None
        assert switch[1].fault_injector is not None
        assert switch[1].fault_injector.triggered > 0
        # The armed driver retried through the transients.
        assert switch[1].driver.retries_total > 0

    def test_shared_plan_arms_every_pipeline(self):
        switch = MultiPipelineSwitch.from_source(
            PROGRAM, n_pipelines=2,
            fault_plan=_transient_plan(),
            retry_policy=RetryPolicy(),
        )
        switch.prologue()
        switch.run_rounds(2)
        assert all(p.fault_injector is not None for p in switch.pipelines)

    def test_retry_policy_and_verify_commits_reach_components(self):
        policy = RetryPolicy(max_attempts=7)
        switch = MultiPipelineSwitch.from_source(
            PROGRAM, n_pipelines=2,
            retry_policy=policy, verify_commits=True,
        )
        for pipeline in switch.pipelines:
            assert pipeline.driver.retry_policy is policy
            assert pipeline.agent.verify_commits is True

    def test_record_timeline_reaches_drivers(self):
        switch = MultiPipelineSwitch.from_source(
            PROGRAM, n_pipelines=2, record_timeline=True,
        )
        switch.prologue()
        switch.run_round()
        for pipeline in switch.pipelines:
            assert pipeline.driver.record_timeline is True
            assert len(pipeline.driver.timeline) > 0

    def test_seed_offsets_per_pipeline(self):
        switch = MultiPipelineSwitch.from_source(
            PROGRAM, n_pipelines=3, seed=10,
        )
        assert [p.asic._seed for p in switch.pipelines] == [10, 11, 12]
        default = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=3)
        assert [p.asic._seed for p in default.pipelines] == [0, 1, 2]

    def test_pipeline_exposes_its_system(self):
        switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=2)
        for pipeline in switch.pipelines:
            assert pipeline.system.asic is pipeline.asic
            assert pipeline.system.driver is pipeline.driver
            assert pipeline.system.agent is pipeline.agent
            assert pipeline.system.clock is switch.clock


class TestCommitSkew:
    def test_single_pipeline_skew_is_zero(self):
        """Regression: the old measurement started the window before
        the first commit, so even one pipeline reported its own commit
        duration as 'skew'."""
        switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=1)
        switch.prologue()
        assert switch.run_round_synchronized() == 0.0

    def test_skew_excludes_first_commit_duration(self):
        # Reference: the simulated duration of one deferred commit.
        solo = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=1)
        solo.prologue()
        solo[0].agent.run_iteration(commit=False)
        before = solo.clock.now
        solo[0].agent.commit()
        one_commit = solo.clock.now - before
        assert one_commit > 0.0

        duo = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=2)
        duo.prologue()
        skew = duo.run_round_synchronized()
        # Two back-to-back commits of identical cost: the window spans
        # only the second.  The old bug returned both (2x one_commit).
        assert skew == pytest.approx(one_commit)
        assert skew < 2 * one_commit


class TestScheduledPipelines:
    def test_spawn_agents_interleaves_on_one_timeline(self):
        switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=3)
        switch.prologue()
        scheduler = Scheduler(clock=switch.clock)
        actors = switch.spawn_agents(scheduler)
        assert len(actors) == 3
        scheduler.run_until(switch.clock.now + 300.0)
        iterations = [p.agent.iterations for p in switch.pipelines]
        assert all(count > 2 for count in iterations)
        # Timestamp-ordered busy-loops: no pipeline starves another.
        assert max(iterations) - min(iterations) <= 1

    def test_spawn_agents_requires_shared_clock(self):
        switch = MultiPipelineSwitch.from_source(PROGRAM, n_pipelines=2)
        with pytest.raises(AgentError):
            switch.spawn_agents(Scheduler())
