"""Driver cost-model tests (the substrate behind Figures 10-12)."""

import pytest

from repro.errors import DriverError
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.driver import Driver, DriverCostModel

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;

register wide { width : 32; instance_count : 64; }
register other { width : 32; instance_count : 64; }

action set_f(v) { modify_field(hdr.f, v); }
action nop() { no_op(); }

table t1 {
    reads { hdr.f : exact; }
    actions { set_f; nop; }
    default_action : nop();
}
control ingress { apply(t1); }
"""


@pytest.fixture
def driver():
    asic = SwitchAsic(parse_p4(PROGRAM))
    return Driver(asic, record_timeline=True)


class TestCostModel:
    def test_each_op_pays_pcie(self, driver):
        model = driver.model
        start = driver.clock.now
        driver.write_register("wide", 0, 1)
        one_op = driver.clock.now - start
        assert one_op == pytest.approx(
            model.pcie_rtt_us + model.op_prep_us + model.register_write_us
        )

    def test_batch_shares_pcie(self, driver):
        model = driver.model
        start = driver.clock.now
        with driver.batch():
            driver.write_register("wide", 0, 1)
            driver.write_register("wide", 1, 2)
            driver.write_register("wide", 2, 3)
        elapsed = driver.clock.now - start
        expected = model.pcie_rtt_us + 3 * (
            model.op_prep_us + model.register_write_us
        )
        assert elapsed == pytest.approx(expected)

    def test_memoization_reduces_prep(self, driver):
        model = driver.model
        memo = driver.memoize("register", "wide")
        start = driver.clock.now
        driver.write_register("wide", 0, 1, memo=memo)
        elapsed = driver.clock.now - start
        assert elapsed == pytest.approx(
            model.pcie_rtt_us + model.memoized_prep_us + model.register_write_us
        )

    def test_memoize_is_idempotent(self, driver):
        first = driver.memoize("table", "t1")
        t = driver.clock.now
        second = driver.memoize("table", "t1")
        assert first is second
        assert driver.clock.now == t  # no extra prologue cost

    def test_implicit_memo_lookup(self, driver):
        """Once memoized, plain calls use the cached instruction buffer."""
        driver.memoize("register", "wide")
        start = driver.clock.now
        driver.write_register("wide", 0, 1)
        elapsed = driver.clock.now - start
        assert elapsed < driver.model.pcie_rtt_us + driver.model.op_prep_us

    def test_burst_read_cheaper_than_separate_arrays(self, driver):
        """Figure 10a: N entries of one array ~ constant; N arrays linear."""
        start = driver.clock.now
        driver.read_registers("wide", 0, 15)
        burst = driver.clock.now - start

        start = driver.clock.now
        for _ in range(8):
            driver.read_registers("wide", 0, 0)
            driver.read_registers("other", 0, 0)
        separate = driver.clock.now - start
        assert burst < separate / 3

    def test_register_read_per_byte_slope(self):
        model = DriverCostModel()
        c4 = model.register_read_cost(1, 32)
        c64 = model.register_read_cost(16, 32)
        slope_per_byte = (c64 - c4) / 60
        assert slope_per_byte == pytest.approx(model.register_read_per_byte_us)
        # "10s of ns" per extra byte, per the paper.
        assert 0.005 <= slope_per_byte <= 0.05


class TestDriverOps:
    def test_table_lifecycle(self, driver):
        entry = driver.add_entry("t1", [5], "set_f", [9])
        assert driver.asic.tables["t1"].entries[entry].action_args == [9]
        driver.modify_entry("t1", entry, args=[11])
        assert driver.asic.tables["t1"].entries[entry].action_args == [11]
        driver.delete_entry("t1", entry)
        assert not driver.asic.tables["t1"].entries

    def test_set_default(self, driver):
        driver.set_default("t1", "set_f", [3])
        assert driver.asic.tables["t1"].default_action == ("set_f", [3])

    def test_read_registers_values(self, driver):
        driver.asic.registers["wide"].write(3, 33)
        assert driver.read_registers("wide", 2, 4) == [0, 33, 0]

    def test_memo_mismatch_rejected(self, driver):
        memo = driver.memoize("register", "wide")
        with pytest.raises(DriverError):
            driver.write_register("other", 0, 1, memo=memo)

    def test_unknown_memo_kind(self, driver):
        with pytest.raises(DriverError):
            driver.memoize("gizmo", "wide")

    def test_timeline_records_channels(self, driver):
        driver.write_register("wide", 0, 1, channel="mantis")
        driver.write_register("wide", 1, 2, channel="legacy")
        channels = [op.channel for op in driver.timeline]
        assert channels == ["mantis", "legacy"]
        assert driver.timeline[0].end_us <= driver.timeline[1].start_us

    def test_ops_issued_counter(self, driver):
        driver.write_register("wide", 0, 1)
        driver.read_registers("wide")
        assert driver.ops_issued == 2
