"""Driver fault injection, retry policy, and error accounting.

The contract under test (DESIGN.md, "Fault model and recovery"): an
injected failure never leaves a mutation behind, costs are charged
for the wasted round trips, retries respect the backoff/deadline
budget, and drop/corrupt faults are restricted to the op kinds where
their semantics are well-defined.
"""

import pytest

from repro.errors import DriverError, DriverTimeoutError, TransientDriverError
from repro.faults import (
    CORRUPTIBLE_KINDS,
    DROPPABLE_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    random_fault_plan,
)
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.driver import Driver, RetryPolicy

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;

register wide { width : 32; instance_count : 64; }
counter pkts { type : packets; instance_count : 4; }

action set_f(v) { modify_field(hdr.f, v); }
action bump() { count(pkts, 1); }
action nop() { no_op(); }

table t1 {
    reads { hdr.f : exact; }
    actions { set_f; bump; nop; }
    default_action : nop();
}
control ingress { apply(t1); }
"""


def make_driver(plan=None, policy=None):
    asic = SwitchAsic(parse_p4(PROGRAM))
    driver = Driver(asic, retry_policy=policy)
    if plan is not None:
        FaultInjector(plan).attach(driver)
    return driver


def transient_plan(**kwargs):
    return FaultPlan(seed=1, specs=[FaultSpec(kind="transient", **kwargs)])


class TestTransientFaults:
    def test_raises_without_mutation(self):
        driver = make_driver(transient_plan(max_triggers=1))
        with pytest.raises(TransientDriverError):
            driver.add_entry("t1", [5], "set_f", [9])
        assert not driver.asic.tables["t1"].entries
        assert driver.ops_issued == 0
        assert driver.errors_total == 1
        assert driver.op_errors == {"table_add": 1}

    def test_failed_round_trip_still_costs(self):
        driver = make_driver(transient_plan(max_triggers=1))
        model = driver.model
        start = driver.clock.now
        with pytest.raises(TransientDriverError):
            driver.write_register("wide", 0, 1)
        assert driver.clock.now - start == pytest.approx(
            model.op_prep_us + model.pcie_rtt_us
        )
        assert driver.asic.registers["wide"].read(0) == 0

    def test_retry_policy_recovers(self):
        driver = make_driver(
            transient_plan(max_triggers=2),
            policy=RetryPolicy(max_attempts=4, backoff_base_us=2.0),
        )
        entry = driver.add_entry("t1", [5], "set_f", [9])
        assert driver.asic.tables["t1"].entries[entry].action_args == [9]
        assert driver.retries_total == 2
        assert driver.op_retries == {"table_add": 2}
        assert driver.errors_total == 2
        assert driver.ops_issued == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base_us=2.0, backoff_multiplier=2.0,
            backoff_max_us=3.0, deadline_us=None,
        )
        driver = make_driver(transient_plan(max_triggers=3), policy=policy)
        model = driver.model
        start = driver.clock.now
        driver.write_register("wide", 0, 1)
        elapsed = driver.clock.now - start
        # 3 failed trips + backoffs (2, then 4->capped 3, then 8->3)
        # + 1 successful trip.
        failed = 3 * (model.op_prep_us + model.pcie_rtt_us)
        success = model.op_prep_us + model.pcie_rtt_us + model.register_write_us
        assert elapsed == pytest.approx(failed + (2.0 + 3.0 + 3.0) + success)

    def test_attempt_exhaustion_times_out(self):
        driver = make_driver(
            transient_plan(),  # unbounded: every attempt fails
            policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(DriverTimeoutError):
            driver.write_register("wide", 0, 1)
        assert driver.timeouts_total == 1
        assert driver.errors_total == 3  # one per failed attempt
        assert driver.asic.registers["wide"].read(0) == 0

    def test_deadline_times_out_before_attempts(self):
        policy = RetryPolicy(
            max_attempts=100, backoff_base_us=50.0, backoff_max_us=50.0,
            deadline_us=60.0,
        )
        driver = make_driver(transient_plan(), policy=policy)
        start = driver.clock.now
        with pytest.raises(DriverTimeoutError):
            driver.write_register("wide", 0, 1)
        assert driver.timeouts_total == 1
        # The op gave up within (roughly) its deadline budget.
        assert driver.clock.now - start < 65.0

    def test_op_kind_filter(self):
        driver = make_driver(
            transient_plan(op_kinds=frozenset({"register_write"}))
        )
        driver.add_entry("t1", [5], "set_f", [9])  # unaffected
        with pytest.raises(TransientDriverError):
            driver.write_register("wide", 0, 1)

    def test_window_filter(self):
        driver = make_driver(transient_plan(window_us=(100.0, 200.0)))
        driver.write_register("wide", 0, 1)  # before the window
        driver.clock.advance(150.0)
        with pytest.raises(TransientDriverError):
            driver.write_register("wide", 0, 2)


class TestDropFaults:
    def test_dropped_write_reports_success(self):
        plan = FaultPlan(
            seed=1, specs=[FaultSpec(kind="drop", max_triggers=1)]
        )
        driver = make_driver(plan)
        driver.set_default("t1", "set_f", [3])  # dropped, no exception
        assert driver.asic.tables["t1"].default_action == ("nop", [])
        driver.set_default("t1", "set_f", [3])  # trigger budget spent
        assert driver.asic.tables["t1"].default_action == ("set_f", [3])

    def test_drop_restricted_to_value_writes(self):
        # A drop spec never matches ops with results (reads, adds):
        # losing those silently would be semantically ill-defined.
        plan = FaultPlan(seed=1, specs=[FaultSpec(kind="drop")])
        driver = make_driver(plan)
        entry = driver.add_entry("t1", [5], "set_f", [9])
        assert entry in driver.asic.tables["t1"].entries
        assert driver.read_registers("wide", 0, 0) == [0]
        driver.delete_entry("t1", entry)
        assert not driver.asic.tables["t1"].entries
        assert "table_add" not in DROPPABLE_KINDS
        assert "table_delete" not in DROPPABLE_KINDS

    def test_dropped_register_write(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(kind="drop", targets=frozenset({"wide"}))],
        )
        driver = make_driver(plan)
        driver.write_register("wide", 3, 77)
        assert driver.asic.registers["wide"].read(3) == 0


class TestCorruptFaults:
    def test_register_read_corruption_is_deterministic(self):
        driver = make_driver()
        driver.asic.registers["wide"].write(0, 0x10)
        plan = FaultPlan(
            seed=7,
            specs=[FaultSpec(kind="corrupt", corrupt_mask=0x01,
                             max_triggers=1)],
        )
        replays = []
        for _ in range(2):
            asic = SwitchAsic(parse_p4(PROGRAM))
            asic.registers["wide"].write(0, 0x10)
            fresh = Driver(asic)
            FaultInjector(
                FaultPlan(seed=7, specs=plan.specs)
            ).attach(fresh)
            replays.append(fresh.read_registers("wide", 0, 2))
        assert replays[0] == replays[1]  # same seed, same corruption
        corrupted = replays[0]
        assert corrupted != [0x10, 0, 0]
        assert sum(1 for a, b in zip(corrupted, [0x10, 0, 0]) if a != b) == 1

    def test_device_state_not_corrupted(self):
        plan = FaultPlan(seed=7, specs=[FaultSpec(kind="corrupt")])
        driver = make_driver(plan)
        driver.asic.registers["wide"].write(0, 0x10)
        driver.read_registers("wide", 0, 0)
        # Only the returned payload is corrupted, never the device.
        assert driver.asic.registers["wide"].read(0) == 0x10

    def test_counter_read_corruption(self):
        plan = FaultPlan(
            seed=3,
            specs=[FaultSpec(kind="corrupt", corrupt_mask=0xF0)],
        )
        driver = make_driver(plan)
        assert driver.read_counter("pkts", 0) == 0xF0
        assert "counter_read" in CORRUPTIBLE_KINDS

    def test_corrupt_restricted_to_reads(self):
        plan = FaultPlan(seed=3, specs=[FaultSpec(kind="corrupt")])
        driver = make_driver(plan)
        driver.set_default("t1", "set_f", [3])
        assert driver.asic.tables["t1"].default_action == ("set_f", [3])


class TestLatencyFaults:
    def test_latency_spike_adds_time(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(kind="latency", extra_us=25.0, max_triggers=1)],
        )
        driver = make_driver(plan)
        model = driver.model
        start = driver.clock.now
        driver.write_register("wide", 0, 1)
        slow = driver.clock.now - start
        start = driver.clock.now
        driver.write_register("wide", 1, 1)
        fast = driver.clock.now - start
        assert slow == pytest.approx(fast + 25.0)
        assert driver.asic.registers["wide"].read(0) == 1  # still landed


class TestInjectorBookkeeping:
    def test_events_record_what_fired(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(kind="transient", max_triggers=2)],
        )
        driver = make_driver(plan)
        injector = driver.fault_injector
        for _ in range(2):
            with pytest.raises(TransientDriverError):
                driver.write_register("wide", 0, 1)
        driver.write_register("wide", 0, 1)
        assert injector.triggered == 2
        assert [e.fault_kind for e in injector.events] == ["transient"] * 2
        assert all(e.op_kind == "register_write" for e in injector.events)

    def test_disable_silences_injection(self):
        driver = make_driver(transient_plan())
        driver.fault_injector.enabled = False
        driver.write_register("wide", 0, 1)
        assert driver.asic.registers["wide"].read(0) == 1

    def test_random_plans_are_reproducible(self):
        plan_a = random_fault_plan(42)
        plan_b = random_fault_plan(42)
        assert plan_a.specs == plan_b.specs
        assert plan_a.end_us() > 0
        assert random_fault_plan(43).specs != plan_a.specs

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlin")


class TestReadBackOps:
    def test_read_entries_round_trip(self):
        driver = make_driver()
        a = driver.add_entry("t1", [1], "set_f", [10])
        b = driver.add_entry("t1", [2], "nop", [], priority=3)
        entries = {e[0]: e for e in driver.read_entries("t1")}
        assert entries[a] == (a, (1,), "set_f", [10], 0)
        assert entries[b] == (b, (2,), "nop", [], 3)

    def test_read_default_round_trip(self):
        driver = make_driver()
        assert driver.read_default("t1") == ("nop", [])  # from the P4 source
        driver.set_default("t1", "set_f", [3])
        assert driver.read_default("t1") == ("set_f", [3])

    def test_read_entries_cost_scales(self):
        driver = make_driver()
        start = driver.clock.now
        driver.read_entries("t1")
        empty = driver.clock.now - start
        for key in range(50):
            driver.add_entry("t1", [key], "nop", [])
        start = driver.clock.now
        driver.read_entries("t1")
        full = driver.clock.now - start
        assert full == pytest.approx(
            empty + 50 * driver.model.table_read_per_entry_us
        )

    def test_read_counter_supports_memoization(self):
        driver = make_driver()
        memo = driver.memoize("counter", "pkts")
        start = driver.clock.now
        driver.read_counter("pkts", 0, memo=memo)
        memoized = driver.clock.now - start
        fresh = make_driver()
        start = fresh.clock.now
        fresh.read_counter("pkts", 0)
        plain = fresh.clock.now - start
        assert plain - memoized == pytest.approx(
            driver.model.op_prep_us - driver.model.memoized_prep_us
        )

    def test_counter_memo_mismatch_rejected(self):
        driver = make_driver()
        memo = driver.memoize("register", "wide")
        with pytest.raises(DriverError):
            driver.read_counter("pkts", 0, memo=memo)
