"""Tests for clock, packets, registers, and hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SwitchError
from repro.switch.clock import SimClock
from repro.switch.hashing import (
    ALGORITHMS,
    compute_hash,
    crc16,
    csum16,
    fields_to_bytes,
    xor16,
)
from repro.switch.packet import Packet
from repro.switch.registers import RegisterArray


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)


class TestPacket:
    def test_fields_and_validity(self):
        packet = Packet({"ipv4.srcAddr": 0x0A000001}, ingress_port=3)
        assert packet.get("ipv4.srcAddr") == 0x0A000001
        assert "ipv4" in packet.valid_headers
        assert packet.ingress_port == 3

    def test_unset_fields_read_zero(self):
        assert Packet().get("ghost.field") == 0

    def test_set_with_mask(self):
        packet = Packet()
        packet.set("h.f", 0x1FF, mask=0xFF)
        assert packet.get("h.f") == 0xFF

    def test_drop_and_egress(self):
        packet = Packet()
        packet.egress_spec = 7
        assert packet.egress_spec == 7
        assert not packet.dropped
        packet.mark_dropped()
        assert packet.dropped

    def test_unique_ids(self):
        assert Packet().packet_id != Packet().packet_id


class TestRegisterArray:
    def test_read_write(self):
        reg = RegisterArray("r", width=16, instance_count=4)
        reg.write(2, 0x1234)
        assert reg.read(2) == 0x1234

    def test_width_wrap(self):
        reg = RegisterArray("r", width=8, instance_count=1)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF
        reg.write(0, 0xFF)
        assert reg.increment(0, 2) == 1

    def test_out_of_range(self):
        reg = RegisterArray("r", instance_count=2)
        with pytest.raises(SwitchError):
            reg.read(2)
        with pytest.raises(SwitchError):
            reg.write(-1, 0)

    def test_read_range(self):
        reg = RegisterArray("r", instance_count=8)
        for index in range(8):
            reg.write(index, index * 10)
        assert reg.read_range(2, 4) == [20, 30, 40]
        with pytest.raises(SwitchError):
            reg.read_range(4, 2)

    def test_byte_size(self):
        assert RegisterArray("r", width=32, instance_count=8).byte_size == 32
        assert RegisterArray("r", width=19, instance_count=2).byte_size == 6

    def test_clear(self):
        reg = RegisterArray("r", instance_count=2)
        reg.write(0, 5)
        reg.clear()
        assert reg.read(0) == 0

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0),
    )
    def test_wrap_is_modulo_width(self, width, value):
        reg = RegisterArray("r", width=width, instance_count=1)
        reg.write(0, value)
        assert reg.read(0) == value % (1 << width)


class TestHashing:
    def test_fields_to_bytes_widths(self):
        # 16-bit 0x0102 then 8-bit 0x03
        assert fields_to_bytes([(0x0102, 16), (0x03, 8)]) == b"\x01\x02\x03"

    def test_fields_to_bytes_masks_overflow(self):
        assert fields_to_bytes([(0x1FF, 8)]) == b"\xff"

    def test_crc16_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16(b"123456789") == 0x29B1

    def test_csum16_of_zeros(self):
        assert csum16(b"\x00\x00") == 0xFFFF

    def test_xor16(self):
        assert xor16(b"\x01\x02\x01\x02") == 0

    def test_all_algorithms_deterministic(self):
        values = [(0x0A000001, 32), (80, 16)]
        for name in ALGORITHMS:
            first = compute_hash(name, values, 16)
            assert first == compute_hash(name, values, 16)
            assert 0 <= first < (1 << 16)

    def test_different_inputs_differ(self):
        a = compute_hash("crc16", [(1, 32)], 16)
        b = compute_hash("crc16", [(2, 32)], 16)
        assert a != b

    def test_unknown_algorithm(self):
        with pytest.raises(SwitchError):
            compute_hash("ghost", [(1, 8)], 8)

    @given(st.binary(max_size=64))
    def test_crc16_range(self, data):
        assert 0 <= crc16(data) <= 0xFFFF
