"""Vectorized hash primitives: batch variants must be bit-identical
to the scalar ``ALGORITHMS`` entries, and the table-based
``crc32_lsb`` bit reversal must pin the retired string round-trip.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.switch import hashing
from repro.switch.hashing import (
    ALGORITHMS,
    compute_hash,
    crc32_lsb,
    fields_to_bytes,
    reverse_bits32,
    vector_hash_fn,
)

np = pytest.importorskip("numpy")


def _string_reverse_bits32(value: int) -> int:
    """The retired hot-path implementation (satellite: pinned here so
    the table-based replacement can never drift from it)."""
    return int(f"{value:032b}"[::-1], 2)


def _string_crc32_lsb(data: bytes) -> int:
    return _string_reverse_bits32(zlib.crc32(data[::-1]) & 0xFFFFFFFF)


class TestCrc32LsbReversal:
    """Satellite: table-based reversal == string round-trip."""

    def test_reverse_bits32_matches_string_reversal(self):
        rng = random.Random(0xC3C3)
        values = [0, 1, 0xFFFFFFFF, 0x80000000, 0xA5A5A5A5]
        values += [rng.getrandbits(32) for _ in range(512)]
        for value in values:
            assert reverse_bits32(value) == _string_reverse_bits32(value)

    def test_crc32_lsb_matches_old_implementation(self):
        rng = random.Random(0x1D0)
        for _ in range(256):
            data = bytes(
                rng.getrandbits(8) for _ in range(rng.randrange(0, 24))
            )
            assert crc32_lsb(data) == _string_crc32_lsb(data)


# Width signatures covering the corpus shapes: byte-aligned, sub-byte,
# multi-byte, and mixed field lists.
SIGNATURES = [
    (32,),
    (32, 32),
    (32, 8),
    (16, 16),
    (9, 32),
    (7,),
    (12, 3, 48),
    (8, 8, 8, 8),
]


class TestVectorHashBitIdentity:
    """Tentpole: ``vector_hash_fn`` == scalar per-lane hashing."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("widths", SIGNATURES)
    def test_matches_scalar(self, algorithm: str, widths):
        fn = vector_hash_fn(algorithm, tuple(widths))
        if algorithm == "identity" and sum(
            max(1, (w + 7) // 8) * 8 for w in widths
        ) > 62:
            assert fn is None  # packed value would overflow int64
            return
        assert fn is not None, (algorithm, widths)
        rng = random.Random(hash((algorithm, widths)) & 0xFFFF)
        n = 65
        columns = [
            np.array(
                [rng.getrandbits(width) for _ in range(n)], dtype=np.int64
            )
            for width in widths
        ]
        raw = fn(columns)
        scalar = ALGORITHMS[algorithm]
        for lane in range(n):
            values = [
                (int(columns[i][lane]), width)
                for i, width in enumerate(widths)
            ]
            assert int(raw[lane]) == scalar(fields_to_bytes(values)), (
                algorithm, widths, lane
            )

    @pytest.mark.parametrize("algorithm", ["crc16", "crc32", "crc32_lsb"])
    def test_matches_compute_hash_truncation(self, algorithm: str):
        """End-to-end: truncated like the primitive does it."""
        widths = (32, 16)
        fn = vector_hash_fn(algorithm, widths)
        rng = random.Random(7)
        columns = [
            np.array([rng.getrandbits(w) for _ in range(32)], dtype=np.int64)
            for w in widths
        ]
        out_width = 14
        truncated = fn(columns) & ((1 << out_width) - 1)
        for lane in range(32):
            expected = compute_hash(
                algorithm,
                [(int(columns[i][lane]), w) for i, w in enumerate(widths)],
                out_width,
            )
            assert int(truncated[lane]) == expected

    def test_masks_out_of_range_column_values(self):
        """Columns may carry stale high bits; the vector fn must mask
        to the field width exactly like fields_to_bytes does."""
        fn = vector_hash_fn("crc16", (8,))
        dirty = np.array([0x1FF, 0xFF, 0x100], dtype=np.int64)
        raw = fn([dirty])
        assert int(raw[0]) == ALGORITHMS["crc16"](fields_to_bytes([(0x1FF, 8)]))
        assert int(raw[0]) == int(raw[1])  # 0x1FF & 0xFF == 0xFF
        assert int(raw[2]) == ALGORITHMS["crc16"](bytes([0]))

    def test_unsupported_shapes_return_none(self):
        assert vector_hash_fn("crc16", (63,)) is None
        assert vector_hash_fn("crc16", (0,)) is None
        assert vector_hash_fn("nope", (8,)) is None
        assert vector_hash_fn("identity", (32, 32, 32)) is None  # > 62 bits

    def test_cached_per_signature(self):
        assert vector_hash_fn("crc16", (8, 8)) is vector_hash_fn(
            "crc16", (8, 8)
        )

    def test_numpy_gate(self, monkeypatch):
        monkeypatch.setattr(hashing, "np", None)
        vector_hash_fn.cache_clear()
        try:
            assert vector_hash_fn("crc16", (13, 8)) is None
        finally:
            vector_hash_fn.cache_clear()
