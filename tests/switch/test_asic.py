"""End-to-end ASIC tests: a P4 program processing packets."""

import pytest

from repro.errors import SwitchError
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.packet import Packet

L2_PROGRAM = STANDARD_METADATA_P4 + """
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header ethernet_t ethernet;

register pkt_count { width : 32; instance_count : 32; }

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
    register_write(pkt_count, port, 1);
}

action _drop() { drop(); }

table smac {
    reads { ethernet.srcAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
}

control ingress {
    apply(smac);
}
"""


@pytest.fixture
def asic():
    return SwitchAsic(parse_p4(L2_PROGRAM), num_ports=8)


def eth_packet(src=1, dst=2):
    return Packet({"ethernet.srcAddr": src, "ethernet.dstAddr": dst})


class TestBasicForwarding:
    def test_forward(self, asic):
        asic.tables["smac"].add_entry([1], "forward", [3])
        result = asic.process(eth_packet(src=1))
        assert result is not None
        port, packet = result
        assert port == 3
        assert asic.registers["pkt_count"].read(3) == 1
        assert asic.ports[3].tx_packets == 1

    def test_default_drop(self, asic):
        assert asic.process(eth_packet(src=99)) is None
        assert asic.packets_dropped == 1

    def test_egress_spec_out_of_range(self, asic):
        asic.tables["smac"].add_entry([1], "forward", [200])
        with pytest.raises(SwitchError):
            asic.process(eth_packet(src=1))


class TestStandardMetadata:
    def test_auto_injected_instance(self, asic):
        assert "standard_metadata" in asic.program.headers
        assert "standard_metadata.egress_spec" in asic.field_masks

    def test_queue_depth_visible_in_egress(self):
        program = parse_p4(
            L2_PROGRAM
            + """
register qdepth_seen { width : 19; instance_count : 1; }
action record_depth() {
    register_write(qdepth_seen, 0, standard_metadata.deq_qdepth);
}
table depth_recorder {
    actions { record_depth; }
    default_action : record_depth();
}
control egress {
    apply(depth_recorder);
}
"""
        )
        asic = SwitchAsic(program, num_ports=8)
        asic.tables["smac"].add_entry([1], "forward", [5])
        asic.ports[5].queue_depth = 17
        asic.process(eth_packet(src=1))
        assert asic.registers["qdepth_seen"].read(0) == 17

    def test_timestamps_advance_with_clock(self, asic):
        asic.tables["smac"].add_entry([1], "forward", [0])
        asic.clock.advance(123.0)
        _, packet = asic.process(eth_packet(src=1))
        assert packet.get("standard_metadata.ingress_global_timestamp") == 123


class TestControlFlowAndArithmetic:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type num_t { fields { a : 16; b : 16; c : 16; } }
header num_t num;

action compute() {
    add(num.c, num.a, num.b);
    shift_left(num.a, num.a, 2);
}
action saturate() { modify_field(num.c, 0xffff); }
table math {
    actions { compute; }
    default_action : compute();
}
table cap {
    actions { saturate; }
    default_action : saturate();
}
control ingress {
    apply(math);
    if (num.c > 100) {
        apply(cap);
    }
}
"""

    def test_arithmetic_wraps_at_field_width(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        _, packet = asic.process(Packet({"num.a": 0xFFFF, "num.b": 2}))
        # 0xFFFF + 2 wraps to 1 at 16 bits -> condition false.
        assert packet.get("num.c") == 1
        assert packet.get("num.a") == 0xFFFC  # shifted, masked

    def test_conditional_applies_table(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        _, packet = asic.process(Packet({"num.a": 100, "num.b": 100}))
        assert packet.get("num.c") == 0xFFFF


class TestSteppedExecution:
    def test_yields_before_each_apply(self, asic):
        asic.tables["smac"].add_entry([1], "forward", [3])
        packet = eth_packet(src=1)
        steps = list(asic.process_stepped(packet))
        assert ("apply", "smac") in steps

    def test_mid_packet_mutation_visible_without_mantis(self, asic):
        """Demonstrates the torn-config hazard Mantis's init-table
        design eliminates: a naive program sees mid-packet updates."""
        asic.tables["smac"].add_entry([1], "forward", [3])
        packet = eth_packet(src=1)
        stepper = asic.process_stepped(packet)
        step = next(stepper)
        assert step == ("apply", "smac")
        # Control plane changes the entry between the yield and the apply.
        entry = asic.tables["smac"].find_entry([1])
        asic.tables["smac"].modify_entry(entry.entry_id, action_args=[7])
        for _ in stepper:
            pass
        assert packet.fields["standard_metadata.egress_port"] == 7


class TestRecirculation:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { passes : 8; } }
header h_t hdr;

action bounce() {
    add_to_field(hdr.passes, 1);
    recirculate();
    modify_field(standard_metadata.egress_spec, 1);
}
action done() {
    modify_field(standard_metadata.egress_spec, 2);
}
table pingpong {
    reads { hdr.passes : exact; }
    actions { bounce; done; }
    default_action : done();
}
control ingress { apply(pingpong); }
"""

    def test_recirculates_until_done(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        table = asic.tables["pingpong"]
        table.add_entry([0], "bounce")
        table.add_entry([1], "bounce")
        port, packet = asic.process(Packet({"hdr.passes": 0}))
        assert packet.get("hdr.passes") == 2
        assert port == 2

    def test_recirculation_bounded(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        asic.tables["pingpong"].set_default("bounce", [])
        port, packet = asic.process(Packet({"hdr.passes": 0}))
        # Capped: the packet exits after MAX_RECIRCULATIONS + 1 passes.
        assert packet.get("hdr.passes") == 5


class TestHashPrimitive:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type meta_t { fields { bucket : 16; } }
metadata meta_t meta;

field_list flow_fl { ipv4.srcAddr; ipv4.dstAddr; }
field_list_calculation flow_hash {
    input { flow_fl; }
    algorithm : crc16;
    output_width : 16;
}
action pick() {
    modify_field_with_hash_based_offset(meta.bucket, 0, flow_hash, 8);
}
table ecmp { actions { pick; } default_action : pick(); }
control ingress { apply(ecmp); }
"""

    def test_hash_bucket_stable_and_bounded(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        _, first = asic.process(Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 2}))
        _, second = asic.process(Packet({"ipv4.srcAddr": 1, "ipv4.dstAddr": 2}))
        assert first.get("meta.bucket") == second.get("meta.bucket")
        assert 0 <= first.get("meta.bucket") < 8

    def test_hash_spreads_flows(self):
        asic = SwitchAsic(parse_p4(self.PROGRAM))
        buckets = set()
        for src in range(64):
            _, packet = asic.process(
                Packet({"ipv4.srcAddr": src, "ipv4.dstAddr": 9})
            )
            buckets.add(packet.get("meta.bucket"))
        assert len(buckets) >= 4  # crc16 spreads 64 flows across >= half


def test_malleable_in_loaded_program_rejected():
    from repro.p4r.parser import parse_p4r

    program = parse_p4r(
        STANDARD_METADATA_P4
        + """
header_type h_t { fields { f : 16; } }
header h_t hdr;
malleable value v { width : 16; init : 0; }
action bad() { modify_field(hdr.f, ${v}); }
table t { actions { bad; } default_action : bad(); }
control ingress { apply(t); }
"""
    )
    with pytest.raises(Exception):
        SwitchAsic(program)
