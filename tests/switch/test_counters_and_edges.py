"""Additional switch coverage: counters, masked malleable reads, and
edge behaviours of the pipeline."""

import pytest

from repro.errors import SwitchError
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.packet import Packet

COUNTER_PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; } }
header ipv4_t ipv4;

counter pkt_counter { type : packets; instance_count : 4; }
counter byte_counter { type : bytes; instance_count : 4; }

action tally() {
    count(pkt_counter, 1);
    count(byte_counter, 1);
}
table t { actions { tally; } default_action : tally(); }
control ingress { apply(t); }
"""


class TestCounters:
    def test_packet_and_byte_modes(self):
        asic = SwitchAsic(parse_p4(COUNTER_PROGRAM))
        asic.process(Packet({"ipv4.srcAddr": 1}, size_bytes=700))
        asic.process(Packet({"ipv4.srcAddr": 2}, size_bytes=300))
        assert asic.counters["pkt_counter"].array.read(1) == 2
        assert asic.counters["byte_counter"].array.read(1) == 1000

    def test_unknown_counter_raises(self):
        asic = SwitchAsic(parse_p4(COUNTER_PROGRAM))
        with pytest.raises(SwitchError):
            asic.get_counter("ghost")

    def test_driver_reads_counters(self):
        from repro.switch.driver import Driver

        asic = SwitchAsic(parse_p4(COUNTER_PROGRAM))
        driver = Driver(asic)
        asic.process(Packet({"ipv4.srcAddr": 1}))
        assert driver.read_counter("pkt_counter", 1) == 1


class TestMaskedMalleableReads:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 32; b : 32; out : 16; } }
header h_t hdr;
malleable field sel {
    width : 32; init : hdr.a;
    alts { hdr.a, hdr.b }
}
action hit() { modify_field(hdr.out, 1); }
action nop() { no_op(); }
table t {
    reads { ${sel} mask 0xff : ternary; }
    actions { hit; nop; }
    default_action : nop();
}
control ingress { apply(t); }
"""

    def test_mask_survives_expansion(self):
        from repro.compiler import compile_p4r

        artifacts = compile_p4r(self.PROGRAM)
        table = artifacts.p4.tables["t"]
        masked = [r for r in table.reads if r.mask == 0xFF]
        assert len(masked) == 2  # one per alternative

    def test_masked_match_at_runtime(self):
        from repro.system import MantisSystem

        system = MantisSystem.from_source(self.PROGRAM)
        system.agent.prologue()
        system.agent.table("t").add([(0x34, 0xFF)], "hit")
        system.agent.run_iteration()
        packet = Packet({"hdr.a": 0x1234, "hdr.b": 0})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 1


class TestPipelineEdges:
    def test_drop_in_ingress_skips_egress(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 8; } }
header h_t hdr;
register egress_ran { width : 8; instance_count : 1; }
action kill() { drop(); }
action mark() { register_write(egress_ran, 0, 1); }
table t { actions { kill; } default_action : kill(); }
table e { actions { mark; } default_action : mark(); }
control ingress { apply(t); }
control egress { apply(e); }
""")
        asic = SwitchAsic(program)
        assert asic.process(Packet({"hdr.f": 1})) is None
        assert asic.registers["egress_ran"].read(0) == 0

    def test_if_condition_stops_after_drop(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 8; g : 8; } }
header h_t hdr;
action kill() { drop(); }
action setg() { modify_field(hdr.g, 9); }
table t1 { actions { kill; } default_action : kill(); }
table t2 { actions { setg; } default_action : setg(); }
control ingress {
    apply(t1);
    if (hdr.f == 0) {
        apply(t2);
    }
}
""")
        asic = SwitchAsic(program)
        packet = Packet({"hdr.f": 0})
        asic.process(packet)
        assert packet.get("hdr.g") == 0  # t2 never ran

    def test_clone_flag_set(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 8; } }
header h_t hdr;
action mirror_it() { clone_ingress_pkt_to_egress(); }
table t { actions { mirror_it; } default_action : mirror_it(); }
control ingress { apply(t); }
""")
        asic = SwitchAsic(program)
        _, packet = asic.process(Packet({"hdr.f": 1}))
        assert packet.fields["standard_metadata.clone_flag"] == 1

    def test_rng_uniform_within_bounds(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { r : 16; } }
header h_t hdr;
action roll() { modify_field_rng_uniform(hdr.r, 10, 20); }
table t { actions { roll; } default_action : roll(); }
control ingress { apply(t); }
""")
        asic = SwitchAsic(program, seed=3)
        values = set()
        for _ in range(50):
            _, packet = asic.process(Packet({"hdr.r": 0}))
            values.add(packet.get("hdr.r"))
        assert all(10 <= v <= 20 for v in values)
        assert len(values) > 3  # actually random

    def test_pipeline_pass_accounting(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 8; } }
header h_t hdr;
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }
""")
        asic = SwitchAsic(program)
        for _ in range(5):
            asic.process(Packet({"hdr.f": 1}))
        assert asic.pipeline_passes == 5
        assert asic.packets_processed == 5
