"""Columnar (struct-of-arrays) engine: vectorized must be invisible.

``ColumnarPipeline`` executes bursts as numpy array sweeps; these
tests require the result to be bit-identical to the scalar engines --
egress sequences, field maps, registers, counters, table statistics,
and port counters -- across the full use-case corpus, the pool-backed
``process_batch_columnar`` entry, forced fallbacks (recirculation,
RNG, overlapping register footprints), randomized mixed bursts, and
the batch-stats accounting invariant on error paths (satellite 6).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_batch import (  # noqa: E402  (corpus helpers)
    APPS,
    SHARED_REG_P4R,
    _build,
    _observable,
    _run_batch,
    _run_scalar,
)

from repro.errors import SwitchError
from repro.switch import columnar
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.columnar import ColumnarPipeline, ColumnarPool
from repro.switch.compiled import asic_state_snapshot
from repro.switch.packet import Packet, PacketTemplate
from repro.system import MantisSystem

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

pytestmark = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="columnar engine requires numpy"
)


def _run_batch_nosink(system, workload, batch_size: int) -> List[object]:
    """Like test_batch._run_batch but without a sink, so the columnar
    engine keeps the vectorized traffic-manager tail."""
    observed: List[object] = []
    for start in range(0, len(workload), batch_size):
        chunk = [
            Packet(fields, size_bytes=1000)
            for fields in workload[start:start + batch_size]
        ]
        observed.extend(
            _observable(r) for r in system.asic.process_batch(chunk)
        )
    return observed


def _assert_same_state(reference, candidate) -> None:
    state_ref = asic_state_snapshot(reference.asic)
    state_new = asic_state_snapshot(candidate.asic)
    for section in state_ref:
        assert state_new[section] == state_ref[section], section


class TestColumnarEquivalence:
    """Tentpole: columnar == compiled == interpreter on every program."""

    N_PACKETS = 96

    @pytest.mark.parametrize("name", sorted(APPS))
    @pytest.mark.parametrize("batch_size", [1, 7, 32])
    def test_matches_compiled_with_sink(self, name: str, batch_size: int):
        """A sink forces the scalar tail; vectorized ingress sweeps
        still run above it."""
        workload = APPS[name][2](self.N_PACKETS)
        compiled = _build(name, "compiled")
        compiled_obs = _run_batch(compiled, workload, batch_size)
        col = _build(name, "columnar")
        col_obs = _run_batch(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)

    @pytest.mark.parametrize("name", sorted(APPS))
    @pytest.mark.parametrize("batch_size", [1, 7, 32])
    def test_matches_compiled_vectorized_tail(
        self, name: str, batch_size: int
    ):
        workload = APPS[name][2](self.N_PACKETS)
        compiled = _build(name, "compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size)
        col = _build(name, "columnar")
        col_obs = _run_batch_nosink(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)

    @pytest.mark.parametrize("name", ["dos", "ecmp", "recirc"])
    def test_matches_interpreter(self, name: str):
        workload = APPS[name][2](48)
        interp = _build(name, "interpreter")
        interp_obs = _run_scalar(interp, workload)
        col = _build(name, "columnar")
        col_obs = _run_batch_nosink(col, workload, batch_size=16)
        assert col_obs == interp_obs
        _assert_same_state(interp, col)

    def test_dos_batch_counts_as_columnar(self):
        system = _build("dos", "columnar")
        assert isinstance(system.asic.executor, ColumnarPipeline)
        assert system.asic.executor.columnar_ops("ingress") is not None
        _run_batch_nosink(system, APPS["dos"][2](64), batch_size=32)
        stats = system.asic.batch_stats
        assert stats.columnar == 64
        assert stats.columnar_fallback == 0
        assert stats.packets == stats.fused + stats.slow_path


class TestColumnarPoolPath:
    """process_batch_columnar over a ColumnarPool: no Packet
    materialization, same observable switch state."""

    def test_pool_matches_packet_batches(self):
        workload = APPS["dos"][2](128)
        compiled = _build("dos", "compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size=32)
        col = _build("dos", "columnar")
        templates = [
            PacketTemplate(fields, size_bytes=1000) for fields in workload
        ]
        pool = ColumnarPool(templates)
        ports: List[int] = []
        delivered = dropped = 0
        for start in range(0, len(templates), 32):
            result = col.asic.process_batch_columnar(
                pool.batch(start, start + 32)
            )
            ports.extend(int(p) for p in result.ports)
            delivered += result.delivered
            dropped += result.dropped
        expected_ports = [
            -1 if obs is None else obs[0] for obs in compiled_obs
        ]
        assert ports == expected_ports
        assert delivered == sum(1 for o in compiled_obs if o is not None)
        assert dropped == sum(1 for o in compiled_obs if o is None)
        _assert_same_state(compiled, col)

    def test_pool_entry_requires_columnar_plans(self):
        compiled = _build("dos", "compiled")
        templates = [PacketTemplate({"ipv4.srcAddr": 1})]
        pool = ColumnarPool(templates)
        with pytest.raises(SwitchError):
            compiled.asic.process_batch_columnar(pool.batch(0, 1))


RNG_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { roll : 16; } }
header h_t hdr;

action sample() {
    modify_field_rng_uniform(hdr.roll, 0, 1023);
    modify_field(standard_metadata.egress_spec, 1);
}
table sampler { actions { sample; } default_action : sample(); }
control ingress { apply(sampler); }
"""


class TestForcedFallbacks:
    """Non-vectorizable shapes must drain scalar, never diverge."""

    def _diff(self, source: str, workload, batch_size: int = 16):
        kwargs = dict(num_ports=8)
        compiled = MantisSystem.from_source(
            source, execution_mode="compiled", **kwargs
        )
        compiled.agent.prologue()
        col = MantisSystem.from_source(
            source, execution_mode="columnar", **kwargs
        )
        col.agent.prologue()
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size)
        col_obs = _run_batch_nosink(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        return col

    def test_rng_action_drains_per_lane(self):
        """Both engines seed random.Random(0), so the per-lane drain
        must consume the stream in exactly the scalar order."""
        workload = [{"hdr.roll": 0} for _ in range(48)]
        col = self._diff(RNG_P4R, workload)
        counts = col.asic.executor.fallback_counts
        assert counts.get("drain:sampler") == 48
        stats = col.asic.batch_stats
        assert stats.columnar == 48
        assert stats.columnar_fallback == 48
        assert stats.packets == stats.fused + stats.slow_path

    def test_overlapping_footprints_disable_columnar(self):
        """Two tables RMW-ing one register: op-major inadmissible, so
        no columnar plans; the generic batch path takes over."""
        workload = [{"hdr.f": 0} for _ in range(24)]
        col = self._diff(SHARED_REG_P4R, workload)
        assert col.asic.executor.columnar_ops("ingress") is None
        assert col.asic.batch_stats.columnar == 0

    def test_recirculating_program_stays_scalar(self):
        workload = APPS["recirc"][2](32)
        compiled = _build("recirc", "compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size=8)
        col = _build("recirc", "columnar")
        col_obs = _run_batch_nosink(col, workload, batch_size=8)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        assert col.asic.executor.columnar_ops("ingress") is None

    def test_ecmp_burst_fully_vectorized(self):
        """ecmp's hash action used to drain per lane; the vectorized
        crc16 lowering now keeps the whole burst columnar."""
        workload = APPS["ecmp"][2](60)
        compiled = _build("ecmp", "compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size=20)
        col = _build("ecmp", "columnar")
        col_obs = _run_batch_nosink(col, workload, batch_size=20)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        assert not col.asic.executor.fallback_counts
        stats = col.asic.batch_stats
        assert stats.packets == stats.fused + stats.slow_path


class TestRandomizedDifferential:
    """Hypothesis: arbitrary field mixes and batch splits through the
    DoS pipeline agree with the compiled engine, state included."""

    @settings(max_examples=25, deadline=None)
    @given(
        seeds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),  # srcAddr
                st.integers(min_value=0, max_value=2**32 - 1),  # dstAddr
                st.integers(min_value=0, max_value=255),        # proto
            ),
            min_size=1,
            max_size=40,
        ),
        batch_size=st.integers(min_value=1, max_value=17),
        route_victim=st.booleans(),
    )
    def test_dos_random_workloads(self, seeds, batch_size, route_victim):
        workload = [
            {"ipv4.srcAddr": src, "ipv4.dstAddr": dst, "ipv4.proto": proto,
             "tcp.seq": i}
            for i, (src, dst, proto) in enumerate(seeds)
        ]
        if route_victim and workload:
            workload[0]["ipv4.dstAddr"] = 0x0B000001
        compiled = _build("dos", "compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size)
        col = _build("dos", "columnar")
        col_obs = _run_batch_nosink(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        stats = col.asic.batch_stats
        assert stats.packets == stats.fused + stats.slow_path


class TestRotatedHashRandomized:
    """Hypothesis: ECMP traffic with the malleable hash inputs rotated
    between batches -- the vectorized crc16 must track every staged
    alt configuration exactly like the compiled engine."""

    @settings(max_examples=15, deadline=None)
    @given(
        flows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),  # srcAddr
                st.integers(min_value=0, max_value=2**32 - 1),  # dstAddr
                st.integers(min_value=0, max_value=255),        # proto
                st.integers(min_value=0, max_value=2**16 - 1),  # sport
                st.integers(min_value=0, max_value=2**16 - 1),  # dport
            ),
            min_size=1,
            max_size=48,
        ),
        rotations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # hash_in1 alt
                st.integers(min_value=0, max_value=2),  # hash_in2 alt
            ),
            min_size=1,
            max_size=3,
        ),
        batch_size=st.integers(min_value=1, max_value=19),
    )
    def test_ecmp_rotated_inputs(self, flows, rotations, batch_size):
        workload = [
            {"ipv4.srcAddr": src, "ipv4.dstAddr": dst, "ipv4.proto": proto,
             "l4.sport": sport, "l4.dport": dport}
            for src, dst, proto, sport, dport in flows
        ]

        def run(mode):
            system = _build("ecmp", mode)
            observed: List[object] = []
            for index, (alt1, alt2) in enumerate(rotations):
                system.agent.write_malleable("hash_in1", alt1)
                system.agent.write_malleable("hash_in2", alt2)
                system.agent.run_iteration()  # vv flip commits the alts
                observed.append(
                    _run_batch_nosink(system, workload, batch_size)
                )
            return system, observed

        compiled, compiled_obs = run("compiled")
        col, col_obs = run("columnar")
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        assert not col.asic.executor.fallback_counts


class TestEngineSelection:
    """MANTIS_PIPELINE=columnar and the numpy fail-fast (satellite 1)."""

    def test_env_selects_columnar(self, monkeypatch):
        monkeypatch.setenv("MANTIS_PIPELINE", "columnar")
        system = MantisSystem.from_source(APPS["dos"][0], num_ports=8)
        assert isinstance(system.asic.executor, ColumnarPipeline)

    def test_missing_numpy_fails_fast(self, monkeypatch):
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        with pytest.raises(SwitchError, match="requires numpy"):
            MantisSystem.from_source(
                APPS["dos"][0], num_ports=8, execution_mode="columnar"
            )

    def test_profiling_disables_columnar_plans_not_correctness(self):
        workload = APPS["dos"][2](36)
        plain = _build("dos", "columnar")
        plain_obs = _run_batch_nosink(plain, workload, batch_size=12)
        profiled = _build("dos", "columnar")
        profile = profiled.asic.enable_profiling()
        assert isinstance(profiled.asic.executor, ColumnarPipeline)
        assert profiled.asic.executor.columnar_ops("ingress") is None
        profiled_obs = _run_batch_nosink(profiled, workload, batch_size=12)
        assert profiled_obs == plain_obs
        _assert_same_state(plain, profiled)
        assert profile.snapshot()["control_runs"]["ingress"] == 36
        assert profiled.asic.batch_stats.columnar == 0


class TestNetworkSimBurst:
    """The fabric's burst path on the columnar engine: coalesced
    sends agree with the compiled engine packet-for-packet."""

    @staticmethod
    def _run(execution_mode: str):
        from repro.apps.dos import DOS_P4R
        from repro.net.hosts import SinkHost, UdpSender
        from repro.net.sim import NetworkSim, PortConfig

        system = MantisSystem.from_source(
            DOS_P4R, num_ports=8, execution_mode=execution_mode
        )
        system.agent.prologue()
        system.driver.add_entry("route", [0x0A00FFFF], "forward", [1])
        sim = NetworkSim(system)
        sim.configure_port(
            1, PortConfig(bandwidth_gbps=2.0, queue_capacity_pkts=8)
        )
        sink = SinkHost("victim")
        sim.attach_host(sink, 1)
        sender = UdpSender(
            "src",
            {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": 0x0A00FFFF},
            rate_gbps=8.0,
            burst_size=16,
        )
        sim.attach_host(sender, 2)
        sender.start(at_us=1.0)
        sim.run_until(360.25, agent=False)
        sender.stop()
        sim.run_until(460.0, agent=False)
        return system, sim, sink

    def test_columnar_burst_matches_compiled(self):
        ref_system, ref_sim, ref_sink = self._run("compiled")
        system, sim, sink = self._run("columnar")
        assert sink.rx_packets == ref_sink.rx_packets
        assert sink.windows == ref_sink.windows
        assert sim.delivered == ref_sim.delivered
        assert sim.switch_drops == ref_sim.switch_drops
        state = asic_state_snapshot(system.asic)
        ref_state = asic_state_snapshot(ref_system.asic)
        for section in state:
            assert state[section] == ref_state[section], section
        stats = system.asic.batch_stats
        assert stats.packets == stats.fused + stats.slow_path
        assert stats.columnar > 0  # vectorized ingress above the sink


class TestVectorizedAdmission:
    """The hash / masked-select / dynamic-index lowerings must admit
    every vectorizable corpus app with zero runtime fallbacks."""

    VECTORIZABLE = ("dos", "ecmp", "failover", "sketch", "rl")

    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_zero_fallbacks(self, name: str):
        col = _build(name, "columnar")
        assert col.asic.executor.columnar_ops("ingress") is not None
        _run_batch_nosink(col, APPS[name][2](96), batch_size=32)
        assert not col.asic.executor.fallback_counts, (
            name, dict(col.asic.executor.fallback_counts)
        )
        stats = col.asic.batch_stats
        assert stats.columnar == 96
        assert stats.columnar_fallback == 0

    @pytest.mark.parametrize("name", ["ecmp", "rl"])
    def test_egress_plan_admits(self, name: str):
        """ecmp's dynamic-index egress counter and rl's queue-depth
        conditional both lower into vectorized egress sweeps."""
        col = _build(name, "columnar")
        assert col.asic.executor.columnar_ops("egress") is not None


COND_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 16; g : 16; } }
header h_t hdr;
action to_a() { modify_field(standard_metadata.egress_spec, 1); }
action to_b() { modify_field(standard_metadata.egress_spec, 2); }
table ta { actions { to_a; } default_action : to_a(); }
table tb { actions { to_b; } default_action : to_b(); }
control ingress {
    if (hdr.f > 100) { apply(ta); } else { apply(tb); }
}
"""

COND_NESTED_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 16; g : 16; } }
header h_t hdr;
action to_a() { modify_field(standard_metadata.egress_spec, 1); }
action to_b() { modify_field(standard_metadata.egress_spec, 2); }
table ta { actions { to_a; } default_action : to_a(); }
table tb { actions { to_b; } default_action : to_b(); }
control ingress {
    if (hdr.f > 100) {
        if (hdr.g == 7) { apply(ta); } else { apply(tb); }
    } else { apply(tb); }
}
"""


class TestMaskedSelectConditional:
    """Control-level if/if-else lowers to lane-masked sweeps."""

    def _workload(self, n: int):
        return [{"hdr.f": (i * 37) % 256, "hdr.g": i % 9} for i in range(n)]

    @pytest.mark.parametrize("batch_size", [1, 9, 32])
    def test_if_else_matches_compiled(self, batch_size: int):
        workload = self._workload(64)
        compiled = MantisSystem.from_source(
            COND_P4R, num_ports=8, execution_mode="compiled"
        )
        compiled.agent.prologue()
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size)
        col = MantisSystem.from_source(
            COND_P4R, num_ports=8, execution_mode="columnar"
        )
        col.agent.prologue()
        assert col.asic.executor.columnar_ops("ingress") is not None
        col_obs = _run_batch_nosink(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        assert not col.asic.executor.fallback_counts
        # Both arms actually fire in this workload.
        ports = {obs[0] for obs in col_obs if obs is not None}
        assert ports == {1, 2}

    def test_nested_if_stays_scalar_but_agrees(self):
        """Deeper nesting is outside the masked-select lowering: the
        program must downgrade to a scalar path, never diverge."""
        workload = self._workload(40)
        compiled = MantisSystem.from_source(
            COND_NESTED_P4R, num_ports=8, execution_mode="compiled"
        )
        compiled.agent.prologue()
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size=10)
        col = MantisSystem.from_source(
            COND_NESTED_P4R, num_ports=8, execution_mode="columnar"
        )
        col.agent.prologue()
        assert col.asic.executor.columnar_ops("ingress") is None
        col_obs = _run_batch_nosink(col, workload, batch_size=10)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)


BOUNCE_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { hops : 8; } }
header h_t hdr;
action bounce() {
    add_to_field(hdr.hops, 1);
    modify_field(standard_metadata.egress_spec, 1);
    recirculate();
}
action finish() { modify_field(standard_metadata.egress_spec, 3); }
action fling() { modify_field(standard_metadata.egress_spec, 200); }
table hopper {
    reads { hdr.hops : exact; }
    actions { bounce; finish; fling; }
    default_action : finish();
}
control ingress { apply(hopper); }
"""


def _bounce_build(mode: str, bounce_until: int = 2):
    system = MantisSystem.from_source(
        BOUNCE_P4R, num_ports=8, execution_mode=mode
    )
    system.agent.prologue()
    for hops in range(bounce_until):
        system.driver.add_entry("hopper", [hops], "bounce", [])
    return system


class TestColumnarRecirculation:
    """Tentpole: recirculate-flagged lanes re-run as a compacted
    sub-batch instead of draining per lane."""

    def _workload(self, n: int):
        return [{"hdr.hops": i % 2, "ipv4.srcAddr": i} for i in range(n)]

    @pytest.mark.parametrize("batch_size", [1, 7, 24])
    def test_stateless_bounce_matches_compiled(self, batch_size: int):
        workload = self._workload(48)
        compiled = _bounce_build("compiled")
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size)
        col = _bounce_build("columnar")
        assert col.asic.executor.columnar_ops("ingress") is not None
        col_obs = _run_batch_nosink(col, workload, batch_size)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        # Columnar recirculation never takes the per-lane drain, so no
        # "recirc" fallback is recorded.
        assert not col.asic.executor.fallback_counts
        stats = col.asic.batch_stats
        ref = compiled.asic.batch_stats
        assert stats.packets == stats.fused + stats.slow_path
        assert (stats.packets, stats.columnar) == (48, 48)
        assert col.asic.pipeline_passes == compiled.asic.pipeline_passes

    def test_budget_exhaustion_matches_compiled(self):
        """Every pass re-bounces: the budget runs out and the packet
        delivers from its final pass with the flag cleared -- same as
        the scalar loop."""
        workload = self._workload(16)
        compiled = _bounce_build("compiled", bounce_until=16)
        compiled_obs = _run_batch_nosink(compiled, workload, batch_size=8)
        col = _bounce_build("columnar", bounce_until=16)
        col_obs = _run_batch_nosink(col, workload, batch_size=8)
        assert col_obs == compiled_obs
        _assert_same_state(compiled, col)
        assert col.asic.pipeline_passes == compiled.asic.pipeline_passes
        for obs in col_obs:
            assert obs is not None
            port, fields, _headers = obs
            assert port == 1  # bounce's egress_spec
            assert fields["standard_metadata.recirculate_flag"] == 0

    def test_oor_spec_mid_recirc_raises_in_both_engines(self):
        """A lane that recirculates into an out-of-range egress_spec
        falls to the scalar continuation and raises exactly like the
        compiled loop; the stats invariant survives."""
        workload = [{"hdr.hops": 0, "ipv4.srcAddr": i} for i in range(12)]
        for mode in ("compiled", "columnar"):
            system = MantisSystem.from_source(
                BOUNCE_P4R, num_ports=8, execution_mode=mode
            )
            system.agent.prologue()
            system.driver.add_entry("hopper", [0], "bounce", [])
            system.driver.add_entry("hopper", [1], "fling", [])
            with pytest.raises(SwitchError, match="egress_spec"):
                _run_batch_nosink(system, workload, batch_size=12)
            stats = system.asic.batch_stats
            assert stats.packets == stats.fused + stats.slow_path


OOR_SPEC_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;

action widecast() { modify_field(standard_metadata.egress_spec, 200); }
table blast { actions { widecast; } default_action : widecast(); }
control ingress { apply(blast); }
"""


class TestBatchStatsErrorAccounting:
    """Satellite 6: a SwitchError mid-batch must leave
    ``packets == fused + slow_path`` (every packet bucketed once)."""

    @pytest.mark.parametrize("mode", ["compiled", "columnar"])
    def test_oor_egress_spec_keeps_invariant(self, mode: str):
        system = MantisSystem.from_source(
            OOR_SPEC_P4R, num_ports=8, execution_mode=mode
        )
        system.agent.prologue()
        packets = [Packet({"hdr.f": i}) for i in range(10)]
        with pytest.raises(SwitchError, match="egress_spec"):
            system.asic.process_batch(packets)
        stats = system.asic.batch_stats
        assert stats.packets == 10
        assert stats.packets == stats.fused + stats.slow_path

    @pytest.mark.parametrize("mode", ["compiled", "columnar"])
    def test_oor_egress_spec_with_sink_keeps_invariant(self, mode: str):
        system = MantisSystem.from_source(
            OOR_SPEC_P4R, num_ports=8, execution_mode=mode
        )
        system.agent.prologue()
        packets = [Packet({"hdr.f": i}) for i in range(6)]
        with pytest.raises(SwitchError, match="egress_spec"):
            system.asic.process_batch(packets, sink=lambda i, r: None)
        stats = system.asic.batch_stats
        assert stats.packets == 6
        assert stats.packets == stats.fused + stats.slow_path
