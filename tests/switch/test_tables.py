"""Match-action table runtime tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.packet import Packet
from repro.switch.tables import TableRuntime


def make_table(reads, actions=("act", "other"), size=None):
    decl = ast.TableDecl(
        "t",
        reads=reads,
        action_names=list(actions),
        default_action=("other", []),
        size=size,
    )
    widths = [
        1 if r.match_type is ast.MatchType.VALID else 32 for r in reads
    ]
    return TableRuntime(decl, widths)


def exact_read(name="h.f"):
    header, field = name.split(".")
    return ast.TableRead(ast.FieldRef(header, field), ast.MatchType.EXACT)


def ternary_read(name="h.f"):
    header, field = name.split(".")
    return ast.TableRead(ast.FieldRef(header, field), ast.MatchType.TERNARY)


class TestExactMatch:
    def test_hit_and_miss(self):
        table = make_table([exact_read()])
        table.add_entry([5], "act", [42])
        assert table.lookup(Packet({"h.f": 5})) == ("act", [42])
        # Miss falls through to the default action.
        assert table.lookup(Packet({"h.f": 6})) == ("other", [])
        assert table.hits == 1 and table.misses == 1

    def test_multi_field_key(self):
        table = make_table([exact_read("h.a"), exact_read("h.b")])
        table.add_entry([1, 2], "act", [7])
        assert table.lookup(Packet({"h.a": 1, "h.b": 2})) == ("act", [7])
        assert table.lookup(Packet({"h.a": 2, "h.b": 1})) == ("other", [])

    def test_arity_checked(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([1, 2], "act")

    def test_exact_key_must_be_int(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([(1, 2)], "act")

    def test_unknown_action_rejected(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([1], "ghost")

    def test_size_limit(self):
        table = make_table([exact_read()], size=1)
        table.add_entry([1], "act")
        with pytest.raises(SwitchError):
            table.add_entry([2], "act")


class TestTernaryMatch:
    def test_mask_semantics(self):
        table = make_table([ternary_read()])
        table.add_entry([(0x0A000000, 0xFF000000)], "act", [1])
        assert table.lookup(Packet({"h.f": 0x0A123456})) == ("act", [1])
        assert table.lookup(Packet({"h.f": 0x0B123456})) == ("other", [])

    def test_wildcard_mask_zero(self):
        table = make_table([ternary_read()])
        table.add_entry([(0, 0)], "act", [9])
        assert table.lookup(Packet({"h.f": 12345})) == ("act", [9])

    def test_priority_breaks_overlap(self):
        table = make_table([ternary_read()])
        table.add_entry([(0, 0)], "act", [1], priority=0)
        table.add_entry([(5, 0xFFFFFFFF)], "act", [2], priority=10)
        assert table.lookup(Packet({"h.f": 5})) == ("act", [2])
        assert table.lookup(Packet({"h.f": 6})) == ("act", [1])


class TestLpmMatch:
    def test_longest_prefix_wins(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.LPM)
        table = make_table([read])
        table.add_entry([(0x0A000000, 8)], "act", [8])
        table.add_entry([(0x0A0A0000, 16)], "act", [16])
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("act", [16])
        assert table.lookup(Packet({"h.f": 0x0A0B0101})) == ("act", [8])

    def test_zero_prefix_matches_all(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.LPM)
        table = make_table([read])
        table.add_entry([(0, 0)], "act", [0])
        assert table.lookup(Packet({"h.f": 99})) == ("act", [0])


class TestRangeAndValid:
    def test_range(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.RANGE)
        table = make_table([read])
        table.add_entry([(10, 20)], "act", [1])
        assert table.lookup(Packet({"h.f": 15})) == ("act", [1])
        assert table.lookup(Packet({"h.f": 21})) == ("other", [])

    def test_valid(self):
        read = ast.TableRead(ast.ValidRef("ipv4"), ast.MatchType.VALID)
        table = make_table([read])
        table.add_entry([True], "act", [1])
        assert table.lookup(Packet({"ipv4.ttl": 64})) == ("act", [1])
        assert table.lookup(Packet({"tcp.sport": 80})) == ("other", [])


class TestEntryLifecycle:
    def test_modify_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([1], "act", [1])
        table.modify_entry(entry_id, action_args=[99])
        assert table.lookup(Packet({"h.f": 1})) == ("act", [99])
        table.modify_entry(entry_id, action_name="other", action_args=[])
        assert table.lookup(Packet({"h.f": 1})) == ("other", [])

    def test_delete_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([1], "act")
        table.delete_entry(entry_id)
        assert table.lookup(Packet({"h.f": 1})) == ("other", [])
        with pytest.raises(SwitchError):
            table.delete_entry(entry_id)

    def test_set_default(self):
        table = make_table([exact_read()])
        table.set_default("act", [5])
        assert table.lookup(Packet({"h.f": 1})) == ("act", [5])

    def test_find_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([7], "act")
        assert table.find_entry([7]).entry_id == entry_id
        assert table.find_entry([8]) is None

    def test_masked_read(self):
        read = ast.TableRead(
            ast.FieldRef("h", "f"), ast.MatchType.EXACT, mask=0xFF
        )
        table = make_table([read])
        table.add_entry([0x34], "act", [1])
        assert table.lookup(Packet({"h.f": 0x1234})) == ("act", [1])


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=32))
    def test_exact_lookup_finds_installed_keys(self, keys):
        table = make_table([exact_read()])
        for key in keys:
            table.add_entry([key], "act", [key & 0xFFFF])
        for key in keys:
            assert table.lookup(Packet({"h.f": key})) == ("act", [key & 0xFFFF])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_ternary_match_is_masked_equality(self, value, mask, probe):
        table = make_table([ternary_read()])
        table.add_entry([(value, mask)], "act", [1])
        result = table.lookup(Packet({"h.f": probe}))
        if (probe & mask) == (value & mask):
            assert result == ("act", [1])
        else:
            assert result == ("other", [])


def lpm_read(name="h.f"):
    header, field = name.split(".")
    return ast.TableRead(ast.FieldRef(header, field), ast.MatchType.LPM)


class TestTcamIndex:
    """The rank-sorted TCAM view and lpm buckets must track every
    add/delete and preserve the scan semantics exactly."""

    def test_sorted_order_maintained_across_add_delete(self):
        table = make_table([ternary_read()])
        low = table.add_entry([(0, 0)], "act", [0], priority=0)
        high = table.add_entry([(5, 0xFFFFFFFF)], "act", [2], priority=10)
        mid = table.add_entry([(5, 0xFF)], "act", [1], priority=5)
        assert [e.entry_id for e in table._tcam_order] == [high, mid, low]
        table.delete_entry(high)
        assert [e.entry_id for e in table._tcam_order] == [mid, low]
        assert table.lookup(Packet({"h.f": 5})) == ("act", [1])

    def test_equal_priority_keeps_install_order(self):
        table = make_table([ternary_read()])
        first = table.add_entry([(1, 0xFF)], "act", [1], priority=4)
        second = table.add_entry([(1, 0x0F)], "act", [2], priority=4)
        # Both match h.f == 1; the first-installed entry wins the tie,
        # as the pre-index linear scan did.
        assert table.lookup(Packet({"h.f": 1})) == ("act", [1])
        table.delete_entry(first)
        assert table.lookup(Packet({"h.f": 1})) == ("act", [2])
        assert second in {e.entry_id for e in table._tcam_order}

    def test_lpm_buckets_built_and_torn_down(self):
        table = make_table([lpm_read()])
        assert table._lpm_indexable
        wide = table.add_entry([(0x0A000000, 8)], "act", [8])
        narrow = table.add_entry([(0x0A0A0000, 16)], "act", [16])
        assert sorted(table._lpm_buckets) == [8, 16]
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("act", [16])
        table.delete_entry(narrow)
        assert sorted(table._lpm_buckets) == [8]
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("act", [8])
        table.delete_entry(wide)
        assert not table._lpm_buckets
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("other", [])

    def test_lpm_with_priority_falls_back_to_scan(self):
        table = make_table([lpm_read()])
        table.add_entry([(0x0A000000, 8)], "act", [8])
        # An explicit priority breaks pure longest-prefix order; the
        # table must permanently revert to the sorted scan.
        table.add_entry([(0x0A0A0000, 16)], "act", [16], priority=1)
        assert not table._lpm_indexable
        assert not table._lpm_buckets
        # Priority outranks prefix length in the scan.
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("act", [16])
        assert table.lookup(Packet({"h.f": 0x0A0B0101})) == ("act", [8])

    def test_lpm_and_exact_combined_key_buckets(self):
        table = make_table([exact_read("h.a"), lpm_read("h.b")])
        assert table._lpm_indexable
        table.add_entry([7, (0x0A000000, 8)], "act", [1])
        table.add_entry([7, (0x0A0A0000, 16)], "act", [2])
        table.add_entry([8, (0x0A000000, 8)], "act", [3])
        assert table.lookup(
            Packet({"h.a": 7, "h.b": 0x0A0A0101})
        ) == ("act", [2])
        assert table.lookup(
            Packet({"h.a": 8, "h.b": 0x0A0A0101})
        ) == ("act", [3])
        assert table.lookup(
            Packet({"h.a": 9, "h.b": 0x0A0A0101})
        ) == ("other", [])

    def test_find_entry_uses_exact_index(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([7], "act")
        assert table._exact_index[(7,)].entry_id == entry_id
        assert table.find_entry([7]) is table._exact_index[(7,)]

    def test_find_entry_on_tcam_table(self):
        table = make_table([ternary_read()])
        entry_id = table.add_entry([(5, 0xFF)], "act", priority=3)
        found = table.find_entry([(5, 0xFF)])
        assert found is not None and found.entry_id == entry_id
        assert table.find_entry([(5, 0xF0)]) is None

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=16,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_lpm_buckets_agree_with_scan(self, prefixes, probe):
        """The bucketed lookup must return exactly what the sorted
        scan returns for any prefix set."""
        bucketed = make_table([lpm_read()])
        for index, (value, length) in enumerate(prefixes):
            bucketed.add_entry([(value, length)], "act", [index])
        reference = make_table([lpm_read()])
        reference._lpm_indexable = False
        reference._lpm_buckets.clear()
        for index, (value, length) in enumerate(prefixes):
            reference.add_entry([(value, length)], "act", [index])
        packet = Packet({"h.f": probe})
        assert bucketed.lookup(packet) == reference.lookup(packet)
