"""Match-action table runtime tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.packet import Packet
from repro.switch.tables import TableRuntime


def make_table(reads, actions=("act", "other"), size=None):
    decl = ast.TableDecl(
        "t",
        reads=reads,
        action_names=list(actions),
        default_action=("other", []),
        size=size,
    )
    widths = [
        1 if r.match_type is ast.MatchType.VALID else 32 for r in reads
    ]
    return TableRuntime(decl, widths)


def exact_read(name="h.f"):
    header, field = name.split(".")
    return ast.TableRead(ast.FieldRef(header, field), ast.MatchType.EXACT)


def ternary_read(name="h.f"):
    header, field = name.split(".")
    return ast.TableRead(ast.FieldRef(header, field), ast.MatchType.TERNARY)


class TestExactMatch:
    def test_hit_and_miss(self):
        table = make_table([exact_read()])
        table.add_entry([5], "act", [42])
        assert table.lookup(Packet({"h.f": 5})) == ("act", [42])
        # Miss falls through to the default action.
        assert table.lookup(Packet({"h.f": 6})) == ("other", [])
        assert table.hits == 1 and table.misses == 1

    def test_multi_field_key(self):
        table = make_table([exact_read("h.a"), exact_read("h.b")])
        table.add_entry([1, 2], "act", [7])
        assert table.lookup(Packet({"h.a": 1, "h.b": 2})) == ("act", [7])
        assert table.lookup(Packet({"h.a": 2, "h.b": 1})) == ("other", [])

    def test_arity_checked(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([1, 2], "act")

    def test_exact_key_must_be_int(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([(1, 2)], "act")

    def test_unknown_action_rejected(self):
        table = make_table([exact_read()])
        with pytest.raises(SwitchError):
            table.add_entry([1], "ghost")

    def test_size_limit(self):
        table = make_table([exact_read()], size=1)
        table.add_entry([1], "act")
        with pytest.raises(SwitchError):
            table.add_entry([2], "act")


class TestTernaryMatch:
    def test_mask_semantics(self):
        table = make_table([ternary_read()])
        table.add_entry([(0x0A000000, 0xFF000000)], "act", [1])
        assert table.lookup(Packet({"h.f": 0x0A123456})) == ("act", [1])
        assert table.lookup(Packet({"h.f": 0x0B123456})) == ("other", [])

    def test_wildcard_mask_zero(self):
        table = make_table([ternary_read()])
        table.add_entry([(0, 0)], "act", [9])
        assert table.lookup(Packet({"h.f": 12345})) == ("act", [9])

    def test_priority_breaks_overlap(self):
        table = make_table([ternary_read()])
        table.add_entry([(0, 0)], "act", [1], priority=0)
        table.add_entry([(5, 0xFFFFFFFF)], "act", [2], priority=10)
        assert table.lookup(Packet({"h.f": 5})) == ("act", [2])
        assert table.lookup(Packet({"h.f": 6})) == ("act", [1])


class TestLpmMatch:
    def test_longest_prefix_wins(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.LPM)
        table = make_table([read])
        table.add_entry([(0x0A000000, 8)], "act", [8])
        table.add_entry([(0x0A0A0000, 16)], "act", [16])
        assert table.lookup(Packet({"h.f": 0x0A0A0101})) == ("act", [16])
        assert table.lookup(Packet({"h.f": 0x0A0B0101})) == ("act", [8])

    def test_zero_prefix_matches_all(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.LPM)
        table = make_table([read])
        table.add_entry([(0, 0)], "act", [0])
        assert table.lookup(Packet({"h.f": 99})) == ("act", [0])


class TestRangeAndValid:
    def test_range(self):
        read = ast.TableRead(ast.FieldRef("h", "f"), ast.MatchType.RANGE)
        table = make_table([read])
        table.add_entry([(10, 20)], "act", [1])
        assert table.lookup(Packet({"h.f": 15})) == ("act", [1])
        assert table.lookup(Packet({"h.f": 21})) == ("other", [])

    def test_valid(self):
        read = ast.TableRead(ast.ValidRef("ipv4"), ast.MatchType.VALID)
        table = make_table([read])
        table.add_entry([True], "act", [1])
        assert table.lookup(Packet({"ipv4.ttl": 64})) == ("act", [1])
        assert table.lookup(Packet({"tcp.sport": 80})) == ("other", [])


class TestEntryLifecycle:
    def test_modify_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([1], "act", [1])
        table.modify_entry(entry_id, action_args=[99])
        assert table.lookup(Packet({"h.f": 1})) == ("act", [99])
        table.modify_entry(entry_id, action_name="other", action_args=[])
        assert table.lookup(Packet({"h.f": 1})) == ("other", [])

    def test_delete_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([1], "act")
        table.delete_entry(entry_id)
        assert table.lookup(Packet({"h.f": 1})) == ("other", [])
        with pytest.raises(SwitchError):
            table.delete_entry(entry_id)

    def test_set_default(self):
        table = make_table([exact_read()])
        table.set_default("act", [5])
        assert table.lookup(Packet({"h.f": 1})) == ("act", [5])

    def test_find_entry(self):
        table = make_table([exact_read()])
        entry_id = table.add_entry([7], "act")
        assert table.find_entry([7]).entry_id == entry_id
        assert table.find_entry([8]) is None

    def test_masked_read(self):
        read = ast.TableRead(
            ast.FieldRef("h", "f"), ast.MatchType.EXACT, mask=0xFF
        )
        table = make_table([read])
        table.add_entry([0x34], "act", [1])
        assert table.lookup(Packet({"h.f": 0x1234})) == ("act", [1])


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=32))
    def test_exact_lookup_finds_installed_keys(self, keys):
        table = make_table([exact_read()])
        for key in keys:
            table.add_entry([key], "act", [key & 0xFFFF])
        for key in keys:
            assert table.lookup(Packet({"h.f": key})) == ("act", [key & 0xFFFF])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_ternary_match_is_masked_equality(self, value, mask, probe):
        table = make_table([ternary_read()])
        table.add_entry([(value, mask)], "act", [1])
        result = table.lookup(Packet({"h.f": probe}))
        if (probe & mask) == (value & mask):
            assert result == ("act", [1])
        else:
            assert result == ("other", [])
