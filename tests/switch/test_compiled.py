"""Differential tests: compiled pipeline vs reference interpreter.

The compiled engine must be observationally identical to the
tree-walking ``PipelineExecutor`` on every program: same field values,
same drops, same register/counter state, same table statistics, same
RNG stream.  These tests replay mixed workloads -- all four match
kinds, valid matches, if/else control flow, arithmetic, hashing,
recirculation, and mid-stream control-plane add/modify/delete --
through both engines and compare everything observable.
"""

import os

import pytest

from repro.errors import SwitchError
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.compiled import (
    CompiledPipeline,
    asic_state_snapshot,
    packet_snapshot,
    run_differential,
)
from repro.switch.packet import Packet
from repro.switch.pipeline import PipelineExecutor

# One program exercising every match kind, nested if/else with boolean
# connectives, registers, both counter modes, hashing, rng, width
# wrap-around, and recirculation.
WORKLOAD_PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; ttl : 8; proto : 8; len : 16; }
}
header ipv4_t ipv4;
header_type meta_t {
    fields { bucket : 16; rngv : 8; acc : 8; class : 4; }
}
metadata meta_t meta;

register seen { width : 32; instance_count : 8; }
counter pkts { type : packets; instance_count : 8; }
counter volume { type : bytes; instance_count : 8; }

field_list flow_fl { ipv4.srcAddr; ipv4.dstAddr; }
field_list_calculation flow_hash {
    input { flow_fl; }
    algorithm : crc16;
    output_width : 16;
}

action set_class(c) { modify_field(meta.class, c); }
action note(idx) {
    register_write(seen, idx, ipv4.srcAddr);
    count(pkts, idx);
    count(volume, idx);
    add_to_field(meta.acc, 250);
    subtract_from_field(ipv4.ttl, 1);
}
action pick_route(port) {
    modify_field(standard_metadata.egress_spec, port);
    modify_field_with_hash_based_offset(meta.bucket, 0, flow_hash, 8);
    modify_field_rng_uniform(meta.rngv, 0, 200);
}
action spin() { recirculate(); }
action block() { drop(); }

table classify {
    reads { ipv4.proto : ternary; }
    actions { set_class; block; }
    default_action : set_class(0);
}
table prefixes {
    reads { ipv4.dstAddr : lpm; }
    actions { note; }
    default_action : note(0);
}
table ranged {
    reads { ipv4.len : range; }
    actions { set_class; spin; block; }
    default_action : set_class(1);
}
table acl {
    reads { valid(ipv4) : exact; ipv4.srcAddr : exact; }
    actions { block; set_class; }
    default_action : set_class(2);
}
table route {
    reads { ipv4.dstAddr : exact; }
    actions { pick_route; block; }
    default_action : block();
}

control ingress {
    apply(classify);
    if (meta.class == 3 && ipv4.ttl > 2) {
        apply(acl);
    } else {
        apply(prefixes);
    }
    if (ipv4.len < 64 || ipv4.proto == 99) {
        apply(ranged);
    }
    apply(route);
}
"""


def build_asic(execution_mode: str) -> SwitchAsic:
    asic = SwitchAsic(
        parse_p4(WORKLOAD_PROGRAM),
        num_ports=8,
        seed=7,
        execution_mode=execution_mode,
    )
    asic.tables["route"].add_entry([0xDEAD0001], "pick_route", [3])
    asic.tables["route"].add_entry([0xDEAD0002], "pick_route", [5])
    asic.tables["classify"].add_entry([(6, 0xFF)], "set_class", [3],
                                      priority=2)
    asic.tables["classify"].add_entry([(0, 0x0F)], "set_class", [1],
                                      priority=1)
    asic.tables["prefixes"].add_entry([(0xDEAD0000, 16)], "note", [2])
    asic.tables["prefixes"].add_entry([(0xDEAD0002, 32)], "note", [3])
    asic.tables["ranged"].add_entry([(0, 63)], "spin")
    asic.tables["acl"].add_entry([True, 0xBAD], "block")
    return asic


def packet_stream(count: int = 120):
    """A deterministic packet mix hitting every table path."""
    for index in range(count):
        yield {
            "ipv4.srcAddr": 0xBAD if index % 7 == 0 else 0xC0A80000 + index,
            "ipv4.dstAddr": 0xDEAD0001 + index % 3,
            "ipv4.ttl": index % 9,
            "ipv4.proto": (6, 17, 99, 0)[index % 4],
            "ipv4.len": 40 + (index * 13) % 100,
        }, 64 + (index * 37) % 1400


def drive_stream(asic: SwitchAsic, mutate: bool = False):
    """Process the stream; with ``mutate`` the control plane
    adds/modifies/deletes entries mid-stream (as the Mantis agent's
    shadow flips do)."""
    observed = []
    added = []
    for index, (fields, size) in enumerate(packet_stream()):
        if mutate and index == 30:
            added.append(
                asic.tables["route"].add_entry([0xDEAD0000], "pick_route", [2])
            )
            added.append(
                asic.tables["prefixes"].add_entry([(0xDEAD0000, 24)],
                                                  "note", [5])
            )
        if mutate and index == 60:
            asic.tables["route"].modify_entry(added[0], action_args=[6])
            asic.tables["classify"].add_entry([(17, 0xFF)], "block",
                                              priority=3)
        if mutate and index == 90:
            asic.tables["prefixes"].delete_entry(added[1])
            asic.tables["ranged"].set_default("set_class", [2])
        packet = Packet(fields=dict(fields), size_bytes=size)
        asic.process(packet)
        observed.append(packet_snapshot(packet))
    return observed


class TestDifferential:
    def test_static_workload(self):
        run_differential(build_asic, drive_stream)

    def test_mid_stream_table_updates(self):
        run_differential(
            build_asic, lambda asic: drive_stream(asic, mutate=True)
        )

    def test_divergence_is_reported(self):
        def drive_differently(asic):
            # Poison one engine's state so the hook must notice.
            if asic.execution_mode == "compiled":
                asic.registers["seen"].write(7, 123)
            return []

        with pytest.raises(SwitchError, match="differential mismatch"):
            run_differential(build_asic, drive_differently)

    def test_rng_stream_shared(self):
        """Both engines draw modify_field_rng_uniform from the same
        seeded stream, packet for packet."""
        interp = build_asic("interpreter")
        fast = build_asic("compiled")
        draws = 0
        for fields, size in packet_stream(40):
            a = Packet(fields=dict(fields), size_bytes=size)
            b = Packet(fields=dict(fields), size_bytes=size)
            interp.process(a)
            fast.process(b)
            assert a.fields.get("meta.rngv") == b.fields.get("meta.rngv")
            draws += "meta.rngv" in a.fields
        assert draws > 0


class TestSteppedExecution:
    def test_yields_match_interpreter(self):
        interp = build_asic("interpreter")
        fast = build_asic("compiled")
        for fields, size in packet_stream(25):
            a = Packet(fields=dict(fields), size_bytes=size)
            b = Packet(fields=dict(fields), size_bytes=size)
            steps_a = list(interp.process_stepped(a))
            steps_b = list(fast.process_stepped(b))
            assert steps_a == steps_b
            assert packet_snapshot(a) == packet_snapshot(b)

    def test_mid_packet_mutation_visible(self):
        """The compiled engine looks the entry up *after* the yield,
        so a control-plane write landing mid-packet takes effect --
        same contract as the interpreter."""
        asic = build_asic("compiled")
        packet = Packet(
            fields={
                "ipv4.srcAddr": 1, "ipv4.dstAddr": 0xDEAD0001,
                "ipv4.ttl": 1, "ipv4.proto": 0, "ipv4.len": 500,
            },
            size_bytes=100,
        )
        stepper = asic.process_stepped(packet)
        for kind, table in stepper:
            if table == "route":
                entry = asic.tables["route"].find_entry([0xDEAD0001])
                asic.tables["route"].modify_entry(
                    entry.entry_id, action_name="block", action_args=[]
                )
        assert packet.dropped


class TestModeSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("MANTIS_PIPELINE", raising=False)
        asic = SwitchAsic(parse_p4(WORKLOAD_PROGRAM))
        assert asic.execution_mode == "compiled"
        assert isinstance(asic.executor, CompiledPipeline)
        assert isinstance(asic.interpreter, PipelineExecutor)

    def test_constructor_flag(self):
        asic = SwitchAsic(
            parse_p4(WORKLOAD_PROGRAM), execution_mode="interpreter"
        )
        assert asic.executor is asic.interpreter

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("MANTIS_PIPELINE", "interpreter")
        asic = SwitchAsic(parse_p4(WORKLOAD_PROGRAM))
        assert asic.execution_mode == "interpreter"
        assert asic.executor is asic.interpreter

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv("MANTIS_PIPELINE", "interpreter")
        asic = SwitchAsic(
            parse_p4(WORKLOAD_PROGRAM), execution_mode="compiled"
        )
        assert isinstance(asic.executor, CompiledPipeline)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SwitchError, match="unknown execution mode"):
            SwitchAsic(parse_p4(WORKLOAD_PROGRAM), execution_mode="jit")


WRAP_PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { narrow : 4; } }
header h_t h;
action bump() { add_to_field(h.narrow, 10); }
action dip() { subtract_from_field(h.narrow, 10); }
table bump_t { actions { bump; } default_action : bump(); }
table dip_t { reads { h.narrow : exact; } actions { dip; } }
control ingress { apply(bump_t); apply(dip_t); }
"""


class TestWidthMasking:
    @pytest.mark.parametrize("mode", ["interpreter", "compiled"])
    def test_add_to_field_wraps_at_width(self, mode):
        asic = SwitchAsic(
            parse_p4(WRAP_PROGRAM), num_ports=4, execution_mode=mode
        )
        packet = Packet(fields={"h.narrow": 12})
        asic.process(packet)
        # 12 + 10 = 22 wraps to 6 in the 4-bit field.
        assert packet.fields["h.narrow"] == 6

    @pytest.mark.parametrize("mode", ["interpreter", "compiled"])
    def test_subtract_from_field_wraps_at_width(self, mode):
        asic = SwitchAsic(
            parse_p4(WRAP_PROGRAM), num_ports=4, execution_mode=mode
        )
        asic.tables["dip_t"].add_entry([9], "dip")
        packet = Packet(fields={"h.narrow": 15})
        asic.process(packet)
        # bump: 15+10 wraps to 9; dip: 9-10 wraps to 15.
        assert packet.fields["h.narrow"] == 15


class TestSnapshots:
    def test_state_snapshot_covers_live_state(self):
        asic = build_asic("compiled")
        before = asic_state_snapshot(asic)
        drive_stream(asic)
        after = asic_state_snapshot(asic)
        assert before != after
        assert after["packets_processed"] == 120
        assert any(v for v in after["registers"]["seen"])
        assert any(v for v in after["counters"]["pkts"])
