"""Driver bulk transactions (``write_batch``) and the bounded
timeline ring (``timeline_limit``)."""

import pytest

from repro.errors import DriverError
from repro.p4.parser import parse_p4
from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.driver import Driver

PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;

register wide { width : 32; instance_count : 64; }

action set_f(v) { modify_field(hdr.f, v); }
action nop() { no_op(); }

table t1 {
    reads { hdr.f : exact; }
    actions { set_f; nop; }
    default_action : nop();
    size : 256;
}
control ingress { apply(t1); }
"""


def make_driver(**kwargs):
    asic = SwitchAsic(parse_p4(PROGRAM))
    return Driver(asic, record_timeline=True, **kwargs)


class TestWriteBatch:
    def test_heterogeneous_batch_applies_in_order(self):
        driver = make_driver()
        results = driver.write_batch([
            ("add", "t1", [1], "set_f", [10]),
            ("add", "t1", [2], "set_f", [20]),
            ("write_register", "wide", 3, 33),
            ("set_default", "t1", "set_f", [7]),
        ])
        entry_id_1, entry_id_2 = results[0], results[1]
        table = driver.asic.get_table("t1")
        assert tuple(table.entries[entry_id_1].key) == (1,)
        assert tuple(table.entries[entry_id_2].key) == (2,)
        assert driver.asic.registers["wide"].read(3) == 33
        assert table.default_action == ("set_f", [7])
        # Deletes and modifies round-trip through the same verb table.
        driver.write_batch([
            ("modify", "t1", entry_id_1, None, [11]),
            ("delete", "t1", entry_id_2),
        ])
        assert table.entries[entry_id_1].action_args == [11]
        assert entry_id_2 not in table.entries

    def test_one_transaction_one_timeline_slot_n_ops(self):
        driver = make_driver()
        ops = [("write_register", "wide", i, i) for i in range(32)]
        driver.write_batch(ops)
        assert driver.ops_issued == 32
        assert driver.bulk_txns == 1
        assert len(driver.timeline) == 1
        record = driver.timeline[0]
        assert record.kind == "bulk_write"
        assert record.ops == 32
        model = driver.model
        width = record.excl_end_us - record.excl_start_us
        assert width == pytest.approx(model.bulk_write_cost(0, 32))

    def test_bulk_is_cheaper_than_per_op_beyond_small_batches(self):
        driver_bulk = make_driver()
        driver_solo = make_driver()
        ops = [("write_register", "wide", i % 64, i) for i in range(64)]
        driver_bulk.write_batch(ops)
        for op in ops:
            driver_solo.write_register(op[1], op[2], op[3])
        assert driver_bulk.clock.now < driver_solo.clock.now
        assert driver_bulk.ops_issued == driver_solo.ops_issued == 64

    def test_bulk_cost_model_components(self):
        model = make_driver().model
        assert model.bulk_write_cost(0, 0) == pytest.approx(
            model.bulk_setup_us
        )
        assert model.bulk_write_cost(10, 4) == pytest.approx(
            model.bulk_setup_us
            + 10 * model.bulk_table_entry_us
            + 4 * model.bulk_register_entry_us
        )

    def test_empty_batch_is_a_no_op(self):
        driver = make_driver()
        before = driver.clock.now
        assert driver.write_batch([]) == []
        assert driver.clock.now == before
        assert driver.bulk_txns == 0

    def test_unknown_verb_rejected_before_any_mutation(self):
        driver = make_driver()
        with pytest.raises(DriverError):
            driver.write_batch([
                ("add", "t1", [1], "set_f", [10]),
                ("upsert", "t1", [2], "set_f", [20]),
            ])
        assert len(driver.asic.get_table("t1").entries) == 0
        assert driver.ops_issued == 0


class TestTimelineRing:
    def test_ring_bounds_memory_and_counts_total(self):
        driver = make_driver(timeline_limit=16)
        for i in range(100):
            driver.write_register("wide", i % 64, i)
        assert len(driver.timeline) == 16
        assert driver.timeline_total == 100
        # The ring keeps the newest records.
        targets = [op.start_us for op in driver.timeline]
        assert targets == sorted(targets)
        assert driver.timeline[-1].end_us == driver.clock.now

    def test_unlimited_timeline_still_counts_total(self):
        driver = make_driver()
        for i in range(10):
            driver.write_register("wide", i, i)
        assert len(driver.timeline) == 10
        assert driver.timeline_total == 10

    def test_invalid_limit_rejected(self):
        with pytest.raises(DriverError):
            make_driver(timeline_limit=0)
        with pytest.raises(DriverError):
            make_driver(timeline_limit=-5)

    def test_fig12_analysis_unaffected_by_generous_ring(self):
        """A ring larger than the op count records exactly what the
        unbounded timeline records."""
        bounded = make_driver(timeline_limit=1000)
        unbounded = make_driver()
        for driver in (bounded, unbounded):
            for i in range(50):
                driver.write_register("wide", i % 64, i, channel="mantis")
        as_tuples = lambda d: [
            (op.start_us, op.end_us, op.kind, op.target, op.channel)
            for op in d.timeline
        ]
        assert as_tuples(bounded) == as_tuples(unbounded)
