"""Burst-mode data plane: batch execution must be invisible.

``SwitchAsic.process_batch`` layers three optimizations over the
compiled per-packet engine -- per-batch key->action memoization,
op-major table sweeps, and exec-fused action runners -- all of which
must be behaviourally transparent.  These tests drive every use-case
program (DoS, ECMP, failover, sketch, RL) plus a recirculating
program through scalar and batch execution and require bit-identical
egress sequences, register/counter state, and table statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import pytest

from repro.apps.dos import DOS_P4R
from repro.apps.ecmp import ECMP_P4R
from repro.apps.failover import FAILOVER_P4R, HEARTBEAT_PROTO
from repro.apps.rl import RL_P4R
from repro.apps.sketch import SKETCH_P4R
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.compiled import asic_state_snapshot
from repro.switch.packet import Packet
from repro.system import MantisSystem

RECIRC_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { passes : 8; } }
header h_t hdr;
register seen { width : 32; instance_count : 4; }

action bounce() {
    add_to_field(hdr.passes, 1);
    recirculate();
    modify_field(standard_metadata.egress_spec, 1);
}
action done() {
    register_read(hdr.passes, seen, 0);
    add_to_field(hdr.passes, 1);
    register_write(seen, 0, hdr.passes);
    modify_field(standard_metadata.egress_spec, 2);
}
table pingpong {
    reads { hdr.passes : exact; }
    actions { bounce; done; }
    default_action : done();
}
control ingress { apply(pingpong); }
"""

DST = 0x0B000001


def _dos_setup(system: MantisSystem) -> None:
    system.driver.add_entry("route", [DST], "forward", [1])
    # blocklist is malleable: entries go through the agent handle and
    # become visible at the next vv commit.
    system.agent.table("blocklist").add([0x0AFF0099], "block")
    system.agent.run_iteration()


def _dos_workload(n: int) -> List[Dict[str, int]]:
    out = []
    for i in range(n):
        src = (0x0AFF0099, 0x0AFF0001, 0x0A000001 + i % 5)[i % 3]
        out.append({"ipv4.srcAddr": src, "ipv4.dstAddr": DST,
                    "ipv4.proto": 17, "tcp.seq": i})
    return out


def _ecmp_setup(system: MantisSystem) -> None:
    for bucket in range(4):
        system.driver.add_entry(
            "ecmp_select", [bucket], "forward", [bucket]
        )


def _ecmp_workload(n: int) -> List[Dict[str, int]]:
    return [
        {"ipv4.srcAddr": 0x0A000001 + i * 7919, "ipv4.dstAddr": DST,
         "ipv4.proto": 6, "l4.sport": 1000 + i * 13, "l4.dport": 443}
        for i in range(n)
    ]


def _failover_setup(system: MantisSystem) -> None:
    system.driver.add_entry("hb_filter", [HEARTBEAT_PROTO, DST], "count_hb", [])
    system.agent.table("route").add([DST], "forward", [3])
    system.agent.run_iteration()


def _failover_workload(n: int) -> List[Dict[str, int]]:
    out = []
    for i in range(n):
        # Every third packet is a heartbeat (counted + dropped).
        proto = HEARTBEAT_PROTO if i % 3 == 0 else 6
        out.append({"ipv4.srcAddr": 0x0A000001 + i % 4,
                    "ipv4.dstAddr": DST, "ipv4.proto": proto})
    return out


def _sketch_setup(system: MantisSystem) -> None:
    system.driver.add_entry("route", [DST], "forward", [2])


def _sketch_workload(n: int) -> List[Dict[str, int]]:
    return [
        {"ipv4.srcAddr": 0x0A000001 + i % 7, "ipv4.dstAddr": DST,
         "ipv4.proto": 17}
        for i in range(n)
    ]


def _rl_setup(system: MantisSystem) -> None:
    system.driver.add_entry("route", [DST], "forward", [1])


def _rl_workload(n: int) -> List[Dict[str, int]]:
    return [
        {"ipv4.srcAddr": 0x0A000001, "ipv4.dstAddr": DST, "tcp.seq": i}
        for i in range(n)
    ]


def _recirc_setup(system: MantisSystem) -> None:
    # passes 0 and 1 bounce; 2 falls through to done().
    system.driver.add_entry("pingpong", [0], "bounce", [])
    system.driver.add_entry("pingpong", [1], "bounce", [])


def _recirc_workload(n: int) -> List[Dict[str, int]]:
    return [{"hdr.passes": 0, "ipv4.srcAddr": i} for i in range(n)]


APPS = {
    "dos": (DOS_P4R, _dos_setup, _dos_workload),
    "ecmp": (ECMP_P4R, _ecmp_setup, _ecmp_workload),
    "failover": (FAILOVER_P4R, _failover_setup, _failover_workload),
    "sketch": (SKETCH_P4R, _sketch_setup, _sketch_workload),
    "rl": (RL_P4R, _rl_setup, _rl_workload),
    "recirc": (RECIRC_P4R, _recirc_setup, _recirc_workload),
}


def _build(name: str, execution_mode: str = "compiled") -> MantisSystem:
    source, setup, _workload = APPS[name]
    system = MantisSystem.from_source(
        source, num_ports=16, execution_mode=execution_mode
    )
    system.agent.prologue()
    setup(system)
    return system


def _observable(result) -> object:
    if result is None:
        return None
    port, packet = result
    return (port, dict(packet.fields), frozenset(packet.valid_headers))


def _run_scalar(system: MantisSystem, workload) -> List[object]:
    return [
        _observable(system.asic.process(Packet(fields, size_bytes=1000)))
        for fields in workload
    ]


def _run_batch(
    system: MantisSystem, workload, batch_size: int
) -> List[object]:
    observed: List[object] = []
    for start in range(0, len(workload), batch_size):
        chunk = [
            Packet(fields, size_bytes=1000)
            for fields in workload[start:start + batch_size]
        ]
        sunk: List[object] = [None] * len(chunk)

        def sink(index: int, result, sunk=sunk) -> None:
            sunk[index] = _observable(result)

        returned = system.asic.process_batch(chunk, sink=sink)
        assert [_observable(r) for r in returned] == sunk
        observed.extend(sunk)
    return observed


class TestBatchEquivalence:
    """Satellite: batch == single-packet for every use-case program."""

    N_PACKETS = 96

    @pytest.mark.parametrize("name", sorted(APPS))
    @pytest.mark.parametrize("batch_size", [1, 7, 32])
    def test_batch_matches_scalar(self, name: str, batch_size: int):
        workload = APPS[name][2](self.N_PACKETS)
        scalar = _build(name)
        scalar_obs = _run_scalar(scalar, workload)
        batched = _build(name)
        batch_obs = _run_batch(batched, workload, batch_size)
        assert batch_obs == scalar_obs
        state_scalar = asic_state_snapshot(scalar.asic)
        state_batch = asic_state_snapshot(batched.asic)
        for section in state_scalar:
            assert state_batch[section] == state_scalar[section], section

    @pytest.mark.parametrize("name", ["dos", "recirc"])
    def test_interpreter_batch_fallback_matches(self, name: str):
        """The interpreter engine has no fused plans; process_batch
        must still work (scalar fallback) and agree with the compiled
        batch path."""
        workload = APPS[name][2](40)
        interp = _build(name, execution_mode="interpreter")
        interp_obs = _run_batch(interp, workload, batch_size=16)
        compiled = _build(name)
        compiled_obs = _run_batch(compiled, workload, batch_size=16)
        assert compiled_obs == interp_obs
        state_interp = asic_state_snapshot(interp.asic)
        state_compiled = asic_state_snapshot(compiled.asic)
        for section in state_interp:
            assert state_compiled[section] == state_interp[section], section

    def test_batch_times_stamp_per_packet_timestamps(self):
        system = _build("dos")
        workload = _dos_workload(4)
        packets = [Packet(fields) for fields in workload]
        times = [100.25, 101.5, 103.75, 110.0]
        results = system.asic.process_batch(packets, times=times)
        for result, t in zip(results, times):
            if result is None:
                continue
            _, packet = result
            key = "standard_metadata.ingress_global_timestamp"
            assert packet.fields[key] == int(t)

    def test_entries_added_between_batches_take_effect(self):
        """Key->action memoization is scoped to one batch: a table
        entry installed after a batch must apply to the next one."""
        system = _build("dos")
        fields = {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": DST}
        first = system.asic.process_batch([Packet(fields)])
        assert first[0] is not None  # forwarded
        system.agent.table("blocklist").add([0x0AFF0001], "block")
        system.agent.run_iteration()
        second = system.asic.process_batch([Packet(fields)])
        assert second == [None]  # now dropped


SHARED_REG_P4R = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register shared { width : 32; instance_count : 4; }

action first_touch() {
    register_read(hdr.f, shared, 0);
    add_to_field(hdr.f, 1);
    register_write(shared, 0, hdr.f);
}
action second_touch() {
    register_read(hdr.f, shared, 0);
    register_write(shared, 1, hdr.f);
    modify_field(standard_metadata.egress_spec, 1);
}
table t1 { actions { first_touch; } default_action : first_touch(); }
table t2 { actions { second_touch; } default_action : second_touch(); }
control ingress { apply(t1); apply(t2); }
"""


class TestOpMajorSoundness:
    """Op-major sweeps are only legal when tables share no state."""

    def test_disjoint_program_gets_major_plan(self):
        system = _build("dos")
        assert system.asic.executor.batch_major_ops("ingress") is not None

    def test_shared_register_disables_op_major(self):
        """Two ingress tables touching the same register array cannot
        be reordered table-major: packet k's t2 must see the register
        as left by packet k's t1, not by the whole batch's t1 sweep."""
        system = MantisSystem.from_source(
            SHARED_REG_P4R, num_ports=4, execution_mode="compiled"
        )
        system.agent.prologue()
        assert system.asic.executor.batch_major_ops("ingress") is None
        # And the batch path (which falls back to packet-major fused
        # execution) still matches scalar execution exactly.
        workload = [{"hdr.f": 0} for _ in range(20)]
        scalar = MantisSystem.from_source(
            SHARED_REG_P4R, num_ports=4, execution_mode="compiled"
        )
        scalar.agent.prologue()
        scalar_obs = _run_scalar(scalar, workload)
        batch_obs = _run_batch(system, workload, batch_size=8)
        assert batch_obs == scalar_obs
        assert (
            system.asic.get_register("shared").values
            == scalar.asic.get_register("shared").values
        )

    def test_recirculating_program_has_no_major_plan(self):
        system = _build("recirc")
        assert system.asic.executor.batch_major_ops("ingress") is None


class TestBatchProfiling:
    """--profile counters: the instrumented engine counts hot loops
    and the batch driver falls back to the scalar closures."""

    def test_counters_cover_controls_tables_actions(self):
        system = _build("dos")
        profile = system.asic.enable_profiling()
        workload = _dos_workload(30)
        _run_batch(system, workload, batch_size=10)
        snap = profile.snapshot()
        assert snap["control_runs"]["ingress"] == 30
        assert snap["table_applies"]["blocklist"] == 30
        assert snap["table_applies"]["route"] == 20  # 10 blocked
        assert snap["action_runs"]["block"] == 10
        assert snap["action_runs"]["account"] == 20

    def test_profiled_batch_matches_unprofiled(self):
        workload = _dos_workload(36)
        plain = _build("dos")
        plain_obs = _run_batch(plain, workload, batch_size=12)
        profiled = _build("dos")
        profiled.asic.enable_profiling()
        assert profiled.asic.executor.batch_ops("ingress") is None
        assert profiled.asic.executor.batch_major_ops("ingress") is None
        profiled_obs = _run_batch(profiled, workload, batch_size=12)
        assert profiled_obs == plain_obs
        state_plain = asic_state_snapshot(plain.asic)
        state_profiled = asic_state_snapshot(profiled.asic)
        for section in state_plain:
            assert state_profiled[section] == state_plain[section], section

    def test_profiling_requires_compiled_engine(self):
        from repro.errors import SwitchError

        system = _build("dos", execution_mode="interpreter")
        with pytest.raises(SwitchError):
            system.asic.enable_profiling()
