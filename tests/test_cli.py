"""CLI and artifact-bundle tests."""

import json
import os

import pytest

from repro.artifacts import load_artifacts, save_artifacts
from repro.cli import main
from repro.compiler import compile_p4r
from repro.errors import CompileError
from repro.switch.asic import STANDARD_METADATA_P4

P4R_SOURCE = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
register r { width : 32; instance_count : 4; }
malleable value knob { width : 16; init : 3; }
action bump() { add_to_field(hdr.f, ${knob}); }
table t { actions { bump; } default_action : bump(); }
control ingress { apply(t); }
reaction tune(reg r[0:3]) {
    ${knob} = r[0];
}
"""


@pytest.fixture
def p4r_file(tmp_path):
    path = tmp_path / "prog.p4r"
    path.write_text(P4R_SOURCE)
    return str(path)


class TestArtifacts:
    def test_save_and_load_roundtrip(self, tmp_path):
        artifacts = compile_p4r(P4R_SOURCE)
        paths = save_artifacts(
            artifacts, str(tmp_path), "prog", p4r_source=P4R_SOURCE
        )
        assert os.path.exists(paths["p4"])
        assert os.path.exists(paths["spec"])
        with open(paths["spec"]) as handle:
            spec_json = json.load(handle)
        assert "init_tables" in spec_json
        reloaded = load_artifacts(str(tmp_path), "prog")
        assert reloaded.p4_source == artifacts.p4_source

    def test_load_without_p4r_fails(self, tmp_path):
        artifacts = compile_p4r(P4R_SOURCE)
        save_artifacts(artifacts, str(tmp_path), "prog")
        with pytest.raises(CompileError):
            load_artifacts(str(tmp_path), "prog")

    def test_load_detects_stale_p4(self, tmp_path):
        artifacts = compile_p4r(P4R_SOURCE)
        paths = save_artifacts(
            artifacts, str(tmp_path), "prog", p4r_source=P4R_SOURCE
        )
        with open(paths["p4"], "a") as handle:
            handle.write("// tampered\n")
        with pytest.raises(CompileError):
            load_artifacts(str(tmp_path), "prog")


class TestCli:
    def test_compile_command(self, p4r_file, tmp_path, capsys):
        out_dir = str(tmp_path / "build")
        code = main(["compile", p4r_file, "-o", out_dir, "--name", "demo"])
        assert code == 0
        assert os.path.exists(os.path.join(out_dir, "demo.p4"))
        assert os.path.exists(os.path.join(out_dir, "demo.spec.json"))
        assert "wrote" in capsys.readouterr().out

    def test_inspect_command(self, p4r_file, capsys):
        code = main(["inspect", p4r_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "value knob" in out
        assert "p4r_init_" in out
        assert "mirror r" in out
        assert "tune(" in out
        assert "stages=" in out

    def test_run_command(self, p4r_file, capsys):
        code = main(["run", p4r_file, "--duration", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dialogue iterations" in out
        assert "avg reaction time" in out
        assert "phase split" in out
        assert "poll=" in out

    def test_bench_fastpath_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_fastpath.json"
        code = main([
            "bench-fastpath", "--packets", "600",
            "--batch-size", "64", "--bench-json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        for key in (
            "workload", "packets", "batch_size",
            "interpreter_pps", "compiled_pps", "batch_pps",
            "interpreter_elapsed_sec", "compiled_elapsed_sec",
            "batch_elapsed_sec", "speedup", "batch_speedup_vs_compiled",
        ):
            assert key in payload, key
        assert payload["packets"] == 600
        assert payload["batch_size"] == 64
        assert payload["batch_pps"] > 0
        out = capsys.readouterr().out
        assert "batch (x64)" in out
        assert "batch speedup" in out

    def test_bench_fastpath_profile(self, capsys):
        code = main(["bench-fastpath", "--packets", "400", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot loops (data plane)" in out
        assert "table_applies" in out
        assert "accounting=" in out
        assert "hot loops (agent" in out
        assert "poll_us" in out

    def test_error_reporting(self, tmp_path, capsys):
        bad = tmp_path / "bad.p4r"
        bad.write_text("gizmo !")
        code = main(["inspect", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(["compile", "/nonexistent.p4r"])
        assert code == 1

    def test_load_field_option(self, tmp_path, capsys):
        source = STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 16; b : 16; c : 16; } }
header h_t hdr;
malleable field m { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action use() { modify_field(hdr.c, ${m}); }
table t { actions { use; } default_action : use(); }
control ingress { apply(t); }
"""
        path = tmp_path / "lf.p4r"
        path.write_text(source)
        code = main(["inspect", str(path), "--load-field", "m"])
        assert code == 0
        assert "strategy=load" in capsys.readouterr().out
