"""Compiler corner cases: the full combinatorial interaction of
malleable tables, read-expanded fields, and action specialization."""

import pytest

from repro.compiler import compile_p4r
from repro.errors import CompileError
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.packet import Packet
from repro.system import MantisSystem

# A malleable table whose reads use one malleable field and whose
# action uses ANOTHER: concrete entries = |alts_r| x |alts_w| x 2 (vv).
TRIPLE_PROGRAM = STANDARD_METADATA_P4 + """
header_type h_t {
    fields { a : 16; b : 16; x : 16; y : 16; out : 16; }
}
header h_t hdr;

malleable field rsel {
    width : 16; init : hdr.a;
    alts { hdr.a, hdr.b }
}
malleable field wsel {
    width : 16; init : hdr.x;
    alts { hdr.x, hdr.y }
}

action store(v) { modify_field(${wsel}, v); }
action nop() { no_op(); }
malleable table combo {
    reads { ${rsel} : exact; }
    actions { store; nop; }
    default_action : nop();
    size : 64;
}
control ingress { apply(combo); }
"""


class TestTripleProduct:
    def _system(self):
        system = MantisSystem.from_source(TRIPLE_PROGRAM)
        system.agent.prologue()
        return system

    def test_concrete_entry_count(self):
        system = self._system()
        handle = system.agent.table("combo")
        handle.add([5], "store", [77])
        system.agent.run_iteration()
        # 2 read alts x 2 write alts x 2 versions = 8 concrete entries.
        assert system.asic.tables["combo"].entry_count == 8

    def test_reads_layout(self):
        artifacts = compile_p4r(TRIPLE_PROGRAM)
        table = artifacts.p4.tables["combo"]
        refs = [str(r.ref) for r in table.reads]
        assert refs == [
            "hdr.a", "hdr.b",            # expanded read alts (ternary)
            "p4r_meta_.rsel_alt",        # read selector
            "p4r_meta_.wsel_alt",        # action-specialization selector
            "p4r_meta_.vv",              # version bit
        ]

    def test_all_four_configurations_behave(self):
        system = self._system()
        handle = system.agent.table("combo")
        handle.add([5], "store", [77])
        system.agent.run_iteration()
        for r_alt, r_field in enumerate(("hdr.a", "hdr.b")):
            for w_alt, w_field in enumerate(("hdr.x", "hdr.y")):
                system.agent.write_malleable("rsel", r_alt)
                system.agent.write_malleable("wsel", w_alt)
                system.agent.run_iteration()
                packet = Packet({r_field: 5})
                system.asic.process(packet)
                assert packet.get(w_field) == 77, (r_field, w_field)
                other = "hdr.y" if w_field == "hdr.x" else "hdr.x"
                assert packet.get(other) == 0

    def test_delete_removes_all_concrete_entries(self):
        system = self._system()
        handle = system.agent.table("combo")
        user_id = handle.add([5], "store", [77])
        system.agent.run_iteration()
        handle.delete(user_id)
        system.agent.run_iteration()
        assert system.asic.tables["combo"].entry_count == 0


class TestCompileErrors:
    def test_unknown_malleable_in_action(self):
        with pytest.raises(Exception):
            compile_p4r(
                STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 16; } }
header h_t hdr;
action bad() { modify_field(hdr.f, ${ghost}); }
table t { actions { bad; } default_action : bad(); }
control ingress { apply(t); }
"""
            )

    def test_unknown_malleable_in_table_read(self):
        with pytest.raises(CompileError):
            compile_p4r(
                STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 16; } }
header h_t hdr;
action nop() { no_op(); }
table t { reads { ${ghost} : exact; } actions { nop; } }
control ingress { apply(t); }
"""
            )

    def test_field_in_condition_requires_load(self):
        """A specialize-strategy field in an if-condition is silently
        promoted to the load strategy by the usage analysis."""
        artifacts = compile_p4r(
            STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 16; b : 16; out : 16; } }
header h_t hdr;
malleable field sel { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action nop() { no_op(); }
action hit() { modify_field(hdr.out, 1); }
table t1 { actions { nop; } default_action : nop(); }
table t2 { actions { hit; } default_action : hit(); }
control ingress {
    apply(t1);
    if (${sel} > 10) {
        apply(t2);
    }
}
"""
        )
        assert artifacts.spec.fields["sel"].strategy == "load"
        # End to end: the condition tracks the shifted alternative.
        system = MantisSystem(artifacts)
        system.agent.prologue()
        system.agent.run_iteration()
        packet = Packet({"hdr.a": 50, "hdr.b": 0})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 1
        system.agent.shift_field("sel", "hdr.b")
        system.agent.run_iteration()
        packet = Packet({"hdr.a": 50, "hdr.b": 0})
        system.asic.process(packet)
        assert packet.get("hdr.out") == 0

    def test_no_ingress_control_with_malleables(self):
        with pytest.raises(CompileError):
            compile_p4r(
                STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 16; } }
header h_t hdr;
malleable value v { width : 8; init : 0; }
action use() { modify_field(hdr.f, ${v}); }
table t { actions { use; } default_action : use(); }
control egress_only { apply(t); }
"""
            )

    def test_oversized_measurement_arg_rejected(self):
        with pytest.raises(CompileError):
            compile_p4r(
                STANDARD_METADATA_P4 + """
header_type h_t { fields { wide : 48; } }
header h_t hdr;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
reaction r(ing hdr.wide) { int x = 0; }
"""
            )
