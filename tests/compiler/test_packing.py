"""Bin-packing tests (sorted first-fit, Section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler.packing import (
    first_fit_decreasing,
    naive_one_per_bin,
    pack_stats,
)


def sizes(bins):
    return [[item for item in bin_] for bin_ in bins]


def test_everything_fits_one_bin():
    bins = first_fit_decreasing([8, 4, 2], lambda s: s, 16)
    assert len(bins) == 1
    assert sorted(bins[0]) == [2, 4, 8]


def test_sorted_first_fit_order():
    # Classic FFD behaviour: big items placed first, small fill gaps.
    bins = first_fit_decreasing([10, 10, 6, 6, 4, 4], lambda s: s, 16)
    assert [sorted(b, reverse=True) for b in bins] == [
        [10, 6], [10, 6], [4, 4],
    ]
    # A small item declared late still lands in the first open slot.
    bins = first_fit_decreasing([12, 9, 3], lambda s: s, 16)
    assert [sorted(b, reverse=True) for b in bins] == [[12, 3], [9]]


def test_item_larger_than_bin_rejected():
    with pytest.raises(ValueError):
        first_fit_decreasing([32], lambda s: s, 16)


def test_max_items_per_bin():
    bins = first_fit_decreasing([1, 1, 1, 1], lambda s: s, 100,
                                max_items_per_bin=2)
    assert len(bins) == 2


def test_empty_input():
    assert first_fit_decreasing([], lambda s: s, 16) == []


def test_deterministic_for_equal_sizes():
    first = first_fit_decreasing(["a", "b", "c"], lambda s: 4, 8)
    second = first_fit_decreasing(["a", "b", "c"], lambda s: 4, 8)
    assert first == second


def test_naive_packing_one_per_bin():
    assert naive_one_per_bin([1, 2, 3]) == [[1], [2], [3]]


def test_pack_stats():
    bins = [[8, 8], [4]]
    count, utilization = pack_stats(bins, lambda s: s, 16)
    assert count == 2
    assert utilization == pytest.approx(20 / 32)
    assert pack_stats([], lambda s: s, 16) == (0, 0.0)


@given(st.lists(st.integers(min_value=1, max_value=32), max_size=50))
def test_packing_preserves_items_and_respects_capacity(items):
    bins = first_fit_decreasing(items, lambda s: s, 32)
    flattened = sorted(item for bin_ in bins for item in bin_)
    assert flattened == sorted(items)
    for bin_ in bins:
        assert sum(bin_) <= 32


@given(st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=50))
def test_ffd_never_worse_than_naive(items):
    ffd = first_fit_decreasing(items, lambda s: s, 32)
    assert len(ffd) <= len(naive_one_per_bin(items))
