header_type p4r_meta_t_ {
    fields {
        value_var : 16;
        field_var_alt : 1;
        vv : 1;
        mv : 1;
        ridx_ : 32;
        rseq_ : 32;
    }
}

metadata p4r_meta_t_ p4r_meta_;

header_type standard_metadata_t {
    fields {
        ingress_port : 9;
        egress_spec : 9;
        egress_port : 9;
        packet_length : 32;
        enq_qdepth : 19;
        deq_qdepth : 19;
        ingress_global_timestamp : 48;
        egress_global_timestamp : 48;
        recirculate_flag : 1;
        clone_flag : 1;
        drop_flag : 1;
        ecn_marked : 1;
    }
}

metadata standard_metadata_t standard_metadata;

header_type hdr_t {
    fields {
        foo : 32;
        bar : 32;
        baz : 32;
        qux : 32;
    }
}

header hdr_t hdr;

table table_var {
    reads {
        hdr.foo : ternary;
        hdr.bar : ternary;
        p4r_meta_.field_var_alt : exact;
        p4r_meta_.vv : exact;
    }
    actions {
        my_action;
        drop_action;
    }
    default_action : drop_action();
}

action my_action() {
    add(hdr.qux, hdr.baz, p4r_meta_.value_var);
}

action drop_action() {
    drop();
}

control ingress {
    apply(p4r_init_);
    apply(table_var);
}

register qdepths_p4r_dup_ {
    width : 32;
    instance_count : 32;
}

register qdepths_p4r_ts_ {
    width : 32;
    instance_count : 32;
}

register qdepths_p4r_seq_ {
    width : 32;
    instance_count : 16;
}

action p4r_init_action_(vv, mv, value_var, field_var_alt) {
    modify_field(p4r_meta_.vv, vv);
    modify_field(p4r_meta_.mv, mv);
    modify_field(p4r_meta_.value_var, value_var);
    modify_field(p4r_meta_.field_var_alt, field_var_alt);
}

table p4r_init_ {
    actions {
        p4r_init_action_;
    }
    default_action : p4r_init_action_(0, 0, 1, 0);
    size : 1;
}
