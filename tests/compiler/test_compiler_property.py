"""Property-based compiler tests.

For randomly shaped malleable declarations, the compiler must always
produce valid plain P4, pack every configuration parameter exactly
once, and keep the spec consistent with the emitted program.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compiler import CompilerOptions, compile_p4r
from repro.p4.validate import validate_program
from repro.switch.asic import STANDARD_METADATA_P4


@st.composite
def malleable_program(draw):
    """A program with random malleable values/fields and reactions."""
    n_values = draw(st.integers(min_value=0, max_value=6))
    n_fields = draw(st.integers(min_value=0, max_value=3))
    n_alts = draw(st.integers(min_value=2, max_value=4))

    header_fields = "\n".join(
        f"        h{i} : 16;" for i in range(max(2, n_alts + 1))
    )
    parts = [STANDARD_METADATA_P4, f"""
header_type hdr_t {{
    fields {{
{header_fields}
        out : 32;
    }}
}}
header hdr_t hdr;
"""]
    for index in range(n_values):
        width = draw(st.integers(min_value=1, max_value=32))
        init = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        parts.append(
            f"malleable value v{index} {{ width : {width}; "
            f"init : {init}; }}"
        )
    for index in range(n_fields):
        alts = ", ".join(f"hdr.h{a}" for a in range(n_alts))
        parts.append(
            f"malleable field f{index} {{ width : 16; "
            f"init : hdr.h0; alts {{ {alts} }} }}"
        )

    uses = []
    for index in range(n_values):
        uses.append(f"    add_to_field(hdr.out, ${{v{index}}});")
    for index in range(n_fields):
        uses.append(f"    add(hdr.out, hdr.out, ${{f{index}}});")
    body = "\n".join(uses) if uses else "    no_op();"
    parts.append(f"action work() {{\n{body}\n}}")
    parts.append(
        "table t { actions { work; } }"
    )
    parts.append("control ingress { apply(t); }")
    if draw(st.booleans()) and n_values:
        parts.append(
            "reaction r0(ing hdr.out) {\n    ${v0} = hdr_out;\n}"
        )
    return "\n".join(parts), n_values, n_fields


@settings(max_examples=40, deadline=None)
@given(malleable_program(), st.integers(min_value=40, max_value=512))
def test_compiled_output_always_validates(case, budget):
    source, _nv, _nf = case
    artifacts = compile_p4r(
        source, CompilerOptions(max_init_action_bits=budget)
    )
    validate_program(artifacts.p4)


@settings(max_examples=40, deadline=None)
@given(malleable_program(), st.integers(min_value=40, max_value=512))
def test_every_param_packed_exactly_once(case, budget):
    source, n_values, n_fields = case
    artifacts = compile_p4r(
        source, CompilerOptions(max_init_action_bits=budget)
    )
    spec = artifacts.spec
    if not spec.init_tables:
        assert n_values == 0 and n_fields == 0
        return
    packed = [
        p.name for init in spec.init_tables for p in init.params
    ]
    # No duplicates, and everything accounted for.
    assert len(packed) == len(set(packed))
    expected = (
        {f"v{i}" for i in range(n_values)}
        | {f"f{i}_alt" for i in range(n_fields)}
        | {"vv", "mv"}
    )
    assert set(packed) == expected
    # vv and mv live in the master.
    master = spec.master_init
    master_params = {p.name for p in master.params}
    assert {"vv", "mv"} <= master_params
    # Bin capacity respected.
    for init in spec.init_tables:
        assert sum(p.width for p in init.params) <= budget


@settings(max_examples=25, deadline=None)
@given(malleable_program())
def test_spec_references_exist_in_emitted_program(case):
    source, _nv, _nf = case
    artifacts = compile_p4r(source)
    program = artifacts.p4
    spec = artifacts.spec
    for init in spec.init_tables:
        assert init.table in program.tables
        assert init.action in program.actions
        action = program.actions[init.action]
        assert action.params == [p.name for p in init.params]
    meta = program.header_types.get("p4r_meta_t_")
    if spec.init_tables:
        for init in spec.init_tables:
            for param in init.params:
                assert meta.has_field(param.name)
    for container in spec.containers:
        assert container.register in program.registers
    for mirror in spec.mirrors.values():
        assert mirror.duplicate in program.registers
        assert mirror.ts in program.registers


@settings(max_examples=20, deadline=None)
@given(malleable_program())
def test_compiled_program_boots_and_iterates(case):
    """Every random program must run one full dialogue iteration."""
    from repro.system import MantisSystem

    source, _nv, _nf = case
    system = MantisSystem.from_source(source)
    system.agent.prologue()
    system.agent.run_iteration()
    from repro.switch.packet import Packet

    system.asic.process(Packet({"hdr.h0": 1}))
    system.agent.run_iteration()
