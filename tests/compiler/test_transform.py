"""Mantis compiler transformation tests (Figures 4-6 and Section 5)."""

import pytest

from repro.compiler import CompilerOptions, compile_p4r
from repro.errors import CompileError
from repro.p4 import ast
from repro.p4.parser import parse_p4
from repro.p4.validate import validate_program
from repro.switch.asic import STANDARD_METADATA_P4

VALUE_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 16; bar : 16; baz : 16; } }
header hdr_t hdr;

malleable value value_var { width : 16; init : 1; }

action my_action() {
    add(hdr.foo, hdr.baz, ${value_var});
}
table t { actions { my_action; } default_action : my_action(); }
control ingress { apply(t); }
"""


class TestMalleableValues:
    """Figure 4: values become p4r_meta_ fields loaded by the init table."""

    def test_value_moves_to_metadata(self):
        artifacts = compile_p4r(VALUE_PROGRAM)
        program = artifacts.p4
        meta_type = program.header_types["p4r_meta_t_"]
        assert meta_type.has_field("value_var")
        assert meta_type.field_width("value_var") == 16
        call = program.actions["my_action"].body[0]
        assert call.args[2] == ast.FieldRef("p4r_meta_", "value_var")

    def test_init_table_generated(self):
        artifacts = compile_p4r(VALUE_PROGRAM)
        program = artifacts.p4
        init = program.tables["p4r_init_"]
        assert init.default_action[0] == "p4r_init_action_"
        # vv, mv, value_var defaults
        assert init.default_action[1] == [0, 0, 1]
        action = program.actions["p4r_init_action_"]
        assert action.params == ["vv", "mv", "value_var"]

    def test_init_applied_first_in_ingress(self):
        artifacts = compile_p4r(VALUE_PROGRAM)
        applied = artifacts.p4.controls["ingress"].applied_tables()
        assert applied[0] == "p4r_init_"

    def test_spec_records_value_location(self):
        spec = compile_p4r(VALUE_PROGRAM).spec
        value_spec = spec.values["value_var"]
        assert value_spec.init_table == "p4r_init_"
        assert value_spec.init == 1
        master = spec.master_init
        assert [p.kind for p in master.params[:2]] == ["vv", "mv"]

    def test_output_is_valid_plain_p4(self):
        artifacts = compile_p4r(VALUE_PROGRAM)
        validate_program(artifacts.p4)
        reparsed = parse_p4(artifacts.p4_source)
        validate_program(reparsed)

    def test_matching_on_value_rejected(self):
        with pytest.raises(CompileError):
            compile_p4r(
                VALUE_PROGRAM
                + """
table bad { reads { ${value_var} : exact; } actions { my_action; } }
"""
            )


FIELD_WRITE_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; qux : 16; } }
header hdr_t hdr;

malleable field write_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}

action my_action(baz) {
    modify_field(${write_var}, baz);
}
action nop() { no_op(); }
table my_table {
    reads { hdr.qux : exact; }
    actions { my_action; nop; }
    default_action : nop();
}
control ingress { apply(my_table); }
"""


class TestMalleableFieldWrite:
    """Figure 5: write uses specialize actions and match on the selector."""

    def test_actions_specialized_per_alt(self):
        program = compile_p4r(FIELD_WRITE_PROGRAM).p4
        assert "my_action" not in program.actions
        v0 = program.actions["my_action_p4r_0"]
        v1 = program.actions["my_action_p4r_1"]
        assert v0.body[0].args[0] == ast.FieldRef("hdr", "foo")
        assert v1.body[0].args[0] == ast.FieldRef("hdr", "bar")
        assert v0.params == ["baz"]

    def test_table_matches_selector(self):
        artifacts = compile_p4r(FIELD_WRITE_PROGRAM)
        table = artifacts.p4.tables["my_table"]
        refs = [str(r.ref) for r in table.reads]
        assert refs == ["hdr.qux", "p4r_meta_.write_var_alt"]
        assert "my_action_p4r_0" in table.action_names
        assert "my_action_p4r_1" in table.action_names

    def test_spec_action_map(self):
        spec = compile_p4r(FIELD_WRITE_PROGRAM).spec
        transform = spec.tables["my_table"]
        specialization = transform.actions["my_action"]
        assert specialization.fields == ["write_var"]
        assert specialization.variant((0,)) == "my_action_p4r_0"
        assert transform.action_selectors == {"write_var": 1}
        assert transform.vv_position == -1  # not a malleable table

    def test_selector_in_init(self):
        spec = compile_p4r(FIELD_WRITE_PROGRAM).spec
        field_spec = spec.fields["write_var"]
        assert field_spec.param == "write_var_alt"
        assert field_spec.strategy == "specialize"
        assert field_spec.alts == ["hdr.foo", "hdr.bar"]


FIELD_READ_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; qux : 16; baz : 32; } }
header hdr_t hdr;

malleable field read_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}

action my_action() {
    add(hdr.qux, hdr.baz, ${read_var});
}
action nop() { no_op(); }
table my_table {
    reads { hdr.qux : exact; ${read_var} : exact; }
    actions { my_action; nop; }
    default_action : nop();
}
control ingress { apply(my_table); }
"""


class TestMalleableFieldRead:
    """Figure 6: reads expand to per-alt ternary columns + selector."""

    def test_match_expansion(self):
        table = compile_p4r(FIELD_READ_PROGRAM).p4.tables["my_table"]
        kinds = [(str(r.ref), r.match_type) for r in table.reads]
        assert kinds == [
            ("hdr.qux", ast.MatchType.EXACT),
            ("hdr.foo", ast.MatchType.TERNARY),  # exact -> ternary
            ("hdr.bar", ast.MatchType.TERNARY),
            ("p4r_meta_.read_var_alt", ast.MatchType.EXACT),
        ]

    def test_read_spec_positions(self):
        spec = compile_p4r(FIELD_READ_PROGRAM).spec
        transform = spec.tables["my_table"]
        plain, mbl = transform.reads
        assert plain.kind == "plain" and plain.positions == [0]
        assert mbl.kind == "mbl"
        assert mbl.positions == [1, 2]
        assert mbl.selector_position == 3
        assert mbl.alt_count == 2
        # Selector is shared between the read expansion and the
        # action specialization (deduplicated).
        assert transform.action_selectors == {"read_var": 3}
        assert transform.total_key_parts == 4

    def test_actions_also_specialized(self):
        program = compile_p4r(FIELD_READ_PROGRAM).p4
        assert "my_action_p4r_0" in program.actions
        assert (
            program.actions["my_action_p4r_1"].body[0].args[2]
            == ast.FieldRef("hdr", "bar")
        )


MALLEABLE_TABLE_PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; } }
header hdr_t hdr;

action set_port(p) { modify_field(standard_metadata.egress_spec, p); }
action nop() { no_op(); }

malleable table route {
    reads { hdr.a : exact; }
    actions { set_port; nop; }
    default_action : nop();
    size : 128;
}
control ingress { apply(route); }
"""


class TestMalleableTables:
    def test_vv_appended(self):
        artifacts = compile_p4r(MALLEABLE_TABLE_PROGRAM)
        table = artifacts.p4.tables["route"]
        assert str(table.reads[-1].ref) == "p4r_meta_.vv"
        assert table.reads[-1].match_type is ast.MatchType.EXACT
        assert not table.malleable  # cleared in emitted P4

    def test_shadow_doubles_size(self):
        table = compile_p4r(MALLEABLE_TABLE_PROGRAM).p4.tables["route"]
        assert table.size == 256

    def test_spec_vv_position(self):
        spec = compile_p4r(MALLEABLE_TABLE_PROGRAM).spec
        transform = spec.tables["route"]
        assert transform.malleable
        assert transform.vv_position == 1


MEASUREMENT_PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; len : 16; proto : 8; } }
header ipv4_t ipv4;

register total_bytes { width : 32; instance_count : 4; }

action account() {
    register_write(total_bytes, 0, ipv4.len);
}
table acct { actions { account; } default_action : account(); }
control ingress { apply(acct); }

reaction watch(ing ipv4.srcAddr, ing ipv4.len, ing ipv4.proto,
               reg total_bytes[0:3]) {
    int x = ipv4_srcAddr;
}
"""


class TestMeasurements:
    def test_field_args_packed_into_containers(self):
        spec = compile_p4r(MEASUREMENT_PROGRAM).spec
        # 32 + 16 + 8 bits -> two 32-bit containers (FFD: 32 | 16+8).
        assert len(spec.containers) == 2
        by_bits = sorted(c.used_bits() for c in spec.containers)
        assert by_bits == [24, 32]
        container, slot = spec.container_for("watch", "ipv4_len")
        assert slot.width == 16

    def test_collect_table_at_end_of_ingress(self):
        artifacts = compile_p4r(MEASUREMENT_PROGRAM)
        applied = artifacts.p4.controls["ingress"].applied_tables()
        assert applied[-1] == "p4r_collect_ing_"
        action = artifacts.p4.actions["p4r_collect_ing_action_"]
        writes = [c for c in action.body if c.name == "register_write"]
        assert len(writes) == 2  # one per container

    def test_measurement_registers_double_buffered(self):
        program = compile_p4r(MEASUREMENT_PROGRAM).p4
        for name, register in program.registers.items():
            if name.startswith("p4r_measure_"):
                assert register.instance_count == 2

    def test_register_mirror_generated(self):
        artifacts = compile_p4r(MEASUREMENT_PROGRAM)
        mirror = artifacts.spec.mirrors["total_bytes"]
        assert mirror.padded_count == 4
        program = artifacts.p4
        assert program.registers[mirror.duplicate].instance_count == 8
        assert program.registers[mirror.ts].instance_count == 8
        assert program.registers[mirror.seq].instance_count == 4

    def test_original_register_eliminated_when_never_read(self):
        artifacts = compile_p4r(MEASUREMENT_PROGRAM)
        mirror = artifacts.spec.mirrors["total_bytes"]
        assert mirror.original_eliminated
        assert "total_bytes" not in artifacts.p4.registers
        body = artifacts.p4.actions["account"].body
        assert not any(
            c.name == "register_write" and c.args[0] == "total_bytes"
            for c in body
        )

    def test_original_kept_when_read_in_data_plane(self):
        program_src = MEASUREMENT_PROGRAM.replace(
            "register_write(total_bytes, 0, ipv4.len);",
            "register_read(ipv4.len, total_bytes, 0);"
            "register_write(total_bytes, 0, ipv4.len);",
        )
        artifacts = compile_p4r(program_src)
        assert not artifacts.spec.mirrors["total_bytes"].original_eliminated
        assert "total_bytes" in artifacts.p4.registers

    def test_compiled_measurement_program_is_valid(self):
        artifacts = compile_p4r(MEASUREMENT_PROGRAM)
        validate_program(artifacts.p4)


class TestLoadStrategy:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; ttl : 8; } }
header ipv4_t ipv4;
header_type meta_t { fields { bucket : 16; } }
metadata meta_t meta;

malleable field hash_in {
    width : 32; init : ipv4.srcAddr;
    alts { ipv4.srcAddr, ipv4.dstAddr }
}

field_list lb_fl { ${hash_in}; }
field_list_calculation lb_hash {
    input { lb_fl; }
    algorithm : crc16;
    output_width : 16;
}
action pick() {
    modify_field_with_hash_based_offset(meta.bucket, 0, lb_hash, 8);
}
table ecmp { actions { pick; } default_action : pick(); }
control ingress { apply(ecmp); }
"""

    def test_field_list_use_forces_load(self):
        spec = compile_p4r(self.PROGRAM).spec
        assert spec.fields["hash_in"].strategy == "load"
        assert len(spec.load_tables) == 1
        assert spec.load_tables[0].field_name == "hash_in"

    def test_load_table_generated_and_applied(self):
        program = compile_p4r(self.PROGRAM).p4
        applied = program.controls["ingress"].applied_tables()
        assert applied[:2] == ["p4r_init_", "p4r_load_hash_in_"]
        load = program.tables["p4r_load_hash_in_"]
        assert str(load.reads[0].ref) == "p4r_meta_.hash_in_alt"
        assert len(load.action_names) == 2

    def test_field_list_now_references_loaded_value(self):
        program = compile_p4r(self.PROGRAM).p4
        entries = program.field_lists["lb_fl"].entries
        assert entries == [ast.FieldRef("p4r_meta_", "hash_in_val")]

    def test_written_field_cannot_use_load(self):
        bad = self.PROGRAM + """
action scribble() { modify_field(${hash_in}, 0); }
table s { actions { scribble; } default_action : scribble(); }
"""
        with pytest.raises(CompileError):
            compile_p4r(bad)


class TestCompoundUsages:
    PROGRAM = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 16; b : 16; c : 16; d : 16; } }
header hdr_t hdr;

malleable field f1 { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
malleable field f2 { width : 16; init : hdr.c; alts { hdr.c, hdr.d } }

action both(v) {
    modify_field(${f1}, v);
    modify_field(${f2}, v);
}
action nop() { no_op(); }
table t {
    reads { hdr.a : exact; }
    actions { both; nop; }
    default_action : nop();
}
control ingress { apply(t); }
"""

    def test_two_fields_give_four_variants(self):
        artifacts = compile_p4r(self.PROGRAM)
        program = artifacts.p4
        variants = [
            n for n in program.actions if n.startswith("both_p4r_")
        ]
        assert sorted(variants) == [
            "both_p4r_0_0", "both_p4r_0_1", "both_p4r_1_0", "both_p4r_1_1",
        ]
        v10 = program.actions["both_p4r_1_0"]
        assert v10.body[0].args[0] == ast.FieldRef("hdr", "b")
        assert v10.body[1].args[0] == ast.FieldRef("hdr", "c")

    def test_table_gets_both_selectors(self):
        table = compile_p4r(self.PROGRAM).p4.tables["t"]
        refs = [str(r.ref) for r in table.reads]
        assert "p4r_meta_.f1_alt" in refs
        assert "p4r_meta_.f2_alt" in refs

    def test_same_field_used_twice_specializes_once(self):
        source = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 16; b : 16; c : 16; } }
header hdr_t hdr;
malleable field f { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action twice(v) {
    modify_field(${f}, v);
    add(hdr.c, ${f}, v);
}
table t { actions { twice; } default_action : twice(0); }
control ingress { apply(t); }
"""
        # default_action on a specialized action is a compile error,
        # so drop the default for this test.
        source = source.replace("default_action : twice(0);", "")
        program = compile_p4r(source).p4
        variants = [n for n in program.actions if n.startswith("twice_p4r_")]
        assert len(variants) == 2  # one per alt, not per use


class TestInitPacking:
    def test_overflow_splits_into_multiple_init_tables(self):
        values = "\n".join(
            f"malleable value v{i} {{ width : 32; init : 0; }}"
            for i in range(8)
        )
        source = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; } }
header hdr_t hdr;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
""" + values
        options = CompilerOptions(max_init_action_bits=100)
        artifacts = compile_p4r(source, options)
        spec = artifacts.spec
        assert len(spec.init_tables) > 1
        assert spec.init_tables[0].master
        # Later init tables are vv-managed malleable tables.
        second = spec.init_tables[1]
        assert spec.tables[second.table].vv_position == 0
        table = artifacts.p4.tables[second.table]
        assert str(table.reads[0].ref) == "p4r_meta_.vv"
        # Master applied before the rest.
        applied = artifacts.p4.controls["ingress"].applied_tables()
        assert applied.index("p4r_init_") < applied.index(second.table)

    def test_no_init_table_for_pure_p4(self):
        source = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; } }
header hdr_t hdr;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); }
"""
        artifacts = compile_p4r(source)
        assert not artifacts.spec.init_tables
        assert "p4r_init_" not in artifacts.p4.tables


class TestFigure1EndToEnd:
    FIGURE1 = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header hdr_t hdr;

register qdepths { width : 32; instance_count : 16; }

malleable value value_var { width : 16; init : 1; }
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; drop_action; }
    default_action : drop_action();
}
action my_action() {
    add(hdr.qux, hdr.baz, ${value_var});
}
action drop_action() { drop(); }
control ingress { apply(table_var); }

reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
"""

    def test_compiles_and_validates(self):
        artifacts = compile_p4r(self.FIGURE1)
        validate_program(artifacts.p4)
        # Round-trip through the printer as well.
        validate_program(parse_p4(artifacts.p4_source))

    def test_spec_completeness(self):
        spec = compile_p4r(self.FIGURE1).spec
        assert "value_var" in spec.values
        assert "field_var" in spec.fields
        assert "table_var" in spec.tables
        assert spec.tables["table_var"].malleable
        assert "qdepths" in spec.mirrors
        reaction = spec.reactions["my_reaction"]
        assert reaction.arg_sources == [("mirror", "qdepths")]

    def test_spec_serializes_to_dict(self):
        import json

        spec = compile_p4r(self.FIGURE1).spec
        as_json = json.dumps(spec.to_dict(), default=str)
        assert "p4r_init_" in as_json
