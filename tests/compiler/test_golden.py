"""Golden-file test: the Figure 1 compile output is pinned.

Any intentional code-generation change must update
``tests/compiler/golden/figure1.p4`` (regenerate by compiling
``figure1.p4r`` and writing ``artifacts.p4_source``); unintentional
changes fail here first.
"""

import os

from repro.compiler import compile_p4r
from repro.p4.parser import parse_p4
from repro.p4.validate import validate_program

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _read(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return handle.read()


def test_figure1_codegen_is_pinned():
    source = _read("figure1.p4r")
    artifacts = compile_p4r(source)
    assert artifacts.p4_source == _read("figure1.p4")


def test_golden_output_is_valid_p4():
    program = parse_p4(_read("figure1.p4"))
    validate_program(program)
    # Spot-check the golden file contains the paper's key artifacts.
    text = _read("figure1.p4")
    assert "p4r_init_" in text
    assert "p4r_meta_" in text
    assert "qdepths_p4r_dup_" in text
    assert "p4r_meta_.vv : exact" in text


def test_compile_is_deterministic():
    source = _read("figure1.p4r")
    first = compile_p4r(source).p4_source
    second = compile_p4r(source).p4_source
    assert first == second
