"""Coverage for the wiring layer (MantisSystem), spec helpers, and
resource accounting edge cases."""

import pytest

from repro.analysis.resources import ResourceReport, resource_report
from repro.compiler import compile_p4r
from repro.compiler.spec import ControlPlaneSpec, InitTableSpec
from repro.p4.parser import parse_p4
from repro.p4r.ast import ReactionArg
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.clock import SimClock
from repro.system import MantisSystem

SIMPLE = STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 32; } }
header h_t hdr;
malleable value v { width : 8; init : 3; }
action use() { modify_field(hdr.f, ${v}); }
table t { actions { use; } default_action : use(); }
control ingress { apply(t); }
"""


class TestMantisSystem:
    def test_shared_clock(self):
        clock = SimClock(100.0)
        system = MantisSystem.from_source(SIMPLE, clock=clock)
        assert system.asic.clock is clock
        assert system.driver.clock is clock
        assert system.clock.now == 100.0

    def test_from_parsed_program(self):
        from repro.p4r.parser import parse_p4r

        program = parse_p4r(SIMPLE)
        system = MantisSystem.from_source(program)
        assert "v" in system.spec.values

    def test_spec_property(self):
        system = MantisSystem.from_source(SIMPLE)
        assert system.spec is system.artifacts.spec


class TestSpecHelpers:
    def test_master_init_lookup(self):
        spec = compile_p4r(SIMPLE).spec
        assert spec.master_init.master
        assert spec.master_init.table == "p4r_init_"

    def test_master_init_missing_raises(self):
        with pytest.raises(KeyError):
            ControlPlaneSpec().master_init

    def test_param_index_unknown_raises(self):
        init = InitTableSpec("t", "a", [])
        with pytest.raises(KeyError):
            init.param_index("ghost")

    def test_container_for_unknown_raises(self):
        spec = compile_p4r(SIMPLE).spec
        with pytest.raises(KeyError):
            spec.container_for("ghost", "arg")

    def test_reaction_arg_kinds_validated(self):
        with pytest.raises(Exception):
            ReactionArg("gizmo", "x")

    def test_reaction_arg_entry_count(self):
        arg = ReactionArg("reg", "r", lo=2, hi=9)
        assert arg.entry_count == 8
        from repro.p4.ast import FieldRef

        scalar = ReactionArg("ing", FieldRef("h", "f"))
        assert scalar.entry_count == 1
        assert scalar.c_name == "h_f"


class TestResourceReportEdges:
    def test_minus_and_row(self):
        a = ResourceReport(stages=3, tables=5, registers=2,
                           sram_bytes=2048, tcam_bytes=1024,
                           metadata_bits=64, actions=7)
        b = ResourceReport(stages=1, tables=2, registers=1,
                           sram_bytes=1024, tcam_bytes=0,
                           metadata_bits=0, actions=3)
        diff = a.minus(b)
        assert diff.stages == 2
        assert diff.tables == 3
        assert "SRAM=1.00KB" in diff.row()

    def test_empty_program(self):
        report = resource_report(parse_p4(""))
        assert report.tables == 0
        assert report.stages == 0

    def test_reapplied_table_counts_one_stage(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { f : 8; } }
header h_t hdr;
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
control ingress { apply(t); apply(t); }
""")
        assert resource_report(program).stages == 1

    def test_independent_tables_share_a_stage(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 8; b : 8; } }
header h_t hdr;
action seta() { modify_field(hdr.a, 1); }
action setb() { modify_field(hdr.b, 1); }
table ta { actions { seta; } default_action : seta(); }
table tb { actions { setb; } default_action : setb(); }
control ingress { apply(ta); apply(tb); }
""")
        # ta and tb touch disjoint fields: both fit in stage 1.
        assert resource_report(program).stages == 1

    def test_write_read_dependency_stacks(self):
        program = parse_p4(STANDARD_METADATA_P4 + """
header_type h_t { fields { a : 8; b : 8; c : 8; } }
header h_t hdr;
action s1() { modify_field(hdr.a, 1); }
action s2() { modify_field(hdr.b, hdr.a); }
action s3() { modify_field(hdr.c, hdr.b); }
table t1 { actions { s1; } default_action : s1(); }
table t2 { actions { s2; } default_action : s2(); }
table t3 { actions { s3; } default_action : s3(); }
control ingress { apply(t1); apply(t2); apply(t3); }
""")
        assert resource_report(program).stages == 3
