"""Stateful register arrays.

Registers are the switch's only cross-packet state and the substrate
for Mantis's measurement mechanisms: generated field-collection
registers, duplicated measurement registers, and timestamp registers
(Section 5.2) are all instances of :class:`RegisterArray`.
"""

from __future__ import annotations

from typing import List

from repro.errors import SwitchError


class RegisterArray:
    """A fixed-width register array with wrap-around arithmetic."""

    __slots__ = ("name", "width", "mask", "values")

    def __init__(self, name: str, width: int = 32, instance_count: int = 1):
        if width <= 0 or instance_count <= 0:
            raise SwitchError(
                f"register {name}: width and instance_count must be positive"
            )
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.values: List[int] = [0] * instance_count

    @property
    def instance_count(self) -> int:
        return len(self.values)

    def _check_index(self, index: int) -> int:
        if not 0 <= index < len(self.values):
            raise SwitchError(
                f"register {self.name}: index {index} out of range "
                f"[0, {len(self.values)})"
            )
        return index

    def read(self, index: int) -> int:
        return self.values[self._check_index(index)]

    def write(self, index: int, value: int) -> None:
        self.values[self._check_index(index)] = value & self.mask

    def increment(self, index: int, delta: int = 1) -> int:
        """Add ``delta`` (wrapping) and return the new value."""
        index = self._check_index(index)
        self.values[index] = (self.values[index] + delta) & self.mask
        return self.values[index]

    def bulk_write(self, indices: List[int], new_values: List[int]) -> None:
        """Masked write of many ``(index, value)`` pairs at once.

        The columnar engine commits a whole batch's scatter in one
        call; indices are pre-validated by the vector range check, so
        this skips the per-write bounds test."""
        values = self.values
        mask = self.mask
        for index, value in zip(indices, new_values):
            values[index] = value & mask

    def bulk_add(self, indices: List[int], deltas: List[int]) -> None:
        """Wrapping add of many ``(index, delta)`` pairs at once.

        Summing per-slot deltas then masking once equals masking after
        every increment (masks distribute over addition mod 2**width),
        so batched counter commits stay bit-identical to the scalar
        engine."""
        values = self.values
        mask = self.mask
        for index, delta in zip(indices, deltas):
            values[index] = (values[index] + delta) & mask

    def read_range(self, lo: int, hi: int) -> List[int]:
        """Read entries ``lo..hi`` inclusive (driver DMA-burst path)."""
        self._check_index(lo)
        self._check_index(hi)
        if lo > hi:
            raise SwitchError(f"register {self.name}: bad range [{lo}:{hi}]")
        return self.values[lo : hi + 1]

    def clear(self) -> None:
        # In place: the compiled pipeline closes over this list object,
        # so it must never be rebound.
        self.values[:] = [0] * len(self.values)

    @property
    def byte_size(self) -> int:
        """Total SRAM footprint in bytes (for resource accounting)."""
        return (self.width + 7) // 8 * len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegisterArray({self.name}, width={self.width}, "
            f"count={len(self.values)})"
        )
