"""Columnar (struct-of-arrays) batch engine.

:class:`ColumnarPipeline` is the third execution engine
(``MANTIS_PIPELINE=columnar``): it executes a burst of packets as a
handful of numpy array operations instead of per-packet Python.  The
model is the Packet Transactions wide-word machine -- compile the whole
match-action program against a vector of packets, so table k sweeps
every lane before table k+1 sees any:

- a :class:`ColumnarBatch` holds one ``int64`` column per
  ``"instance.field"`` key, materialized lazily from ``Packet`` dicts
  (or sliced from a :class:`ColumnarPool` with no per-packet work at
  all) and written back only for lanes a sweep actually wrote;
- exact-match lookup packs each table's key fields into one ``int64``
  and resolves entries via equality scans (few entries) or
  ``np.searchsorted`` against a sorted key index cached per
  :attr:`TableRuntime.generation`;
- action bodies lower to vectorized programs: field stores become
  masked column assignments, constant-index register read-modify-write
  chains become prefix sums (each lane observes the running value the
  scalar engine would have produced), dynamic-index register RMW
  becomes a *segmented* prefix sum grouped by index
  (:class:`_DynState`), write-only dynamic stores become last-wins
  scatters, counters become ``np.bincount``, and
  ``field_list_calculation`` hashes become table-driven byte-at-a-time
  CRC sweeps (:func:`repro.switch.hashing.vector_hash_fn`);
- control-level single-``if``/``else`` blocks lower to masked selects:
  the condition is evaluated vectorially over the live lanes and each
  arm's table sweeps run restricted to its lane subset
  (:class:`_CondSweep`);
- every program splits into a pure *prepare* phase (gathers, range
  validation -- may raise :class:`_Unvectorizable`) and a *commit*
  phase, so a lowering that proves unsound at run time downgrades to
  the scalar op-major sweep with no partial effects.

Lanes or whole tables that hit non-vectorizable features (RNG,
non-exact matches, nested conditionals, cross-register affine flows)
drain through the existing scalar fused path, so the engine is always
semantically total; the fallback counters in
:attr:`ColumnarPipeline.fallback_counts` say how often and why.

Admission mirrors :meth:`CompiledPipeline.batch_major_ops`: columnar
execution is op-major execution, so it is sound exactly when the
op-major reordering is (exact-only ingress with pairwise-disjoint
cross-packet footprints).  Straight-line bodies reuse the op-major
analysis verbatim; bodies with a single level of control-flow ``if``
re-run the same footprint analysis over every reachable arm, which is
sound because each lane executes exactly one arm and the condition is
a pure function of that lane's fields.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.compiled import CompiledPipeline, _FLAG_KEYS, _tables_in
from repro.switch.hashing import vector_hash_fn
from repro.switch.packet import (
    Packet,
    PacketTemplate,
    collect_template_columns,
)

HAVE_NUMPY = np is not None

_DROP = "standard_metadata.drop_flag"
_SPEC = "standard_metadata.egress_spec"
_RECIRC = "standard_metadata.recirculate_flag"

# Conservative bit budget: every intermediate must fit int64 with
# headroom for prefix sums over a full batch.
_MAX_BITS = 62
# Entry counts up to this size match via per-entry equality scans
# (cheaper than sort+searchsorted for the sparse tables Mantis installs).
_SCAN_ENTRIES = 8


def require_numpy() -> None:
    if not HAVE_NUMPY:
        raise SwitchError(
            "the columnar engine requires numpy (MANTIS_PIPELINE=columnar); "
            "install numpy>=1.22 or select the compiled/interpreter engine"
        )


class _Unvectorizable(Exception):
    """A lowering that looked sound at compile time failed a run-time
    check (index range, int64 headroom).  Raised only from *prepare*
    phases, before any state mutation, so the caller can rerun the
    whole table through the scalar sweep."""


class _GiveUp(Exception):
    """Compile-time bail-out: the action body is outside the
    vectorizable subset."""


# ---------------------------------------------------------------------------
# Struct-of-arrays batch


class ColumnarBatch:
    """One burst of packets as parallel ``int64`` columns.

    Backed either by a list of :class:`Packet` objects (columns
    materialize from and flush back to their field dicts) or by a
    :class:`ColumnarPool` slice (columns are array copies; packets are
    materialized only if a scalar fallback needs them)."""

    __slots__ = (
        "n", "sizes", "packets", "templates", "_pool_cols", "_pool_valid",
        "_offset", "cols", "written",
    )

    def __init__(self, n: int, sizes, packets=None, templates=None,
                 pool_cols=None, pool_valid=None, offset=0):
        self.n = n
        self.sizes = sizes
        self.packets: Optional[List[Packet]] = packets
        self.templates: Optional[List[PacketTemplate]] = templates
        self._pool_cols = pool_cols
        self._pool_valid = pool_valid
        self._offset = offset
        self.cols: Dict[str, "np.ndarray"] = {}
        self.written: Dict[str, "np.ndarray"] = {}

    @classmethod
    def from_packets(cls, packets: List[Packet]) -> "ColumnarBatch":
        require_numpy()
        sizes = np.fromiter(
            (p.size_bytes for p in packets), np.int64, count=len(packets)
        )
        return cls(len(packets), sizes, packets=list(packets))

    # ---- columns --------------------------------------------------------

    def col(self, key: str) -> "np.ndarray":
        arr = self.cols.get(key)
        if arr is None:
            if self.packets is not None:
                try:
                    arr = np.fromiter(
                        (p.fields.get(key, 0) for p in self.packets),
                        np.int64, count=self.n,
                    )
                except OverflowError:
                    raise _Unvectorizable(f"field {key} exceeds int64")
            else:
                pooled = self._pool_cols.get(key)
                if pooled is None:
                    arr = np.zeros(self.n, np.int64)
                else:
                    arr = pooled[self._offset:self._offset + self.n].copy()
            self.cols[key] = arr
        return arr

    def valid_col(self, header: str) -> "np.ndarray":
        if self.packets is not None:
            return np.fromiter(
                (1 if header in p.valid_headers else 0
                 for p in self.packets),
                np.int64, count=self.n,
            )
        pooled = self._pool_valid.get(header)
        if pooled is None:
            return np.zeros(self.n, np.int64)
        return pooled[self._offset:self._offset + self.n].astype(np.int64)

    def store(self, key: str, idx, values) -> None:
        """Write ``values`` into lanes ``idx`` (``None`` = all lanes)
        and remember which lanes were written, so flush-back creates
        exactly the dict keys the scalar engine would have."""
        col = self.col(key)
        mask = self.written.get(key)
        if mask is None:
            mask = self.written[key] = np.zeros(self.n, bool)
        if idx is None:
            col[:] = values
            mask[:] = True
        else:
            col[idx] = values
            mask[idx] = True

    # ---- scalar-fallback boundary ---------------------------------------

    def ensure_packets(self) -> List[Packet]:
        """Materialize real packets (pool-backed batches only): one
        re-initialized packet per template plus every vector write so
        far.  After this the batch behaves like a packet-backed one."""
        if self.packets is None:
            packets = [Packet().reinit(t) for t in self.templates]
            for key, mask in self.written.items():
                col = self.cols[key]
                vals = col.tolist()
                for lane, hit in enumerate(mask.tolist()):
                    if hit:
                        packets[lane].fields[key] = vals[lane]
            self.packets = packets
        return self.packets

    def flush(self) -> None:
        """Write vector results back into the packet dicts (written
        lanes only -- untouched lanes keep their exact dict state)."""
        if self.packets is None:
            self.ensure_packets()
            return
        packets = self.packets
        for key, mask in self.written.items():
            vals = self.cols[key].tolist()
            for lane, hit in enumerate(mask.tolist()):
                if hit:
                    packets[lane].fields[key] = vals[lane]
        self.written.clear()

    def resync(self) -> None:
        """Drop all materialized columns: after a scalar phase the
        packet dicts are authoritative and columns re-materialize
        lazily on next touch."""
        self.cols.clear()
        self.written.clear()

    def lane_flush(self, lane: int) -> None:
        fields = self.packets[lane].fields
        for key, mask in self.written.items():
            if mask[lane]:
                fields[key] = int(self.cols[key][lane])

    def lane_resync(self, lane: int) -> None:
        fields = self.packets[lane].fields
        for key, col in self.cols.items():
            col[lane] = fields.get(key, 0)


class ColumnarPool:
    """Template columns precomputed once, sliced into batches with no
    per-packet work -- the columnar analogue of
    :class:`~repro.switch.packet.PacketPool`."""

    def __init__(self, templates: List[PacketTemplate]):
        require_numpy()
        self.templates = list(templates)
        n = len(self.templates)
        keys, headers = collect_template_columns(self.templates)
        self.cols: Dict[str, "np.ndarray"] = {
            key: np.fromiter(
                (t.fields.get(key, 0) for t in self.templates),
                np.int64, count=n,
            )
            for key in keys
        }
        self.valid: Dict[str, "np.ndarray"] = {
            header: np.fromiter(
                (header in t.valid_headers for t in self.templates),
                bool, count=n,
            )
            for header in headers
        }
        self.sizes = np.fromiter(
            (t.size_bytes for t in self.templates), np.int64, count=n
        )

    def __len__(self) -> int:
        return len(self.templates)

    def batch(self, start: int, stop: int) -> ColumnarBatch:
        stop = min(stop, len(self.templates))
        return ColumnarBatch(
            stop - start,
            self.sizes[start:stop],
            templates=self.templates[start:stop],
            pool_cols=self.cols,
            pool_valid=self.valid,
            offset=start,
        )


class ColumnarResult:
    """Outcome of :meth:`SwitchAsic.process_batch_columnar`: per-lane
    egress ports (``-1`` = dropped) without materializing packets."""

    __slots__ = ("ports", "delivered", "dropped")

    def __init__(self, ports, delivered: int, dropped: int):
        self.ports = ports
        self.delivered = delivered
        self.dropped = dropped


# ---------------------------------------------------------------------------
# Compile-time values for the vectorizing action compiler


class _Val:
    """An abstract value: a constant, a lane vector (``fn(ctx)`` ->
    ndarray), an affine read of a constant register cell (``X[cell] +
    delta``, coefficient exactly 1), or an affine read of a
    dynamically indexed register slot (kind ``'g'``: ``cell`` is the
    :class:`_DynState` and the base is its per-lane observed value)."""

    __slots__ = ("kind", "const", "fn", "cell", "delta", "bits")

    def __init__(self, kind, const=0, fn=None, cell=None, delta=None,
                 bits=1):
        self.kind = kind  # 'c' | 'v' | 'a' | 'g'
        self.const = const
        self.fn = fn
        self.cell = cell
        self.delta = delta
        self.bits = bits


def _vc(value: int) -> _Val:
    return _Val("c", const=value, bits=max(1, value.bit_length()))


def _vv(fn, bits: int) -> _Val:
    if bits > _MAX_BITS:
        raise _GiveUp("int64 headroom")
    return _Val("v", fn=fn, bits=bits)


def _resolve(val: _Val, ctx):
    if val.kind == "c":
        return val.const
    if val.kind == "v":
        return val.fn(ctx)
    if val.kind == "g":
        return val.cell.observed(ctx) + _resolve(val.delta, ctx)
    return ctx["X"][val.cell] + _resolve(val.delta, ctx)


def _vadd(a: _Val, b: _Val, sign: int = 1) -> _Val:
    """``a + sign*b`` with affine propagation: affine + concrete stays
    affine on the same cell; anything that would scale or mix cells
    bails.  A *subtracted* gather (``a - g``) has no affine structure
    to preserve, so it materializes through the generic resolver --
    sound as long as the gather's observed values are reduced, which
    :meth:`_VecActionCompiler.compile` checks once the state's final
    mode is known (the ``escaped`` flag)."""
    if a.kind in ("a", "g") and b.kind in ("a", "g"):
        raise _GiveUp("affine x affine")
    if b.kind == "a":
        if sign < 0:
            raise _GiveUp("negated affine")
        a, b = b, a
    elif b.kind == "g":
        if sign < 0:
            b.cell.escaped = True
        else:
            a, b = b, a
    if a.kind in ("a", "g"):
        return _Val(
            a.kind, cell=a.cell, delta=_vadd(a.delta, b, sign),
            bits=min(_MAX_BITS, max(a.bits, b.bits) + 1),
        )
    bits = max(a.bits, b.bits) + 1
    if a.kind == "c" and b.kind == "c":
        return _vc(a.const + sign * b.const)
    fa, fb = a, b

    def fn(ctx, _a=fa, _b=fb, _s=sign):
        return _resolve(_a, ctx) + _s * _resolve(_b, ctx)

    return _vv(fn, bits)


_NP_BIN = {
    "bit_and": ("&", lambda l, r: l & r),
    "bit_or": ("|", lambda l, r: l | r),
    "bit_xor": ("^", lambda l, r: l ^ r),
    "shift_left": ("<<", lambda l, r: l << r),
    "shift_right": (">>", lambda l, r: l >> r),
    "min": ("min", None),
    "max": ("max", None),
}


def _vbin(op: str, a: _Val, b: _Val) -> _Val:
    if op == "add":
        return _vadd(a, b, 1)
    if op == "subtract":
        return _vadd(a, b, -1)
    if a.kind == "a" or b.kind == "a":
        raise _GiveUp("affine operand in non-additive op")
    # Gathers may flow through non-additive ops via the generic
    # resolver; the compile-end ``escaped`` check rejects the program
    # if the state later turns into an (unreduced) RMW accumulator.
    if a.kind == "g":
        a.cell.escaped = True
    if b.kind == "g":
        b.cell.escaped = True
    sym, py = _NP_BIN[op]
    if op == "shift_left":
        if b.kind != "c" or b.const < 0:
            raise _GiveUp("dynamic shift")
        bits = a.bits + b.const
    elif op == "shift_right":
        bits = a.bits
    else:
        # Operands may be negative (subtract chains), so bound by the
        # larger magnitude even for bit_and.
        bits = max(a.bits, b.bits) + (1 if op == "bit_xor" else 0)
    if a.kind == "c" and b.kind == "c":
        if op == "min":
            return _vc(min(a.const, b.const))
        if op == "max":
            return _vc(max(a.const, b.const))
        return _vc(py(a.const, b.const))
    if bits > _MAX_BITS:
        raise _GiveUp("int64 headroom")

    def fn(ctx, _a=a, _b=b, _op=op):
        left = _resolve(_a, ctx)
        right = _resolve(_b, ctx)
        if _op == "min":
            return np.minimum(left, right)
        if _op == "max":
            return np.maximum(left, right)
        if _op == "bit_and":
            return left & right
        if _op == "bit_or":
            return left | right
        if _op == "bit_xor":
            return left ^ right
        if _op == "shift_left":
            return left << right
        return left >> right

    return _vv(fn, bits)


def _vmask(val: _Val, mask: int) -> _Val:
    if val.kind == "a":
        raise _GiveUp("masking an affine value")
    if val.kind == "g":
        # Masking collapses the gather-affine structure; the
        # compile-end ``escaped`` check ensures the observed values
        # are reduced (no RMW accumulation on this state).
        val.cell.escaped = True
    if val.kind == "c":
        return _vc(val.const & mask)
    # The masked result is in [0, mask] regardless of the (possibly
    # negative) input, so the mask width is the bound.
    bits = mask.bit_length()

    def fn(ctx, _v=val, _m=mask):
        return _resolve(_v, ctx) & _m

    return _Val("v", fn=fn, bits=bits)


class _CellState:
    """One constant-index register slot touched by an action body."""

    __slots__ = ("register", "index", "mode", "delta", "over", "has_reads")

    def __init__(self, register, index: int):
        self.register = register
        self.index = index
        self.mode = None  # None | 'a' (v0 + delta) | 'o' (overwritten)
        self.delta: _Val = _vc(0)
        self.over: Optional[_Val] = None
        self.has_reads = False

    def read(self) -> _Val:
        if self.mode == "o":
            return self.over
        self.has_reads = True
        if self.mode is None:
            self.mode = "a"
        return _Val(
            "a", cell=(self.register.name, self.index), delta=self.delta,
            bits=min(_MAX_BITS, self.register.width + 14),
        )


_IN_PROGRESS = object()


class _DynState:
    """One register gathered at a per-lane dynamic index, possibly
    read-modify-written or overwritten at that same index.

    The lane-dimension analogue of :class:`_CellState`: each lane must
    observe the value the scalar engine would have left after all
    *earlier lanes touching the same slot*, which is a segmented
    prefix (stable-sorted by index) instead of a whole-column one.
    Three modes: ``None`` is a pure gather (observed = snapshot),
    ``'a'`` accumulates a delta per lane (ECMP egress counting, sketch
    updates, heartbeat counters), ``'o'`` overwrites the slot with an
    independent value per lane (LinkGuardian's last-seen sequence
    tracking) -- each lane observes the previous same-slot lane's
    masked write."""

    __slots__ = ("register", "idx_val", "mode", "delta", "over",
                 "has_reads", "escaped")

    def __init__(self, register, idx_val: _Val):
        self.register = register
        self.idx_val = idx_val
        self.mode = None  # None | 'a' (slot + delta) | 'o' (overwritten)
        self.delta: _Val = _vc(0)
        self.over: Optional[_Val] = None
        self.has_reads = False
        self.escaped = False

    # ---- compile time ----------------------------------------------------

    def read(self) -> _Val:
        if self.mode == "o":
            # Reads after an overwrite see the lane's own (masked)
            # stored value, exactly like the scalar register file.
            return _vmask(self.over, self.register.mask)
        self.has_reads = True
        return _Val(
            "g", cell=self, delta=self.delta,
            bits=min(_MAX_BITS, self.register.width + 14),
        )

    def write(self, value: _Val) -> None:
        if value.kind == "g" and value.cell is self:
            if self.mode == "o":
                raise _GiveUp("rmw after overwrite")
            if self.register.width > 48:
                # Same headroom rule as constant cells: prefix sums
                # stack unreduced deltas on the raw slot value.
                raise _GiveUp("wide register cell")
            self.mode = "a"
            self.delta = value.delta
            return
        if value.kind in ("a", "g"):
            raise _GiveUp("cross-cell affine write")
        if self.mode == "a":
            raise _GiveUp("overwrite after rmw")
        self.mode = "o"
        self.over = value

    # ---- resolution (prepare phase) --------------------------------------

    def indices(self, ctx):
        memo = ctx["dmemo"]
        key = (id(self), "idx")
        hit = memo.get(key)
        if hit is None:
            indices = _resolve(self.idx_val, ctx)
            if not isinstance(indices, np.ndarray):
                indices = np.full(ctx["n"], indices, np.int64)
            size = len(self.register.values)
            if ((indices < 0) | (indices >= size)).any():
                bad = int(indices[(indices < 0) | (indices >= size)][0])
                raise _Unvectorizable(
                    f"register {self.register.name}: index {bad} "
                    "out of range"
                )
            hit = memo[key] = indices
        return hit

    def _sorted(self, ctx):
        memo = ctx["dmemo"]
        key = (id(self), "sort")
        hit = memo.get(key)
        if hit is None:
            indices = self.indices(ctx)
            n = ctx["n"]
            order = np.argsort(indices, kind="stable")
            sidx = indices[order]
            starts = np.empty(n, bool)
            starts[0] = True
            starts[1:] = sidx[1:] != sidx[:-1]
            hit = memo[key] = (order, sidx, starts)
        return hit

    def observed(self, ctx):
        """Per-lane value a scalar read would have returned, in lane
        order.  Memoized per prepare; the in-progress sentinel catches
        an overwrite value that (transitively) depends on this state's
        own observed values -- a cross-lane recurrence no closed form
        covers, so the table falls back to the scalar sweep."""
        memo = ctx["dmemo"]
        key = (id(self), "obs")
        hit = memo.get(key)
        if hit is _IN_PROGRESS:
            raise _Unvectorizable(
                f"register {self.register.name}: self-referential "
                "overwrite"
            )
        if hit is not None:
            return hit
        memo[key] = _IN_PROGRESS
        value = self._observed(ctx)
        memo[key] = value
        return value

    def _observed(self, ctx):
        register = self.register
        snap = np.array(register.values, np.int64)
        indices = self.indices(ctx)
        n = ctx["n"]
        if self.mode is None or n <= 1:
            return snap[indices]
        order, sidx, starts = self._sorted(ctx)
        if self.mode == "o":
            over = _resolve(self.over, ctx)
            if not isinstance(over, np.ndarray):
                over = np.full(n, over, np.int64)
            prev = np.empty(n, np.int64)
            prev[0] = 0
            prev[1:] = over[order][:-1]
            obs_sorted = np.where(
                starts, snap[sidx], prev & register.mask
            )
        else:  # 'a': segmented exclusive prefix of the deltas
            delta = _resolve(self.delta, ctx)
            if not isinstance(delta, np.ndarray):
                delta = np.full(n, delta, np.int64)
            sd = delta[order]
            cs = np.cumsum(sd)
            excl = cs - sd
            group_start = np.maximum.accumulate(
                np.where(starts, np.arange(n), 0)
            )
            obs_sorted = snap[sidx] + (excl - excl[group_start])
        out = np.empty(n, np.int64)
        out[order] = obs_sorted
        return out

    def commit_plan(self, ctx):
        """``(slots, values, is_add)`` for the final register update:
        per-slot delta totals for RMW states (segmented sums), the
        last lane's value per slot for overwrites."""
        n = ctx["n"]
        order, sidx, starts = self._sorted(ctx)
        ends = np.empty(n, bool)
        ends[-1] = True
        ends[:-1] = starts[1:]
        if self.mode == "o":
            over = _resolve(self.over, ctx)
            if not isinstance(over, np.ndarray):
                values = np.full(int(ends.sum()), int(over), np.int64)
            else:
                values = over[order][ends]
            return sidx[ends].tolist(), values.tolist(), False
        delta = _resolve(self.delta, ctx)
        if not isinstance(delta, np.ndarray):
            delta = np.full(n, delta, np.int64)
        sd = delta[order]
        cs = np.cumsum(sd)
        excl = cs - sd
        group_start = np.maximum.accumulate(np.where(starts, np.arange(n), 0))
        totals = cs[ends] - excl[group_start[ends]]
        return sidx[ends].tolist(), totals.tolist(), True


# ---------------------------------------------------------------------------
# Vectorized action programs


class _VecProgram:
    """A compiled, vectorized action body.

    ``prepare(batch, idx, n, sizes)`` runs every gather, arithmetic
    op, and range check without mutating anything (raising
    :class:`_Unvectorizable` on failure) and returns a zero-argument
    commit closure that applies all effects."""

    __slots__ = ("stores", "cells", "scatters", "counts", "dyns",
                 "stateful")

    def __init__(self, stores, cells, scatters, counts, dyns=()):
        self.stores = stores        # [(key, val, commit_mask)]
        self.cells = cells          # {(reg_name, idx): _CellState}
        self.scatters = scatters    # [(register, idx_val, value_val)]
        self.counts = counts        # [(counter_array, idx_val|int, bytes?)]
        self.dyns = list(dyns)      # [_DynState]
        self.stateful = bool(
            cells or scatters or counts
            or any(state.mode is not None for state in self.dyns)
        )

    def prepare(self, batch: ColumnarBatch, idx, n: int, sizes):
        ctx = {
            "batch": batch, "idx": idx, "n": n, "sizes": sizes,
            "X": {}, "gmemo": {}, "dmemo": {},
        }
        # Register cells: resolve deltas, derive each lane's observed
        # start value (exclusive prefix sum), and the final slot value.
        cell_commits = []
        for key, state in self.cells.items():
            register = state.register
            slot = state.index
            if state.mode == "a":
                v0 = register.values[slot]
                delta = state.delta
                if (max(register.width, delta.bits + n.bit_length()) + 1
                        > _MAX_BITS):
                    raise _Unvectorizable("prefix-sum headroom")
                if delta.kind == "c":
                    step = delta.const
                    if state.has_reads:
                        ctx["X"][key] = v0 + step * np.arange(
                            n, dtype=np.int64
                        )
                    total = step * n
                else:
                    d = _resolve(delta, ctx)
                    cs = np.cumsum(d)
                    if state.has_reads:
                        ctx["X"][key] = v0 + cs - d
                    total = int(cs[-1]) if n else 0
                final = (v0 + total) & register.mask
            elif state.mode == "o":
                value = _resolve(state.over, ctx)
                last = int(value[-1]) if isinstance(
                    value, np.ndarray
                ) else int(value)
                final = last & register.mask
            else:  # read-only cell: no commit
                continue
            cell_commits.append((register, slot, final))
        # Dynamic-index register states: range-check every gather
        # (scalar reads validate even when the value goes unused) and
        # derive segmented per-slot commit plans for the written ones.
        dyn_commits = []
        for state in self.dyns:
            state.indices(ctx)
            if state.mode is None:
                continue
            if state.mode == "a":
                register = state.register
                if (max(register.width,
                        state.delta.bits + n.bit_length()) + 1
                        > _MAX_BITS):
                    raise _Unvectorizable("prefix-sum headroom")
            dyn_commits.append((state.register, state.commit_plan(ctx)))
        # Scatters: validate indices, resolve values, keep the last
        # write per slot (ascending lane order == scalar order).
        scatter_commits = []
        for register, idx_val, value_val in self.scatters:
            indices = _resolve(idx_val, ctx)
            size = len(register.values)
            if ((indices < 0) | (indices >= size)).any():
                bad = int(
                    indices[(indices < 0) | (indices >= size)][0]
                )
                raise _Unvectorizable(
                    f"register {register.name}: index {bad} out of range"
                )
            values = _resolve(value_val, ctx)
            rev = indices[::-1]
            slots, first = np.unique(rev, return_index=True)
            last_pos = n - 1 - first
            if isinstance(values, np.ndarray):
                vals = values[last_pos]
            else:
                vals = np.full(len(slots), values, np.int64)
            scatter_commits.append(
                (register, slots.tolist(), vals.tolist())
            )
        # Counters: pure sums, validated up front.
        count_commits = []
        for array, idx_val, by_bytes in self.counts:
            weights = sizes if by_bytes else None
            if isinstance(idx_val, int):
                if by_bytes:
                    total = int(sizes.sum())
                else:
                    total = n
                count_commits.append((array, [idx_val], [total]))
                continue
            indices = _resolve(idx_val, ctx)
            size = len(array.values)
            if ((indices < 0) | (indices >= size)).any():
                bad = int(
                    indices[(indices < 0) | (indices >= size)][0]
                )
                raise _Unvectorizable(
                    f"register {array.name}: index {bad} out of range"
                )
            if weights is None:
                sums = np.bincount(indices, minlength=size)
            else:
                sums = np.bincount(
                    indices, weights=weights, minlength=size
                ).astype(np.int64)
            slots = np.nonzero(sums)[0]
            count_commits.append(
                (array, slots.tolist(), sums[slots].tolist())
            )
        # Field stores: compute final values now (purely), write later.
        store_commits = []
        for key, val, commit_mask in self.stores:
            value = _resolve(val, ctx)
            if commit_mask is not None:
                value = value & commit_mask
            store_commits.append((key, value))

        def commit() -> None:
            for key, value in store_commits:
                batch.store(key, idx, value)
            for register, slot, final in cell_commits:
                register.values[slot] = final
            for register, (slots, vals, is_add) in dyn_commits:
                if is_add:
                    register.bulk_add(slots, vals)
                else:
                    register.bulk_write(slots, vals)
            for register, slots, vals in scatter_commits:
                register.bulk_write(slots, vals)
            for array, slots, deltas in count_commits:
                array.bulk_add(slots, deltas)

        return commit


class _VecActionCompiler:
    """Lower one resolved ``(action, args)`` pair to a
    :class:`_VecProgram`, or prove it non-vectorizable (``None``)."""

    def __init__(self, pipeline: "ColumnarPipeline", decl: ast.ActionDecl,
                 args: Tuple[int, ...]):
        self.pipeline = pipeline
        self.asic = pipeline.asic
        self.decl = decl
        self.params = dict(zip(decl.params, args))
        self.env: Dict[str, Tuple[_Val, Optional[int]]] = {}
        self.cells: Dict[Tuple[str, int], _CellState] = {}
        self.scatters: List[tuple] = []
        self.counts: List[tuple] = []
        self.dyns: Dict[str, List[_DynState]] = {}
        # Unwritten field reads, cached so two reads of one field are
        # the *same* _Val -- the identity proof behind matching a
        # dynamic register write's index to its gather's index.
        self._reads: Dict[str, _Val] = {}
        # How each register is used in this body; mixing kinds on one
        # register defeats the per-kind soundness arguments.
        self.reg_use: Dict[str, str] = {}

    def compile(self) -> Optional[_VecProgram]:
        if len(self.decl.params) != len(self.params):
            return None
        try:
            for call in self.decl.body:
                self._call(call)
            for states in self.dyns.values():
                for state in states:
                    if state.escaped and state.mode == "a":
                        # The gather's observed values leaked into a
                        # non-additive context (mask, hash, bitwise
                        # op), but RMW observed values are unreduced
                        # prefix sums -- only additive flows commute
                        # with the register's per-write masking.
                        raise _GiveUp("gather rmw escapes additive flow")
        except _GiveUp:
            return None
        stores = [
            (key, val, mask) for key, (val, mask) in self.env.items()
        ]
        dyns = [
            state for states in self.dyns.values() for state in states
        ]
        return _VecProgram(
            stores, self.cells, self.scatters, self.counts, dyns
        )

    # ---- helpers --------------------------------------------------------

    def _use_register(self, name: str, kind: str):
        prior = self.reg_use.setdefault(name, kind)
        if prior != kind:
            raise _GiveUp(f"mixed register access on {name}")

    def _const(self, arg) -> Optional[int]:
        if isinstance(arg, int):
            return arg
        if isinstance(arg, str):
            if arg not in self.params:
                raise _GiveUp(f"unresolved parameter {arg}")
            return self.params[arg]
        return None

    def _value(self, arg) -> _Val:
        const = self._const(arg)
        if const is not None:
            return _vc(const)
        if isinstance(arg, ast.FieldRef):
            return self._read_field(f"{arg.header}.{arg.field}")
        raise _GiveUp(f"unsupported argument {arg!r}")

    def _read_field(self, key: str) -> _Val:
        hit = self.env.get(key)
        if hit is not None:
            return hit[0]
        cached = self._reads.get(key)
        if cached is not None:
            return cached
        mask = self.asic.field_masks.get(key)
        if mask is None:
            raise _GiveUp(f"unknown field width for {key}")
        bits = mask.bit_length()
        if bits > _MAX_BITS:
            raise _GiveUp("wide field")

        def fn(ctx, _key=key):
            memo = ctx["gmemo"]
            arr = memo.get(_key)
            if arr is None:
                col = ctx["batch"].col(_key)
                idx = ctx["idx"]
                arr = memo[_key] = col if idx is None else col[idx]
            return arr

        val = self._reads[key] = _vv(fn, bits)
        return val

    def _store_field(self, arg, val: _Val) -> None:
        if not isinstance(arg, ast.FieldRef):
            raise _GiveUp("destination is not a field")
        key = f"{arg.header}.{arg.field}"
        mask = self.asic.field_masks.get(key)
        if mask is None:
            raise _GiveUp(f"unknown field width for {key}")
        if val.kind == "a":
            cell_reg = self.cells[val.cell].register
            if mask != cell_reg.mask:
                raise _GiveUp("affine store under a different mask")
            self.env[key] = (val, mask)
        elif val.kind == "g" and mask == val.cell.register.mask:
            # Same-width store keeps the gather-affine structure (the
            # commit mask distributes over the additive chain), so a
            # later register_write of this field still reads as RMW.
            self.env[key] = (val, mask)
        else:
            self.env[key] = (_vmask(val, mask), None)

    def _cell(self, register, index: int) -> _CellState:
        if register.width > 48:
            # Leave headroom for a full batch of prefix-summed deltas
            # on top of the unreduced cell value.
            raise _GiveUp("wide register cell")
        self._use_register(register.name, "cell")
        key = (register.name, index)
        state = self.cells.get(key)
        if state is None:
            state = self.cells[key] = _CellState(register, index)
        return state

    # ---- one primitive --------------------------------------------------

    def _call(self, call: ast.PrimitiveCall) -> None:
        name = call.name
        args = call.args
        if name == "no_op":
            return
        if name == "drop":
            self.env[_DROP] = (_vc(1), None)
            return
        if name in _FLAG_KEYS:
            self.env[_FLAG_KEYS[name]] = (_vc(1), None)
            return
        if name == "modify_field":
            value = self._value(args[1])
            if len(args) > 2:
                value = _vbin("bit_and", value, self._value(args[2]))
            self._store_field(args[0], value)
            return
        if name in ("add", "subtract", "bit_and", "bit_or", "bit_xor",
                    "shift_left", "shift_right", "min", "max"):
            value = _vbin(name, self._value(args[1]), self._value(args[2]))
            self._store_field(args[0], value)
            return
        if name in ("add_to_field", "subtract_from_field"):
            if not isinstance(args[0], ast.FieldRef):
                raise _GiveUp("destination is not a field")
            current = self._read_field(f"{args[0].header}.{args[0].field}")
            sign = 1 if name == "add_to_field" else -1
            self._store_field(args[0], _vadd(current, self._value(args[1]),
                                             sign))
            return
        if name == "register_read":
            register = self.asic.get_register(args[1])
            index = self._const(args[2])
            if index is not None:
                if not 0 <= index < len(register.values):
                    raise _GiveUp("constant register index out of range")
                self._store_field(args[0], self._cell(register, index).read())
                return
            if register.width > _MAX_BITS:
                raise _GiveUp("wide register gather")
            self._use_register(register.name, "dyn")
            idx_val = self._value(args[2])
            if idx_val.kind in ("a", "g"):
                raise _GiveUp("affine gather index")
            states = self.dyns.setdefault(register.name, [])
            for state in states:
                if state.idx_val is idx_val:
                    break
            else:
                state = _DynState(register, idx_val)
                states.append(state)
            self._store_field(args[0], state.read())
            return
        if name == "register_write":
            register = self.asic.get_register(args[0])
            value = self._value(args[2])
            index = self._const(args[1])
            if index is not None:
                if not 0 <= index < len(register.values):
                    raise _GiveUp("constant register index out of range")
                state = self._cell(register, index)
                if value.kind == "a":
                    if value.cell != (register.name, index):
                        raise _GiveUp("cross-cell affine write")
                    state.mode = "a"
                    state.delta = value.delta
                else:
                    if state.has_reads:
                        raise _GiveUp("overwrite after read")
                    state.mode = "o"
                    state.over = value
                return
            states = self.dyns.get(register.name)
            if states:
                # The register was gathered earlier in this body: the
                # write must hit the *same* per-lane slots to lower as
                # a segmented RMW/overwrite.
                self._use_register(register.name, "dyn")
                if len(states) > 1:
                    raise _GiveUp("write across multiple gather sites")
                idx_val = self._value(args[1])
                if idx_val is not states[0].idx_val:
                    raise _GiveUp("gather/write index mismatch")
                states[0].write(value)
                return
            self._use_register(register.name, "scatter")
            for existing, _i, _v in self.scatters:
                if existing is register:
                    raise _GiveUp("double scatter on one register")
            if value.kind == "a":
                cell_reg = self.cells[value.cell].register
                if register.mask & cell_reg.mask != register.mask:
                    raise _GiveUp("widening affine scatter")
            elif value.kind == "g":
                if (register.mask & value.cell.register.mask
                        != register.mask):
                    raise _GiveUp("widening affine scatter")
            idx_val = self._value(args[1])
            if idx_val.kind in ("a", "g"):
                raise _GiveUp("affine scatter index")
            self.scatters.append((register, idx_val, value))
            return
        if name == "count":
            counter = self.asic.get_counter(args[0])
            by_bytes = counter.counter_type == "bytes"
            index = self._const(args[1])
            if index is not None:
                if not 0 <= index < len(counter.array.values):
                    raise _GiveUp("constant counter index out of range")
                self.counts.append((counter.array, index, by_bytes))
                return
            idx_val = self._value(args[1])
            if idx_val.kind == "a":
                raise _GiveUp("affine counter index")
            self.counts.append((counter.array, idx_val, by_bytes))
            return
        if name == "modify_field_with_hash_based_offset":
            self._hash(args)
            return
        # RNG and anything unrecognized keep scalar semantics.
        raise _GiveUp(f"non-vectorizable primitive {name}")

    def _hash(self, args) -> None:
        """``modify_field_with_hash_based_offset(dst, base, calc,
        size)``: hash the calculation's field-list columns with the
        cached batch variant of the algorithm, mirroring
        :meth:`CompiledPipeline._compile_hash` (same width derivation,
        same truncate-then-modulus order)."""
        program = self.asic.program
        calc = program.field_list_calcs.get(args[2])
        if calc is None:
            raise _GiveUp(f"unknown field_list_calculation {args[2]!r}")
        base = self._value(args[1])
        size = self._const(args[3])
        if size is None:
            raise _GiveUp("packet-dependent hash modulus")
        inputs: List[_Val] = []
        widths: List[int] = []
        for list_name in calc.inputs:
            field_list = program.field_lists.get(list_name)
            if field_list is None:
                raise _GiveUp(f"unknown field_list {list_name!r}")
            for ref in field_list.entries:
                if not isinstance(ref, ast.FieldRef):
                    raise _GiveUp("non-field hash input")
                field_key = f"{ref.header}.{ref.field}"
                width_mask = self.asic.field_masks.get(
                    field_key, (1 << 32) - 1
                )
                value = self._read_field(field_key)
                if value.kind == "a":
                    raise _GiveUp("affine hash input")
                if value.kind == "g":
                    value.cell.escaped = True
                inputs.append(value)
                widths.append(width_mask.bit_length())
        hash_fn = vector_hash_fn(calc.algorithm, tuple(widths))
        if hash_fn is None:
            raise _GiveUp(f"non-vectorizable hash {calc.algorithm!r}")
        out_mask = (1 << calc.output_width) - 1
        bits = (
            max(1, (size - 1).bit_length()) if size else calc.output_width
        )

        def fn(ctx, _inputs=tuple(inputs), _fn=hash_fn, _m=out_mask,
               _size=size):
            n = ctx["n"]
            columns = []
            for val in _inputs:
                column = _resolve(val, ctx)
                if not isinstance(column, np.ndarray):
                    column = np.full(n, column, np.int64)
                columns.append(column)
            hashed = _fn(columns) & _m
            return hashed % _size if _size else hashed

        self._store_field(args[0], _vadd(_vv(fn, bits), base))


# ---------------------------------------------------------------------------
# Per-table sweeps


class _TableSweep:
    """One table's columnar sweep over a batch.

    Resolves match groups vectorially, runs a vectorized program per
    group when the lowering is sound, drains non-vectorizable lanes
    through the scalar fused steps in lane order, and downgrades the
    whole table to the scalar op-major sweep when per-lane order could
    become observable (more than one group touching cross-packet
    state) or a run-time check fails."""

    def __init__(self, pipeline: "ColumnarPipeline", runtime):
        self.pipeline = pipeline
        self.runtime = runtime
        self.scalar_major = pipeline._compile_major_apply(runtime)
        self.name = runtime.decl.name
        reads = runtime.decl.reads
        self.keyless = not reads
        self.parts: List[tuple] = []
        self.packable = True
        total_bits = 0
        for read, width in zip(reads, runtime.key_widths):
            if read.match_type is ast.MatchType.VALID:
                self.parts.append(("valid", read.ref.header, width, None))
            else:
                ref = read.ref
                self.parts.append(
                    ("field", f"{ref.header}.{ref.field}", width, read.mask)
                )
            total_bits += width
        if total_bits > _MAX_BITS:
            self.packable = False
        self._index_gen = -1
        self._index = None

    # ---- entry index ----------------------------------------------------

    def _entry_index(self):
        runtime = self.runtime
        if runtime.generation != self._index_gen:
            self._index_gen = runtime.generation
            packed_entries = []
            usable = True
            for key_tuple, entry in runtime._exact_index.items():
                packed = 0
                for part, (_kind, _k, width, _m) in zip(
                    key_tuple, self.parts
                ):
                    value = int(part)
                    if not 0 <= value < (1 << width):
                        usable = False
                        break
                    packed = (packed << width) | value
                if not usable:
                    break
                packed_entries.append((packed, entry))
            if not usable:
                self._index = None
            else:
                packed_entries.sort(key=lambda pair: pair[0])
                keys = np.fromiter(
                    (pk for pk, _e in packed_entries), np.int64,
                    count=len(packed_entries),
                )
                entries = [e for _pk, e in packed_entries]
                self._index = (keys, entries)
        return self._index

    def _pack(self, batch: ColumnarBatch, idx):
        """The packed int64 key per live lane plus an out-of-range
        mask (lanes whose raw field values exceed the key width can
        never match an in-range entry -- they miss)."""
        packed = None
        oor = None
        for kind, key, width, premask in self.parts:
            if kind == "valid":
                col = batch.valid_col(key)
            else:
                col = batch.col(key)
            part = col if idx is None else col[idx]
            if premask is not None:
                part = part & premask
            bad = (part < 0) | (part >= (1 << width))
            oor = bad if oor is None else (oor | bad)
            part = part & ((1 << width) - 1)
            packed = part if packed is None else (
                (packed << width) | part
            )
        return packed, oor

    # ---- group resolution -----------------------------------------------

    def _resolve_groups(self, batch, idx, count):
        """``[(entry_or_None, lane_idx_or_None, lane_count)]`` covering
        every live lane; ``None`` entry means miss (default action),
        ``None`` idx means "all live lanes" (only when live == all)."""
        index = self._entry_index()
        if index is None:
            return None  # oversized entry keys: scalar sweep
        keys, entries = index
        if self.keyless:
            entry = self.runtime._exact_index.get(())
            return [(entry, idx, count)]
        if len(entries) == 0:
            return [(None, idx, count)]
        packed, oor = self._pack(batch, idx)
        if len(entries) <= _SCAN_ENTRIES:
            remaining = None
            groups = []
            for pk, entry in zip(keys.tolist(), entries):
                hit = packed == pk
                if oor is not None:
                    hit &= ~oor
                matched = int(hit.sum())
                if not matched:
                    continue
                groups.append((entry, hit, matched))
                remaining = ~hit if remaining is None else (
                    remaining & ~hit
                )
        else:
            positions = np.searchsorted(keys, packed)
            positions[positions >= len(entries)] = 0
            hit_mask = keys[positions] == packed
            if oor is not None:
                hit_mask &= ~oor
            groups = []
            remaining = ~hit_mask
            if hit_mask.any():
                matched_pos = positions[hit_mask]
                for pos in np.unique(matched_pos):
                    local = hit_mask & (positions == pos)
                    groups.append((entries[pos], local, int(local.sum())))
        miss_count = count - sum(g[2] for g in groups)
        if miss_count:
            if remaining is None:
                remaining = np.ones(count, bool)
            groups.append((None, remaining, miss_count))
        # Convert local masks to global lane indices (single full
        # group keeps idx=None for whole-column ops).
        out = []
        for entry, mask, n_lanes in groups:
            if mask is None or not isinstance(mask, np.ndarray):
                out.append((entry, mask, n_lanes))
            elif n_lanes == count and idx is None:
                out.append((entry, None, n_lanes))
            else:
                local = np.nonzero(mask)[0]
                out.append(
                    (entry,
                     local if idx is None else idx[local],
                     n_lanes)
                )
        return out

    # ---- execution ------------------------------------------------------

    def run(self, st: "_SweepState", sel=None) -> None:
        batch = st.batch
        idx, count = st.live(sel)
        if count == 0:
            return
        if not self.packable:
            self._run_scalar(st, idx, count, "unpackable")
            return
        try:
            groups = self._resolve_groups(batch, idx, count)
        except _Unvectorizable:
            groups = None
        if groups is None:
            self._run_scalar(st, idx, count, "unpackable")
            return
        pipeline = self.pipeline
        runtime = self.runtime
        plans = []
        stateful = 0
        for entry, g_idx, g_count in groups:
            if entry is None:
                default = runtime.default_action
                action, args = default if default else (None, ())
                matched = False
            else:
                action = entry.action_name
                args = entry.action_args
                matched = True
            program = pipeline.vec_program(action, tuple(args))
            if program is None:
                resources = (
                    set() if action is None
                    else pipeline._action_resources(action)
                )
                is_stateful = resources is None or bool(
                    resources - {"recirc"}
                )
            else:
                is_stateful = program.stateful
            if is_stateful:
                stateful += 1
            plans.append(
                (matched, action, args, program, g_idx, g_count)
            )
        if stateful > 1:
            # Two groups interleave on shared state: only the scalar
            # sweep preserves lane order across groups.
            self._run_scalar(st, idx, count, "shared-state-groups")
            return
        # Prepare every vectorized group before committing anything,
        # so a run-time bail-out leaves no partial effects.
        commits = []
        drains = []
        try:
            for matched, action, args, program, g_idx, g_count in plans:
                if program is None:
                    drains.append((matched, action, args, g_idx, g_count))
                    continue
                commit = program.prepare(
                    batch, g_idx, g_count,
                    st.sizes if g_idx is None else st.sizes[g_idx],
                )
                commits.append((matched, g_count, commit))
        except _Unvectorizable:
            self._run_scalar(st, idx, count, "runtime-check")
            return
        hits = 0
        misses = 0
        for matched, g_count, commit in commits:
            commit()
            if matched:
                hits += g_count
            else:
                misses += g_count
        if drains:
            hits, misses = self._drain(st, drains, hits, misses)
        runtime.hits += hits
        runtime.misses += misses

    def _run_scalar(self, st: "_SweepState", idx, count,
                    reason: str) -> None:
        """Whole-table fallback: flush columns, run the op-major scalar
        sweep (its own hit/miss accounting) over the selected lanes,
        re-materialize."""
        st.mark_fallback(idx, count, f"table:{self.name}:{reason}")
        batch = st.batch
        batch.flush()
        packets = batch.ensure_packets()
        if idx is not None and count != batch.n:
            packets = [packets[int(lane)] for lane in idx]
        self.scalar_major(packets)
        batch.resync()

    def _drain(self, st: "_SweepState", drains, hits: int,
               misses: int) -> Tuple[int, int]:
        """Per-lane scalar execution for non-vectorizable groups, in
        ascending lane order (at most one such group touches
        cross-packet state, so interleaving with the already-committed
        vector groups is unobservable)."""
        batch = st.batch
        packets = batch.ensure_packets()
        resolve_steps = self.pipeline._resolve_steps
        lanes: List[tuple] = []
        for matched, action, args, g_idx, g_count in drains:
            if action is None:
                steps: tuple = ()
            else:
                steps = resolve_steps(action, list(args))
            if g_idx is None:
                g_idx = range(batch.n)
            for lane in g_idx:
                lanes.append((int(lane), matched, steps, args))
        lanes.sort(key=lambda item: item[0])
        st.mark_fallback(
            np.fromiter((l[0] for l in lanes), np.int64, count=len(lanes)),
            len(lanes), f"drain:{self.name}",
        )
        for lane, matched, steps, args in lanes:
            if matched:
                hits += 1
            else:
                misses += 1
            batch.lane_flush(lane)
            packet = packets[lane]
            for step in steps:
                step(args, packet)
            batch.lane_resync(lane)
        return hits, misses


class _CondSweep:
    """A control-level ``if``/``else``: evaluate the condition over
    the live lanes once (it is a pure function of per-lane fields, so
    evaluation order relative to the arms is unobservable) and run
    each arm's sweeps restricted to its lane subset.  Running every
    then-lane before any else-lane is sound for the same reason the
    op-major reordering is: all reachable tables have pairwise
    disjoint cross-packet footprints."""

    def __init__(self, cond_fn, then_sweeps, else_sweeps):
        self.cond_fn = cond_fn
        self.then_sweeps = then_sweeps
        self.else_sweeps = else_sweeps

    def run(self, st: "_SweepState", sel=None) -> None:
        idx, count = st.live(sel)
        if count == 0:
            return
        truth = self.cond_fn(st.batch, idx)
        n = st.batch.n
        if self.then_sweeps:
            then_mask = np.zeros(n, bool)
            if idx is None:
                then_mask[:] = truth
            else:
                then_mask[idx] = truth
            if then_mask.any():
                for sweep in self.then_sweeps:
                    sweep.run(st, then_mask)
        if self.else_sweeps:
            else_mask = np.zeros(n, bool)
            if idx is None:
                else_mask[:] = ~truth
            else:
                else_mask[idx] = ~truth
            if else_mask.any():
                for sweep in self.else_sweeps:
                    sweep.run(st, else_mask)


class _SweepState:
    """Per-batch bookkeeping shared by the sweeps: live-lane
    recomputation and fallback accounting."""

    __slots__ = ("batch", "sizes", "fallback", "reasons")

    def __init__(self, batch: ColumnarBatch, reasons: Dict[str, int]):
        self.batch = batch
        self.sizes = batch.sizes
        self.fallback = np.zeros(batch.n, bool)
        self.reasons = reasons

    def live(self, sel=None):
        drop = self.batch.col(_DROP)
        if sel is None:
            if not drop.any():
                return None, self.batch.n
            live = np.nonzero(drop == 0)[0]
            return live, len(live)
        live = np.nonzero(sel & (drop == 0))[0]
        return live, len(live)

    def mark_fallback(self, idx, count: int, reason: str) -> None:
        if count:
            if idx is None:
                self.fallback[:] = True
            else:
                self.fallback[idx] = True
            self.reasons[reason] = self.reasons.get(reason, 0) + count


# ---------------------------------------------------------------------------
# The engine


class ColumnarPipeline(CompiledPipeline):
    """Compiled engine plus columnar batch plans.

    Inherits every scalar path (per-packet closures, fused batch
    plans, op-major sweeps) so any burst the vectorizer cannot take
    still executes with compiled-engine semantics."""

    def __init__(self, asic, rng=None, profile=None):
        require_numpy()
        super().__init__(asic, rng=rng, profile=profile)
        self._vec_programs: Dict[Tuple[Optional[str], tuple], object] = {}
        self.fallback_counts: Dict[str, int] = {}
        self._columnar_plans: Dict[str, Optional[List[_TableSweep]]] = {}
        if profile is None:
            self._columnar_plans["ingress"] = self._build_columnar(
                asic.program.controls.get("ingress")
            )
            self._columnar_plans["egress"] = self._build_columnar_egress(
                asic.program.controls.get("egress")
            )

    def _build_columnar(self, decl) -> Optional[List[object]]:
        # Columnar execution is op-major execution: straight-line
        # bodies admit exactly what the op-major analysis proved safe.
        if self._batch_major_plans.get("ingress") is not None:
            body = decl.body if decl is not None else []
            return [
                _TableSweep(self, self.asic.tables[stmt.table])
                for stmt in body
            ]
        return self._build_columnar_conditional(decl)

    def _build_columnar_conditional(self, decl) -> Optional[List[object]]:
        """Columnar-only admission for ingress bodies with a single
        level of control-flow ``if``/``else`` (which the op-major
        analysis rejects outright).  Masked-select execution is sound
        under the same footprint argument: each lane executes exactly
        one arm, the condition is a pure function of that lane's
        fields, and every *reachable* table -- arms included -- must
        have a cross-packet footprint disjoint from every other's
        (egress folded in as one combined footprint, recirculation
        only ever alone)."""
        if decl is None or not any(
            isinstance(stmt, ast.IfBlock) for stmt in decl.body
        ):
            return None
        try:
            sweeps, runtimes = self._lower_control(decl.body)
        except _GiveUp:
            return None
        footprints = []
        for runtime in runtimes:
            resources = self._table_resources(runtime)
            if resources is None:
                return None
            footprints.append(resources)
        egress_decl = self.asic.program.controls.get("egress")
        egress_resources: set = set()
        if egress_decl is not None:
            for table_name in _tables_in(egress_decl.body):
                runtime = self.asic.tables.get(table_name)
                if runtime is None:
                    return None
                resources = self._table_resources(runtime)
                if resources is None:
                    return None
                egress_resources |= resources
        footprints.append(egress_resources)
        shared: set = set()
        for resources in footprints:
            if resources & shared:
                return None
            shared |= resources
        if "recirc" in shared and shared != {"recirc"}:
            return None
        return sweeps

    def _lower_control(self, body, nested=False):
        """Lower a statement list to sweeps, collecting every
        reachable table runtime; :class:`_GiveUp` on non-exact tables,
        nested conditionals, or non-vectorizable conditions."""
        sweeps: List[object] = []
        runtimes = []
        for stmt in body:
            if isinstance(stmt, ast.ApplyCall):
                runtime = self.asic.tables.get(stmt.table)
                if runtime is None or not runtime._exact_only:
                    raise _GiveUp("non-exact table")
                runtimes.append(runtime)
                sweeps.append(_TableSweep(self, runtime))
            elif isinstance(stmt, ast.IfBlock) and not nested:
                cond_fn = self._compile_vec_cond(stmt.cond)
                if cond_fn is None:
                    raise _GiveUp("non-vectorizable condition")
                then_sweeps, then_rts = self._lower_control(
                    stmt.then_body, nested=True
                )
                else_sweeps, else_rts = self._lower_control(
                    stmt.else_body or [], nested=True
                )
                runtimes += then_rts + else_rts
                sweeps.append(
                    _CondSweep(cond_fn, then_sweeps, else_sweeps)
                )
            else:
                raise _GiveUp("unsupported control statement")
        return sweeps, runtimes

    def _compile_vec_cond(self, expr):
        """Lower a control-flow condition to ``fn(batch, idx) -> bool
        array`` with the interpreter's exact semantics (comparisons
        and connectives produce 0/1, arithmetic is unbounded -- so
        int64 headroom is tracked like the action compiler does), or
        ``None`` outside the vectorizable subset.  Malleable refs
        raise at run time in the scalar engines, so they stay scalar
        here too."""
        try:
            value, _bits = self._vec_cond_value(expr)
        except _GiveUp:
            return None

        def fn(batch, idx, _v=value):
            out = _v(batch, idx) if callable(_v) else _v
            if isinstance(out, np.ndarray):
                return out != 0
            n = batch.n if idx is None else len(idx)
            return np.full(n, bool(out))

        return fn

    def _vec_cond_value(self, expr):
        """``(fn(batch, idx) -> ndarray | int, bits)`` for one
        condition operand."""
        if isinstance(expr, int):
            return expr, max(1, expr.bit_length())
        if isinstance(expr, ast.FieldRef):
            key = f"{expr.header}.{expr.field}"
            mask = self.asic.field_masks.get(key)
            if mask is None:
                raise _GiveUp(f"unknown field width for {key}")

            def field_fn(batch, idx, _k=key):
                col = batch.col(_k)
                return col if idx is None else col[idx]

            return field_fn, mask.bit_length()
        if isinstance(expr, ast.ValidRef):

            def valid_fn(batch, idx, _h=expr.header):
                col = batch.valid_col(_h)
                return col if idx is None else col[idx]

            return valid_fn, 1
        if isinstance(expr, ast.BinOp):
            return self._vec_cond_binop(expr)
        raise _GiveUp(f"non-vectorizable condition operand {expr!r}")

    def _vec_cond_binop(self, expr):
        op = expr.op
        left, lbits = self._vec_cond_value(expr.left)
        right, rbits = self._vec_cond_value(expr.right)
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            bits = 1
        elif op in ("+", "-"):
            bits = max(lbits, rbits) + 1
        elif op in ("&", "|", "^"):
            bits = max(lbits, rbits) + (1 if op == "^" else 0)
        elif op == "<<":
            if not isinstance(right, int) or right < 0:
                raise _GiveUp("dynamic shift in condition")
            bits = lbits + right
        elif op == ">>":
            bits = lbits
        else:
            raise _GiveUp(f"unknown condition operator {op!r}")
        if bits > _MAX_BITS:
            raise _GiveUp("int64 headroom in condition")

        def fn(batch, idx, _l=left, _r=right, _op=op):
            lv = _l(batch, idx) if callable(_l) else _l
            rv = _r(batch, idx) if callable(_r) else _r
            if _op == "==":
                return (lv == rv).astype(np.int64)
            if _op == "!=":
                return (lv != rv).astype(np.int64)
            if _op == "<":
                return (lv < rv).astype(np.int64)
            if _op == "<=":
                return (lv <= rv).astype(np.int64)
            if _op == ">":
                return (lv > rv).astype(np.int64)
            if _op == ">=":
                return (lv >= rv).astype(np.int64)
            if _op == "&&":
                return ((lv != 0) & (rv != 0)).astype(np.int64)
            if _op == "||":
                return ((lv != 0) | (rv != 0)).astype(np.int64)
            if _op == "+":
                return lv + rv
            if _op == "-":
                return lv - rv
            if _op == "&":
                return lv & rv
            if _op == "|":
                return lv | rv
            if _op == "^":
                return lv ^ rv
            if _op == "<<":
                return lv << rv
            return lv >> rv

        return fn, bits

    def _build_columnar_egress(self, decl) -> Optional[List[object]]:
        """Egress sweeps, or ``None`` when egress must stay
        packet-major (nested branches, non-exact tables, or egress
        tables sharing cross-packet state *with each other* -- the
        ingress admission only proved them disjoint from ingress)."""
        if self._columnar_plans.get("ingress") is None:
            return None
        if decl is None or not decl.body:
            return []
        try:
            sweeps, runtimes = self._lower_control(decl.body)
        except _GiveUp:
            return None
        seen: set = set()
        for runtime in runtimes:
            resources = self._table_resources(runtime)
            if resources is None or resources & seen:
                return None
            seen |= resources
        return sweeps

    def columnar_ops(
        self, control_name: str
    ) -> Optional[List[_TableSweep]]:
        """The columnar plan for one control block, or ``None`` when
        the burst must take a scalar path (profiling, or op-major
        inadmissible)."""
        if self.profile is not None:
            return None
        return self._columnar_plans.get(control_name)

    def vec_program(
        self, action_name: Optional[str], args: tuple
    ) -> Optional[_VecProgram]:
        """The vectorized program for a resolved (action, args) pair;
        cached -- like the fused runners, the lowering depends only on
        the action declaration and stable ASIC containers."""
        key = (action_name, args)
        hit = self._vec_programs.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        if action_name is None:
            program: Optional[_VecProgram] = _VecProgram([], {}, [], [])
        else:
            decl = self.asic.program.actions.get(action_name)
            if decl is None or len(decl.params) != len(args):
                program = None
            else:
                program = _VecActionCompiler(self, decl, args).compile()
        self._vec_programs[key] = program
        return program

    def count_fallback(self, reason: str, lanes: int) -> None:
        self.fallback_counts[reason] = (
            self.fallback_counts.get(reason, 0) + lanes
        )


_MISSING = object()
