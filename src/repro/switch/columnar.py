"""Columnar (struct-of-arrays) batch engine.

:class:`ColumnarPipeline` is the third execution engine
(``MANTIS_PIPELINE=columnar``): it executes a burst of packets as a
handful of numpy array operations instead of per-packet Python.  The
model is the Packet Transactions wide-word machine -- compile the whole
match-action program against a vector of packets, so table k sweeps
every lane before table k+1 sees any:

- a :class:`ColumnarBatch` holds one ``int64`` column per
  ``"instance.field"`` key, materialized lazily from ``Packet`` dicts
  (or sliced from a :class:`ColumnarPool` with no per-packet work at
  all) and written back only for lanes a sweep actually wrote;
- exact-match lookup packs each table's key fields into one ``int64``
  and resolves entries via equality scans (few entries) or
  ``np.searchsorted`` against a sorted key index cached per
  :attr:`TableRuntime.generation`;
- action bodies lower to vectorized programs: field stores become
  masked column assignments, constant-index register read-modify-write
  chains become prefix sums (each lane observes the running value the
  scalar engine would have produced), dynamic-index register writes
  become last-wins scatters, and counters become ``np.bincount``;
- every program splits into a pure *prepare* phase (gathers, range
  validation -- may raise :class:`_Unvectorizable`) and a *commit*
  phase, so a lowering that proves unsound at run time downgrades to
  the scalar op-major sweep with no partial effects.

Lanes or whole tables that hit non-vectorizable features (RNG, hashes,
dynamic register read-modify-write, non-exact matches, recirculation
re-entry) drain through the existing scalar fused path, so the engine
is always semantically total; the fallback counters in
:attr:`ColumnarPipeline.fallback_counts` say how often and why.

Admission reuses :meth:`CompiledPipeline.batch_major_ops`: columnar
execution is op-major execution, so it is sound exactly when the
op-major reordering is (straight-line exact-only ingress with
pairwise-disjoint cross-packet footprints).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.compiled import CompiledPipeline, _FLAG_KEYS
from repro.switch.packet import (
    Packet,
    PacketTemplate,
    collect_template_columns,
)

HAVE_NUMPY = np is not None

_DROP = "standard_metadata.drop_flag"
_SPEC = "standard_metadata.egress_spec"
_RECIRC = "standard_metadata.recirculate_flag"

# Conservative bit budget: every intermediate must fit int64 with
# headroom for prefix sums over a full batch.
_MAX_BITS = 62
# Entry counts up to this size match via per-entry equality scans
# (cheaper than sort+searchsorted for the sparse tables Mantis installs).
_SCAN_ENTRIES = 8


def require_numpy() -> None:
    if not HAVE_NUMPY:
        raise SwitchError(
            "the columnar engine requires numpy (MANTIS_PIPELINE=columnar); "
            "install numpy>=1.22 or select the compiled/interpreter engine"
        )


class _Unvectorizable(Exception):
    """A lowering that looked sound at compile time failed a run-time
    check (index range, int64 headroom).  Raised only from *prepare*
    phases, before any state mutation, so the caller can rerun the
    whole table through the scalar sweep."""


class _GiveUp(Exception):
    """Compile-time bail-out: the action body is outside the
    vectorizable subset."""


# ---------------------------------------------------------------------------
# Struct-of-arrays batch


class ColumnarBatch:
    """One burst of packets as parallel ``int64`` columns.

    Backed either by a list of :class:`Packet` objects (columns
    materialize from and flush back to their field dicts) or by a
    :class:`ColumnarPool` slice (columns are array copies; packets are
    materialized only if a scalar fallback needs them)."""

    __slots__ = (
        "n", "sizes", "packets", "templates", "_pool_cols", "_pool_valid",
        "_offset", "cols", "written",
    )

    def __init__(self, n: int, sizes, packets=None, templates=None,
                 pool_cols=None, pool_valid=None, offset=0):
        self.n = n
        self.sizes = sizes
        self.packets: Optional[List[Packet]] = packets
        self.templates: Optional[List[PacketTemplate]] = templates
        self._pool_cols = pool_cols
        self._pool_valid = pool_valid
        self._offset = offset
        self.cols: Dict[str, "np.ndarray"] = {}
        self.written: Dict[str, "np.ndarray"] = {}

    @classmethod
    def from_packets(cls, packets: List[Packet]) -> "ColumnarBatch":
        require_numpy()
        sizes = np.fromiter(
            (p.size_bytes for p in packets), np.int64, count=len(packets)
        )
        return cls(len(packets), sizes, packets=list(packets))

    # ---- columns --------------------------------------------------------

    def col(self, key: str) -> "np.ndarray":
        arr = self.cols.get(key)
        if arr is None:
            if self.packets is not None:
                try:
                    arr = np.fromiter(
                        (p.fields.get(key, 0) for p in self.packets),
                        np.int64, count=self.n,
                    )
                except OverflowError:
                    raise _Unvectorizable(f"field {key} exceeds int64")
            else:
                pooled = self._pool_cols.get(key)
                if pooled is None:
                    arr = np.zeros(self.n, np.int64)
                else:
                    arr = pooled[self._offset:self._offset + self.n].copy()
            self.cols[key] = arr
        return arr

    def valid_col(self, header: str) -> "np.ndarray":
        if self.packets is not None:
            return np.fromiter(
                (1 if header in p.valid_headers else 0
                 for p in self.packets),
                np.int64, count=self.n,
            )
        pooled = self._pool_valid.get(header)
        if pooled is None:
            return np.zeros(self.n, np.int64)
        return pooled[self._offset:self._offset + self.n].astype(np.int64)

    def store(self, key: str, idx, values) -> None:
        """Write ``values`` into lanes ``idx`` (``None`` = all lanes)
        and remember which lanes were written, so flush-back creates
        exactly the dict keys the scalar engine would have."""
        col = self.col(key)
        mask = self.written.get(key)
        if mask is None:
            mask = self.written[key] = np.zeros(self.n, bool)
        if idx is None:
            col[:] = values
            mask[:] = True
        else:
            col[idx] = values
            mask[idx] = True

    # ---- scalar-fallback boundary ---------------------------------------

    def ensure_packets(self) -> List[Packet]:
        """Materialize real packets (pool-backed batches only): one
        re-initialized packet per template plus every vector write so
        far.  After this the batch behaves like a packet-backed one."""
        if self.packets is None:
            packets = [Packet().reinit(t) for t in self.templates]
            for key, mask in self.written.items():
                col = self.cols[key]
                vals = col.tolist()
                for lane, hit in enumerate(mask.tolist()):
                    if hit:
                        packets[lane].fields[key] = vals[lane]
            self.packets = packets
        return self.packets

    def flush(self) -> None:
        """Write vector results back into the packet dicts (written
        lanes only -- untouched lanes keep their exact dict state)."""
        if self.packets is None:
            self.ensure_packets()
            return
        packets = self.packets
        for key, mask in self.written.items():
            vals = self.cols[key].tolist()
            for lane, hit in enumerate(mask.tolist()):
                if hit:
                    packets[lane].fields[key] = vals[lane]
        self.written.clear()

    def resync(self) -> None:
        """Drop all materialized columns: after a scalar phase the
        packet dicts are authoritative and columns re-materialize
        lazily on next touch."""
        self.cols.clear()
        self.written.clear()

    def lane_flush(self, lane: int) -> None:
        fields = self.packets[lane].fields
        for key, mask in self.written.items():
            if mask[lane]:
                fields[key] = int(self.cols[key][lane])

    def lane_resync(self, lane: int) -> None:
        fields = self.packets[lane].fields
        for key, col in self.cols.items():
            col[lane] = fields.get(key, 0)


class ColumnarPool:
    """Template columns precomputed once, sliced into batches with no
    per-packet work -- the columnar analogue of
    :class:`~repro.switch.packet.PacketPool`."""

    def __init__(self, templates: List[PacketTemplate]):
        require_numpy()
        self.templates = list(templates)
        n = len(self.templates)
        keys, headers = collect_template_columns(self.templates)
        self.cols: Dict[str, "np.ndarray"] = {
            key: np.fromiter(
                (t.fields.get(key, 0) for t in self.templates),
                np.int64, count=n,
            )
            for key in keys
        }
        self.valid: Dict[str, "np.ndarray"] = {
            header: np.fromiter(
                (header in t.valid_headers for t in self.templates),
                bool, count=n,
            )
            for header in headers
        }
        self.sizes = np.fromiter(
            (t.size_bytes for t in self.templates), np.int64, count=n
        )

    def __len__(self) -> int:
        return len(self.templates)

    def batch(self, start: int, stop: int) -> ColumnarBatch:
        stop = min(stop, len(self.templates))
        return ColumnarBatch(
            stop - start,
            self.sizes[start:stop],
            templates=self.templates[start:stop],
            pool_cols=self.cols,
            pool_valid=self.valid,
            offset=start,
        )


class ColumnarResult:
    """Outcome of :meth:`SwitchAsic.process_batch_columnar`: per-lane
    egress ports (``-1`` = dropped) without materializing packets."""

    __slots__ = ("ports", "delivered", "dropped")

    def __init__(self, ports, delivered: int, dropped: int):
        self.ports = ports
        self.delivered = delivered
        self.dropped = dropped


# ---------------------------------------------------------------------------
# Compile-time values for the vectorizing action compiler


class _Val:
    """An abstract value: a constant, a lane vector (``fn(ctx)`` ->
    ndarray), or an affine read of a register cell (``X[cell] +
    delta``, coefficient exactly 1)."""

    __slots__ = ("kind", "const", "fn", "cell", "delta", "bits")

    def __init__(self, kind, const=0, fn=None, cell=None, delta=None,
                 bits=1):
        self.kind = kind  # 'c' | 'v' | 'a'
        self.const = const
        self.fn = fn
        self.cell = cell
        self.delta = delta
        self.bits = bits


def _vc(value: int) -> _Val:
    return _Val("c", const=value, bits=max(1, value.bit_length()))


def _vv(fn, bits: int) -> _Val:
    if bits > _MAX_BITS:
        raise _GiveUp("int64 headroom")
    return _Val("v", fn=fn, bits=bits)


def _resolve(val: _Val, ctx):
    if val.kind == "c":
        return val.const
    if val.kind == "v":
        return val.fn(ctx)
    return ctx["X"][val.cell] + _resolve(val.delta, ctx)


def _vadd(a: _Val, b: _Val, sign: int = 1) -> _Val:
    """``a + sign*b`` with affine propagation: affine + concrete stays
    affine on the same cell; anything that would scale or mix cells
    bails."""
    if a.kind == "a" and b.kind == "a":
        raise _GiveUp("affine x affine")
    if b.kind == "a":
        if sign < 0:
            raise _GiveUp("negated affine")
        a, b = b, a
    if a.kind == "a":
        return _Val(
            "a", cell=a.cell, delta=_vadd(a.delta, b, sign),
            bits=min(_MAX_BITS, max(a.bits, b.bits) + 1),
        )
    bits = max(a.bits, b.bits) + 1
    if a.kind == "c" and b.kind == "c":
        return _vc(a.const + sign * b.const)
    fa, fb = a, b

    def fn(ctx, _a=fa, _b=fb, _s=sign):
        return _resolve(_a, ctx) + _s * _resolve(_b, ctx)

    return _vv(fn, bits)


_NP_BIN = {
    "bit_and": ("&", lambda l, r: l & r),
    "bit_or": ("|", lambda l, r: l | r),
    "bit_xor": ("^", lambda l, r: l ^ r),
    "shift_left": ("<<", lambda l, r: l << r),
    "shift_right": (">>", lambda l, r: l >> r),
    "min": ("min", None),
    "max": ("max", None),
}


def _vbin(op: str, a: _Val, b: _Val) -> _Val:
    if op == "add":
        return _vadd(a, b, 1)
    if op == "subtract":
        return _vadd(a, b, -1)
    if a.kind == "a" or b.kind == "a":
        raise _GiveUp("affine operand in non-additive op")
    sym, py = _NP_BIN[op]
    if op == "shift_left":
        if b.kind != "c" or b.const < 0:
            raise _GiveUp("dynamic shift")
        bits = a.bits + b.const
    elif op == "shift_right":
        bits = a.bits
    else:
        # Operands may be negative (subtract chains), so bound by the
        # larger magnitude even for bit_and.
        bits = max(a.bits, b.bits) + (1 if op == "bit_xor" else 0)
    if a.kind == "c" and b.kind == "c":
        if op == "min":
            return _vc(min(a.const, b.const))
        if op == "max":
            return _vc(max(a.const, b.const))
        return _vc(py(a.const, b.const))
    if bits > _MAX_BITS:
        raise _GiveUp("int64 headroom")

    def fn(ctx, _a=a, _b=b, _op=op):
        left = _resolve(_a, ctx)
        right = _resolve(_b, ctx)
        if _op == "min":
            return np.minimum(left, right)
        if _op == "max":
            return np.maximum(left, right)
        if _op == "bit_and":
            return left & right
        if _op == "bit_or":
            return left | right
        if _op == "bit_xor":
            return left ^ right
        if _op == "shift_left":
            return left << right
        return left >> right

    return _vv(fn, bits)


def _vmask(val: _Val, mask: int) -> _Val:
    if val.kind == "a":
        raise _GiveUp("masking an affine value")
    if val.kind == "c":
        return _vc(val.const & mask)
    # The masked result is in [0, mask] regardless of the (possibly
    # negative) input, so the mask width is the bound.
    bits = mask.bit_length()

    def fn(ctx, _v=val, _m=mask):
        return _resolve(_v, ctx) & _m

    return _Val("v", fn=fn, bits=bits)


class _CellState:
    """One constant-index register slot touched by an action body."""

    __slots__ = ("register", "index", "mode", "delta", "over", "has_reads")

    def __init__(self, register, index: int):
        self.register = register
        self.index = index
        self.mode = None  # None | 'a' (v0 + delta) | 'o' (overwritten)
        self.delta: _Val = _vc(0)
        self.over: Optional[_Val] = None
        self.has_reads = False

    def read(self) -> _Val:
        if self.mode == "o":
            return self.over
        self.has_reads = True
        if self.mode is None:
            self.mode = "a"
        return _Val(
            "a", cell=(self.register.name, self.index), delta=self.delta,
            bits=min(_MAX_BITS, self.register.width + 14),
        )


# ---------------------------------------------------------------------------
# Vectorized action programs


class _VecProgram:
    """A compiled, vectorized action body.

    ``prepare(batch, idx, n, sizes)`` runs every gather, arithmetic
    op, and range check without mutating anything (raising
    :class:`_Unvectorizable` on failure) and returns a zero-argument
    commit closure that applies all effects."""

    __slots__ = ("stores", "cells", "scatters", "counts", "stateful")

    def __init__(self, stores, cells, scatters, counts):
        self.stores = stores        # [(key, val, commit_mask)]
        self.cells = cells          # {(reg_name, idx): _CellState}
        self.scatters = scatters    # [(register, idx_val, value_val)]
        self.counts = counts        # [(counter_array, idx_val|int, bytes?)]
        self.stateful = bool(cells or scatters or counts)

    def prepare(self, batch: ColumnarBatch, idx, n: int, sizes):
        ctx = {
            "batch": batch, "idx": idx, "n": n, "sizes": sizes,
            "X": {}, "gmemo": {},
        }
        # Register cells: resolve deltas, derive each lane's observed
        # start value (exclusive prefix sum), and the final slot value.
        cell_commits = []
        for key, state in self.cells.items():
            register = state.register
            slot = state.index
            if state.mode == "a":
                v0 = register.values[slot]
                delta = state.delta
                if (max(register.width, delta.bits + n.bit_length()) + 1
                        > _MAX_BITS):
                    raise _Unvectorizable("prefix-sum headroom")
                if delta.kind == "c":
                    step = delta.const
                    if state.has_reads:
                        ctx["X"][key] = v0 + step * np.arange(
                            n, dtype=np.int64
                        )
                    total = step * n
                else:
                    d = _resolve(delta, ctx)
                    cs = np.cumsum(d)
                    if state.has_reads:
                        ctx["X"][key] = v0 + cs - d
                    total = int(cs[-1]) if n else 0
                final = (v0 + total) & register.mask
            elif state.mode == "o":
                value = _resolve(state.over, ctx)
                last = int(value[-1]) if isinstance(
                    value, np.ndarray
                ) else int(value)
                final = last & register.mask
            else:  # read-only cell: no commit
                continue
            cell_commits.append((register, slot, final))
        # Scatters: validate indices, resolve values, keep the last
        # write per slot (ascending lane order == scalar order).
        scatter_commits = []
        for register, idx_val, value_val in self.scatters:
            indices = _resolve(idx_val, ctx)
            size = len(register.values)
            if ((indices < 0) | (indices >= size)).any():
                bad = int(
                    indices[(indices < 0) | (indices >= size)][0]
                )
                raise _Unvectorizable(
                    f"register {register.name}: index {bad} out of range"
                )
            values = _resolve(value_val, ctx)
            rev = indices[::-1]
            slots, first = np.unique(rev, return_index=True)
            last_pos = n - 1 - first
            if isinstance(values, np.ndarray):
                vals = values[last_pos]
            else:
                vals = np.full(len(slots), values, np.int64)
            scatter_commits.append(
                (register, slots.tolist(), vals.tolist())
            )
        # Counters: pure sums, validated up front.
        count_commits = []
        for array, idx_val, by_bytes in self.counts:
            weights = sizes if by_bytes else None
            if isinstance(idx_val, int):
                if by_bytes:
                    total = int(sizes.sum())
                else:
                    total = n
                count_commits.append((array, [idx_val], [total]))
                continue
            indices = _resolve(idx_val, ctx)
            size = len(array.values)
            if ((indices < 0) | (indices >= size)).any():
                bad = int(
                    indices[(indices < 0) | (indices >= size)][0]
                )
                raise _Unvectorizable(
                    f"register {array.name}: index {bad} out of range"
                )
            if weights is None:
                sums = np.bincount(indices, minlength=size)
            else:
                sums = np.bincount(
                    indices, weights=weights, minlength=size
                ).astype(np.int64)
            slots = np.nonzero(sums)[0]
            count_commits.append(
                (array, slots.tolist(), sums[slots].tolist())
            )
        # Field stores: compute final values now (purely), write later.
        store_commits = []
        for key, val, commit_mask in self.stores:
            value = _resolve(val, ctx)
            if commit_mask is not None:
                value = value & commit_mask
            store_commits.append((key, value))

        def commit() -> None:
            for key, value in store_commits:
                batch.store(key, idx, value)
            for register, slot, final in cell_commits:
                register.values[slot] = final
            for register, slots, vals in scatter_commits:
                register.bulk_write(slots, vals)
            for array, slots, deltas in count_commits:
                array.bulk_add(slots, deltas)

        return commit


class _VecActionCompiler:
    """Lower one resolved ``(action, args)`` pair to a
    :class:`_VecProgram`, or prove it non-vectorizable (``None``)."""

    def __init__(self, pipeline: "ColumnarPipeline", decl: ast.ActionDecl,
                 args: Tuple[int, ...]):
        self.pipeline = pipeline
        self.asic = pipeline.asic
        self.decl = decl
        self.params = dict(zip(decl.params, args))
        self.env: Dict[str, Tuple[_Val, Optional[int]]] = {}
        self.cells: Dict[Tuple[str, int], _CellState] = {}
        self.scatters: List[tuple] = []
        self.counts: List[tuple] = []
        # How each register is used in this body; mixing kinds on one
        # register defeats the per-kind soundness arguments.
        self.reg_use: Dict[str, str] = {}

    def compile(self) -> Optional[_VecProgram]:
        if len(self.decl.params) != len(self.params):
            return None
        try:
            for call in self.decl.body:
                self._call(call)
        except _GiveUp:
            return None
        stores = [
            (key, val, mask) for key, (val, mask) in self.env.items()
        ]
        return _VecProgram(stores, self.cells, self.scatters, self.counts)

    # ---- helpers --------------------------------------------------------

    def _use_register(self, name: str, kind: str):
        prior = self.reg_use.setdefault(name, kind)
        if prior != kind:
            raise _GiveUp(f"mixed register access on {name}")

    def _const(self, arg) -> Optional[int]:
        if isinstance(arg, int):
            return arg
        if isinstance(arg, str):
            if arg not in self.params:
                raise _GiveUp(f"unresolved parameter {arg}")
            return self.params[arg]
        return None

    def _value(self, arg) -> _Val:
        const = self._const(arg)
        if const is not None:
            return _vc(const)
        if isinstance(arg, ast.FieldRef):
            return self._read_field(f"{arg.header}.{arg.field}")
        raise _GiveUp(f"unsupported argument {arg!r}")

    def _read_field(self, key: str) -> _Val:
        hit = self.env.get(key)
        if hit is not None:
            return hit[0]
        mask = self.asic.field_masks.get(key)
        if mask is None:
            raise _GiveUp(f"unknown field width for {key}")
        bits = mask.bit_length()
        if bits > _MAX_BITS:
            raise _GiveUp("wide field")

        def fn(ctx, _key=key):
            memo = ctx["gmemo"]
            arr = memo.get(_key)
            if arr is None:
                col = ctx["batch"].col(_key)
                idx = ctx["idx"]
                arr = memo[_key] = col if idx is None else col[idx]
            return arr

        return _vv(fn, bits)

    def _store_field(self, arg, val: _Val) -> None:
        if not isinstance(arg, ast.FieldRef):
            raise _GiveUp("destination is not a field")
        key = f"{arg.header}.{arg.field}"
        mask = self.asic.field_masks.get(key)
        if mask is None:
            raise _GiveUp(f"unknown field width for {key}")
        if val.kind == "a":
            cell_reg = self.cells[val.cell].register
            if mask != cell_reg.mask:
                raise _GiveUp("affine store under a different mask")
            self.env[key] = (val, mask)
        else:
            self.env[key] = (_vmask(val, mask), None)

    def _cell(self, register, index: int) -> _CellState:
        if register.width > 48:
            # Leave headroom for a full batch of prefix-summed deltas
            # on top of the unreduced cell value.
            raise _GiveUp("wide register cell")
        self._use_register(register.name, "cell")
        key = (register.name, index)
        state = self.cells.get(key)
        if state is None:
            state = self.cells[key] = _CellState(register, index)
        return state

    # ---- one primitive --------------------------------------------------

    def _call(self, call: ast.PrimitiveCall) -> None:
        name = call.name
        args = call.args
        if name == "no_op":
            return
        if name == "drop":
            self.env[_DROP] = (_vc(1), None)
            return
        if name in _FLAG_KEYS:
            self.env[_FLAG_KEYS[name]] = (_vc(1), None)
            return
        if name == "modify_field":
            value = self._value(args[1])
            if len(args) > 2:
                value = _vbin("bit_and", value, self._value(args[2]))
            self._store_field(args[0], value)
            return
        if name in ("add", "subtract", "bit_and", "bit_or", "bit_xor",
                    "shift_left", "shift_right", "min", "max"):
            value = _vbin(name, self._value(args[1]), self._value(args[2]))
            self._store_field(args[0], value)
            return
        if name in ("add_to_field", "subtract_from_field"):
            if not isinstance(args[0], ast.FieldRef):
                raise _GiveUp("destination is not a field")
            current = self._read_field(f"{args[0].header}.{args[0].field}")
            sign = 1 if name == "add_to_field" else -1
            self._store_field(args[0], _vadd(current, self._value(args[1]),
                                             sign))
            return
        if name == "register_read":
            register = self.asic.get_register(args[1])
            index = self._const(args[2])
            if index is not None:
                if not 0 <= index < len(register.values):
                    raise _GiveUp("constant register index out of range")
                self._store_field(args[0], self._cell(register, index).read())
                return
            if register.width > _MAX_BITS:
                raise _GiveUp("wide register gather")
            self._use_register(register.name, "gather")
            idx_val = self._value(args[2])
            values = register.values

            def fn(ctx, _vals=values, _idx=idx_val, _reg=register):
                memo = ctx["gmemo"]
                snap = memo.get(_reg.name)
                if snap is None:
                    snap = memo[_reg.name] = np.array(_vals, np.int64)
                indices = _resolve(_idx, ctx)
                size = len(snap)
                if ((indices < 0) | (indices >= size)).any():
                    bad = int(
                        indices[(indices < 0) | (indices >= size)][0]
                    )
                    raise _Unvectorizable(
                        f"register {_reg.name}: index {bad} out of range"
                    )
                return snap[indices]

            self._store_field(args[0], _vv(fn, register.width))
            return
        if name == "register_write":
            register = self.asic.get_register(args[0])
            value = self._value(args[2])
            index = self._const(args[1])
            if index is not None:
                if not 0 <= index < len(register.values):
                    raise _GiveUp("constant register index out of range")
                state = self._cell(register, index)
                if value.kind == "a":
                    if value.cell != (register.name, index):
                        raise _GiveUp("cross-cell affine write")
                    state.mode = "a"
                    state.delta = value.delta
                else:
                    if state.has_reads:
                        raise _GiveUp("overwrite after read")
                    state.mode = "o"
                    state.over = value
                return
            self._use_register(register.name, "scatter")
            for existing, _i, _v in self.scatters:
                if existing is register:
                    raise _GiveUp("double scatter on one register")
            if value.kind == "a":
                cell_reg = self.cells[value.cell].register
                if register.mask & cell_reg.mask != register.mask:
                    raise _GiveUp("widening affine scatter")
            idx_val = self._value(args[1])
            if idx_val.kind == "a":
                raise _GiveUp("affine scatter index")
            self.scatters.append((register, idx_val, value))
            return
        if name == "count":
            counter = self.asic.get_counter(args[0])
            by_bytes = counter.counter_type == "bytes"
            index = self._const(args[1])
            if index is not None:
                if not 0 <= index < len(counter.array.values):
                    raise _GiveUp("constant counter index out of range")
                self.counts.append((counter.array, index, by_bytes))
                return
            idx_val = self._value(args[1])
            if idx_val.kind == "a":
                raise _GiveUp("affine counter index")
            self.counts.append((counter.array, idx_val, by_bytes))
            return
        # RNG, hashes, and anything unrecognized keep scalar semantics.
        raise _GiveUp(f"non-vectorizable primitive {name}")


# ---------------------------------------------------------------------------
# Per-table sweeps


class _TableSweep:
    """One table's columnar sweep over a batch.

    Resolves match groups vectorially, runs a vectorized program per
    group when the lowering is sound, drains non-vectorizable lanes
    through the scalar fused steps in lane order, and downgrades the
    whole table to the scalar op-major sweep when per-lane order could
    become observable (more than one group touching cross-packet
    state) or a run-time check fails."""

    def __init__(self, pipeline: "ColumnarPipeline", runtime):
        self.pipeline = pipeline
        self.runtime = runtime
        self.scalar_major = pipeline._compile_major_apply(runtime)
        self.name = runtime.decl.name
        reads = runtime.decl.reads
        self.keyless = not reads
        self.parts: List[tuple] = []
        self.packable = True
        total_bits = 0
        for read, width in zip(reads, runtime.key_widths):
            if read.match_type is ast.MatchType.VALID:
                self.parts.append(("valid", read.ref.header, width, None))
            else:
                ref = read.ref
                self.parts.append(
                    ("field", f"{ref.header}.{ref.field}", width, read.mask)
                )
            total_bits += width
        if total_bits > _MAX_BITS:
            self.packable = False
        self._index_gen = -1
        self._index = None

    # ---- entry index ----------------------------------------------------

    def _entry_index(self):
        runtime = self.runtime
        if runtime.generation != self._index_gen:
            self._index_gen = runtime.generation
            packed_entries = []
            usable = True
            for key_tuple, entry in runtime._exact_index.items():
                packed = 0
                for part, (_kind, _k, width, _m) in zip(
                    key_tuple, self.parts
                ):
                    value = int(part)
                    if not 0 <= value < (1 << width):
                        usable = False
                        break
                    packed = (packed << width) | value
                if not usable:
                    break
                packed_entries.append((packed, entry))
            if not usable:
                self._index = None
            else:
                packed_entries.sort(key=lambda pair: pair[0])
                keys = np.fromiter(
                    (pk for pk, _e in packed_entries), np.int64,
                    count=len(packed_entries),
                )
                entries = [e for _pk, e in packed_entries]
                self._index = (keys, entries)
        return self._index

    def _pack(self, batch: ColumnarBatch, idx):
        """The packed int64 key per live lane plus an out-of-range
        mask (lanes whose raw field values exceed the key width can
        never match an in-range entry -- they miss)."""
        packed = None
        oor = None
        for kind, key, width, premask in self.parts:
            if kind == "valid":
                col = batch.valid_col(key)
            else:
                col = batch.col(key)
            part = col if idx is None else col[idx]
            if premask is not None:
                part = part & premask
            bad = (part < 0) | (part >= (1 << width))
            oor = bad if oor is None else (oor | bad)
            part = part & ((1 << width) - 1)
            packed = part if packed is None else (
                (packed << width) | part
            )
        return packed, oor

    # ---- group resolution -----------------------------------------------

    def _resolve_groups(self, batch, idx, count):
        """``[(entry_or_None, lane_idx_or_None, lane_count)]`` covering
        every live lane; ``None`` entry means miss (default action),
        ``None`` idx means "all live lanes" (only when live == all)."""
        index = self._entry_index()
        if index is None:
            return None  # oversized entry keys: scalar sweep
        keys, entries = index
        if self.keyless:
            entry = self.runtime._exact_index.get(())
            return [(entry, idx, count)]
        if len(entries) == 0:
            return [(None, idx, count)]
        packed, oor = self._pack(batch, idx)
        if len(entries) <= _SCAN_ENTRIES:
            remaining = None
            groups = []
            for pk, entry in zip(keys.tolist(), entries):
                hit = packed == pk
                if oor is not None:
                    hit &= ~oor
                matched = int(hit.sum())
                if not matched:
                    continue
                groups.append((entry, hit, matched))
                remaining = ~hit if remaining is None else (
                    remaining & ~hit
                )
        else:
            positions = np.searchsorted(keys, packed)
            positions[positions >= len(entries)] = 0
            hit_mask = keys[positions] == packed
            if oor is not None:
                hit_mask &= ~oor
            groups = []
            remaining = ~hit_mask
            if hit_mask.any():
                matched_pos = positions[hit_mask]
                for pos in np.unique(matched_pos):
                    local = hit_mask & (positions == pos)
                    groups.append((entries[pos], local, int(local.sum())))
        miss_count = count - sum(g[2] for g in groups)
        if miss_count:
            if remaining is None:
                remaining = np.ones(count, bool)
            groups.append((None, remaining, miss_count))
        # Convert local masks to global lane indices (single full
        # group keeps idx=None for whole-column ops).
        out = []
        for entry, mask, n_lanes in groups:
            if mask is None or not isinstance(mask, np.ndarray):
                out.append((entry, mask, n_lanes))
            elif n_lanes == count and idx is None:
                out.append((entry, None, n_lanes))
            else:
                local = np.nonzero(mask)[0]
                out.append(
                    (entry,
                     local if idx is None else idx[local],
                     n_lanes)
                )
        return out

    # ---- execution ------------------------------------------------------

    def run(self, st: "_SweepState") -> None:
        batch = st.batch
        idx, count = st.live()
        if count == 0:
            return
        if not self.packable:
            self._run_scalar(st, idx, count, "unpackable")
            return
        try:
            groups = self._resolve_groups(batch, idx, count)
        except _Unvectorizable:
            groups = None
        if groups is None:
            self._run_scalar(st, idx, count, "unpackable")
            return
        pipeline = self.pipeline
        runtime = self.runtime
        plans = []
        stateful = 0
        for entry, g_idx, g_count in groups:
            if entry is None:
                default = runtime.default_action
                action, args = default if default else (None, ())
                matched = False
            else:
                action = entry.action_name
                args = entry.action_args
                matched = True
            program = pipeline.vec_program(action, tuple(args))
            if program is None:
                resources = (
                    set() if action is None
                    else pipeline._action_resources(action)
                )
                is_stateful = resources is None or bool(
                    resources - {"recirc"}
                )
            else:
                is_stateful = program.stateful
            if is_stateful:
                stateful += 1
            plans.append(
                (matched, action, args, program, g_idx, g_count)
            )
        if stateful > 1:
            # Two groups interleave on shared state: only the scalar
            # sweep preserves lane order across groups.
            self._run_scalar(st, idx, count, "shared-state-groups")
            return
        # Prepare every vectorized group before committing anything,
        # so a run-time bail-out leaves no partial effects.
        commits = []
        drains = []
        try:
            for matched, action, args, program, g_idx, g_count in plans:
                if program is None:
                    drains.append((matched, action, args, g_idx, g_count))
                    continue
                commit = program.prepare(
                    batch, g_idx, g_count,
                    st.sizes if g_idx is None else st.sizes[g_idx],
                )
                commits.append((matched, g_count, commit))
        except _Unvectorizable:
            self._run_scalar(st, idx, count, "runtime-check")
            return
        hits = 0
        misses = 0
        for matched, g_count, commit in commits:
            commit()
            if matched:
                hits += g_count
            else:
                misses += g_count
        if drains:
            hits, misses = self._drain(st, drains, hits, misses)
        runtime.hits += hits
        runtime.misses += misses

    def _run_scalar(self, st: "_SweepState", idx, count,
                    reason: str) -> None:
        """Whole-table fallback: flush columns, run the op-major scalar
        sweep (its own hit/miss accounting), re-materialize."""
        st.mark_fallback(idx, count, f"table:{self.name}:{reason}")
        batch = st.batch
        batch.flush()
        self.scalar_major(batch.ensure_packets())
        batch.resync()

    def _drain(self, st: "_SweepState", drains, hits: int,
               misses: int) -> Tuple[int, int]:
        """Per-lane scalar execution for non-vectorizable groups, in
        ascending lane order (at most one such group touches
        cross-packet state, so interleaving with the already-committed
        vector groups is unobservable)."""
        batch = st.batch
        packets = batch.ensure_packets()
        resolve_steps = self.pipeline._resolve_steps
        lanes: List[tuple] = []
        for matched, action, args, g_idx, g_count in drains:
            if action is None:
                steps: tuple = ()
            else:
                steps = resolve_steps(action, list(args))
            if g_idx is None:
                g_idx = range(batch.n)
            for lane in g_idx:
                lanes.append((int(lane), matched, steps, args))
        lanes.sort(key=lambda item: item[0])
        st.mark_fallback(
            np.fromiter((l[0] for l in lanes), np.int64, count=len(lanes)),
            len(lanes), f"drain:{self.name}",
        )
        for lane, matched, steps, args in lanes:
            if matched:
                hits += 1
            else:
                misses += 1
            batch.lane_flush(lane)
            packet = packets[lane]
            for step in steps:
                step(args, packet)
            batch.lane_resync(lane)
        return hits, misses


class _SweepState:
    """Per-batch bookkeeping shared by the sweeps: live-lane
    recomputation and fallback accounting."""

    __slots__ = ("batch", "sizes", "fallback", "reasons")

    def __init__(self, batch: ColumnarBatch, reasons: Dict[str, int]):
        self.batch = batch
        self.sizes = batch.sizes
        self.fallback = np.zeros(batch.n, bool)
        self.reasons = reasons

    def live(self):
        drop = self.batch.col(_DROP)
        if not drop.any():
            return None, self.batch.n
        live = np.nonzero(drop == 0)[0]
        return live, len(live)

    def mark_fallback(self, idx, count: int, reason: str) -> None:
        if count:
            if idx is None:
                self.fallback[:] = True
            else:
                self.fallback[idx] = True
            self.reasons[reason] = self.reasons.get(reason, 0) + count


# ---------------------------------------------------------------------------
# The engine


class ColumnarPipeline(CompiledPipeline):
    """Compiled engine plus columnar batch plans.

    Inherits every scalar path (per-packet closures, fused batch
    plans, op-major sweeps) so any burst the vectorizer cannot take
    still executes with compiled-engine semantics."""

    def __init__(self, asic, rng=None, profile=None):
        require_numpy()
        super().__init__(asic, rng=rng, profile=profile)
        self._vec_programs: Dict[Tuple[Optional[str], tuple], object] = {}
        self.fallback_counts: Dict[str, int] = {}
        self._columnar_plans: Dict[str, Optional[List[_TableSweep]]] = {}
        if profile is None:
            self._columnar_plans["ingress"] = self._build_columnar(
                asic.program.controls.get("ingress")
            )
            self._columnar_plans["egress"] = self._build_columnar_egress(
                asic.program.controls.get("egress")
            )

    def _build_columnar(self, decl) -> Optional[List[_TableSweep]]:
        # Columnar execution is op-major execution: admit exactly what
        # the op-major analysis proved safe.
        if self._batch_major_plans.get("ingress") is None:
            return None
        body = decl.body if decl is not None else []
        return [
            _TableSweep(self, self.asic.tables[stmt.table])
            for stmt in body
        ]

    def _build_columnar_egress(self, decl) -> Optional[List[_TableSweep]]:
        """Egress sweeps, or ``None`` when egress must stay
        packet-major (branches, non-exact tables, or egress tables
        sharing cross-packet state *with each other* -- the ingress
        admission only proved them disjoint from ingress)."""
        if self._batch_major_plans.get("ingress") is None:
            return None
        if decl is None or not decl.body:
            return []
        runtimes = []
        for stmt in decl.body:
            if not isinstance(stmt, ast.ApplyCall):
                return None
            runtime = self.asic.tables.get(stmt.table)
            if runtime is None or not runtime._exact_only:
                return None
            runtimes.append(runtime)
        seen: set = set()
        for runtime in runtimes:
            resources = self._table_resources(runtime)
            if resources is None or resources & seen:
                return None
            seen |= resources
        return [_TableSweep(self, runtime) for runtime in runtimes]

    def columnar_ops(
        self, control_name: str
    ) -> Optional[List[_TableSweep]]:
        """The columnar plan for one control block, or ``None`` when
        the burst must take a scalar path (profiling, or op-major
        inadmissible)."""
        if self.profile is not None:
            return None
        return self._columnar_plans.get(control_name)

    def vec_program(
        self, action_name: Optional[str], args: tuple
    ) -> Optional[_VecProgram]:
        """The vectorized program for a resolved (action, args) pair;
        cached -- like the fused runners, the lowering depends only on
        the action declaration and stable ASIC containers."""
        key = (action_name, args)
        hit = self._vec_programs.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        if action_name is None:
            program: Optional[_VecProgram] = _VecProgram([], {}, [], [])
        else:
            decl = self.asic.program.actions.get(action_name)
            if decl is None or len(decl.params) != len(args):
                program = None
            else:
                program = _VecActionCompiler(self, decl, args).compile()
        self._vec_programs[key] = program
        return program

    def count_fallback(self, reason: str, lanes: int) -> None:
        self.fallback_counts[reason] = (
            self.fallback_counts.get(reason, 0) + lanes
        )


_MISSING = object()
