"""Hash algorithms for ``field_list_calculation``.

The ECMP use case (Section 8.3.3) rotates the *inputs* of the hash
function at runtime via malleable fields, so the hash implementations
must be deterministic functions of the (width-aware) field bytes --
exactly how the hardware computes them.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import SwitchError


def fields_to_bytes(values: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize ``(value, width_bits)`` pairs to a big-endian byte
    string, byte-padding each field like the Tofino hash units do."""
    out = bytearray()
    for value, width in values:
        nbytes = max(1, (width + 7) // 8)
        out.extend((value & ((1 << width) - 1)).to_bytes(nbytes, "big"))
    return bytes(out)


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE, the P4-14 default hash."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF

def crc32_lsb(data: bytes) -> int:
    """Bit-reversed crc32 variant (a second independent hash family)."""
    value = zlib.crc32(data[::-1]) & 0xFFFFFFFF
    return int(f"{value:032b}"[::-1], 2)


def xor16(data: bytes) -> int:
    result = 0
    padded = data + b"\x00" if len(data) % 2 else data
    for offset in range(0, len(padded), 2):
        result ^= (padded[offset] << 8) | padded[offset + 1]
    return result


def identity(data: bytes) -> int:
    return int.from_bytes(data, "big") if data else 0


def csum16(data: bytes) -> int:
    """Ones-complement 16-bit checksum (IP style)."""
    total = 0
    padded = data + b"\x00" if len(data) % 2 else data
    for offset in range(0, len(padded), 2):
        total += (padded[offset] << 8) | padded[offset + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


ALGORITHMS: Dict[str, Callable[[bytes], int]] = {
    "crc16": crc16,
    "crc32": crc32,
    "crc32_lsb": crc32_lsb,
    "xor16": xor16,
    "identity": identity,
    "csum16": csum16,
}


def compute_hash(
    algorithm: str, values: Sequence[Tuple[int, int]], output_width: int
) -> int:
    """Hash ``(value, width)`` pairs with ``algorithm``, truncated to
    ``output_width`` bits."""
    if algorithm not in ALGORITHMS:
        raise SwitchError(f"unknown hash algorithm {algorithm!r}")
    raw = ALGORITHMS[algorithm](fields_to_bytes(values))
    return raw & ((1 << output_width) - 1)
