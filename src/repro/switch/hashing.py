"""Hash algorithms for ``field_list_calculation``.

The ECMP use case (Section 8.3.3) rotates the *inputs* of the hash
function at runtime via malleable fields, so the hash implementations
must be deterministic functions of the (width-aware) field bytes --
exactly how the hardware computes them.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SwitchError

try:  # numpy is optional: only the vectorized variants need it
    import numpy as np
except ImportError:  # pragma: no cover - exercised via columnar gating
    np = None  # type: ignore[assignment]

#: 256-entry bit-reversal table: _REV8[b] is ``b`` with its 8 bits
#: mirrored.  Shared by the scalar and vectorized crc32_lsb.
_REV8 = tuple(
    sum(((byte >> bit) & 1) << (7 - bit) for bit in range(8))
    for byte in range(256)
)


def reverse_bits32(value: int) -> int:
    """Mirror the 32 bits of ``value`` (table-driven, byte at a time)."""
    return (
        (_REV8[value & 0xFF] << 24)
        | (_REV8[(value >> 8) & 0xFF] << 16)
        | (_REV8[(value >> 16) & 0xFF] << 8)
        | _REV8[(value >> 24) & 0xFF]
    )


def fields_to_bytes(values: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize ``(value, width_bits)`` pairs to a big-endian byte
    string, byte-padding each field like the Tofino hash units do."""
    out = bytearray()
    for value, width in values:
        nbytes = max(1, (width + 7) // 8)
        out.extend((value & ((1 << width) - 1)).to_bytes(nbytes, "big"))
    return bytes(out)


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE, the P4-14 default hash."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF

def crc32_lsb(data: bytes) -> int:
    """Bit-reversed crc32 variant (a second independent hash family)."""
    return reverse_bits32(zlib.crc32(data[::-1]) & 0xFFFFFFFF)


def xor16(data: bytes) -> int:
    result = 0
    padded = data + b"\x00" if len(data) % 2 else data
    for offset in range(0, len(padded), 2):
        result ^= (padded[offset] << 8) | padded[offset + 1]
    return result


def identity(data: bytes) -> int:
    return int.from_bytes(data, "big") if data else 0


def csum16(data: bytes) -> int:
    """Ones-complement 16-bit checksum (IP style)."""
    total = 0
    padded = data + b"\x00" if len(data) % 2 else data
    for offset in range(0, len(padded), 2):
        total += (padded[offset] << 8) | padded[offset + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


ALGORITHMS: Dict[str, Callable[[bytes], int]] = {
    "crc16": crc16,
    "crc32": crc32,
    "crc32_lsb": crc32_lsb,
    "xor16": xor16,
    "identity": identity,
    "csum16": csum16,
}


def compute_hash(
    algorithm: str, values: Sequence[Tuple[int, int]], output_width: int
) -> int:
    """Hash ``(value, width)`` pairs with ``algorithm``, truncated to
    ``output_width`` bits."""
    if algorithm not in ALGORITHMS:
        raise SwitchError(f"unknown hash algorithm {algorithm!r}")
    raw = ALGORITHMS[algorithm](fields_to_bytes(values))
    return raw & ((1 << output_width) - 1)


# ----------------------------------------------------------------------
# Vectorized variants (columnar engine)
#
# A field list with a fixed width signature serializes every packet to
# the same byte layout, so a batch hashes as ``total_bytes`` table
# lookups over whole int64 columns instead of one python loop per
# packet.  CRCs use the classic 256-entry byte-at-a-time tables; the
# lane dimension is the numpy axis.


def _byte_layout(widths: Sequence[int]) -> List[Tuple[int, int]]:
    """Stream order of ``fields_to_bytes`` as (field index, shift)
    pairs: one entry per serialized byte, most significant first."""
    layout: List[Tuple[int, int]] = []
    for index, width in enumerate(widths):
        nbytes = max(1, (width + 7) // 8)
        for position in range(nbytes):
            layout.append((index, 8 * (nbytes - 1 - position)))
    return layout


def _crc16_table():
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return np.array(table, dtype=np.int64)


def _crc32_table():
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table.append(crc)
    return np.array(table, dtype=np.int64)


def _masked_columns(columns, widths: Sequence[int]):
    return [
        column & ((1 << width) - 1)
        for column, width in zip(columns, widths)
    ]


@lru_cache(maxsize=None)
def vector_hash_fn(
    algorithm: str, widths: Tuple[int, ...]
) -> Optional[Callable[[Sequence["np.ndarray"]], "np.ndarray"]]:
    """Batch variant of ``ALGORITHMS[algorithm]`` for a field list with
    the given width signature.

    Returns a callable mapping one int64 column per field to the raw
    (untruncated) hash column, or ``None`` when the combination cannot
    be vectorized; callers fall back to the scalar path.  Cached per
    (algorithm, signature) so table setup happens once.
    """
    if np is None or algorithm not in ALGORITHMS:
        return None
    if any(width <= 0 or width > 62 for width in widths):
        return None
    layout = _byte_layout(widths)

    if algorithm == "crc16":
        table = _crc16_table()

        def fn_crc16(columns):
            cols = _masked_columns(columns, widths)
            crc = np.full(len(cols[0]), 0xFFFF, dtype=np.int64)
            for index, shift in layout:
                byte = (cols[index] >> shift) & 0xFF
                crc = ((crc << 8) & 0xFF00) ^ table[((crc >> 8) ^ byte) & 0xFF]
            return crc

        return fn_crc16

    if algorithm in ("crc32", "crc32_lsb"):
        table = _crc32_table()
        # crc32_lsb hashes the byte-reversed stream, then mirrors the
        # 32-bit result -- same definition as the scalar function.
        stream = layout[::-1] if algorithm == "crc32_lsb" else layout
        rev8 = np.array(_REV8, dtype=np.int64)

        def fn_crc32(columns):
            cols = _masked_columns(columns, widths)
            crc = np.full(len(cols[0]), 0xFFFFFFFF, dtype=np.int64)
            for index, shift in stream:
                byte = (cols[index] >> shift) & 0xFF
                crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
            crc ^= 0xFFFFFFFF
            if algorithm == "crc32_lsb":
                crc = (
                    (rev8[crc & 0xFF] << 24)
                    | (rev8[(crc >> 8) & 0xFF] << 16)
                    | (rev8[(crc >> 16) & 0xFF] << 8)
                    | rev8[(crc >> 24) & 0xFF]
                )
            return crc

        return fn_crc32

    if algorithm == "xor16":

        def fn_xor16(columns):
            cols = _masked_columns(columns, widths)
            result = np.zeros(len(cols[0]), dtype=np.int64)
            for offset in range(0, len(layout), 2):
                index, shift = layout[offset]
                word = ((cols[index] >> shift) & 0xFF) << 8
                if offset + 1 < len(layout):  # odd streams zero-pad
                    index, shift = layout[offset + 1]
                    word = word | ((cols[index] >> shift) & 0xFF)
                result ^= word
            return result

        return fn_xor16

    if algorithm == "csum16":

        def fn_csum16(columns):
            cols = _masked_columns(columns, widths)
            total = np.zeros(len(cols[0]), dtype=np.int64)
            for offset in range(0, len(layout), 2):
                index, shift = layout[offset]
                word = ((cols[index] >> shift) & 0xFF) << 8
                if offset + 1 < len(layout):
                    index, shift = layout[offset + 1]
                    word = word | ((cols[index] >> shift) & 0xFF)
                total = total + word
                total = (total & 0xFFFF) + (total >> 16)
            return (~total) & 0xFFFF

        return fn_csum16

    if algorithm == "identity":
        if len(layout) * 8 > 62:  # packed value must fit in int64
            return None

        def fn_identity(columns):
            cols = _masked_columns(columns, widths)
            acc = np.zeros(len(cols[0]), dtype=np.int64)
            for index, shift in layout:
                acc = (acc << 8) | ((cols[index] >> shift) & 0xFF)
            return acc

        return fn_identity

    return None
