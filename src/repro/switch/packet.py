"""Symbolic packets.

The emulator operates on pre-parsed packets: a flat mapping from
``"instance.field"`` to integer values plus a set of valid headers.
This matches how the Mantis transformations interact with packets
(field reads/writes, table matches) without modelling wire formats.

Intrinsic per-packet state (ingress port, egress spec, queue depths,
timestamps, drop flag) lives in the ``standard_metadata`` instance,
mirroring bmv2's v1model.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set

_packet_ids = itertools.count()

# Fields of the built-in standard_metadata instance.
STANDARD_METADATA_FIELDS = {
    "ingress_port": 9,
    "egress_spec": 9,
    "egress_port": 9,
    "packet_length": 32,
    "enq_qdepth": 19,
    "deq_qdepth": 19,
    "ingress_global_timestamp": 48,
    "egress_global_timestamp": 48,
    "recirculate_flag": 1,
    "clone_flag": 1,
    "drop_flag": 1,
    "ecn_marked": 1,
}

# Template for a fresh packet's intrinsic fields; copied (not rebuilt
# key-by-key) per packet since construction sits on the simulator's
# per-packet path.
_STANDARD_METADATA_ZERO = {
    f"standard_metadata.{key}": 0 for key in STANDARD_METADATA_FIELDS
}


class Packet:
    """A symbolic packet processed by the emulated pipeline."""

    __slots__ = ("packet_id", "fields", "valid_headers", "size_bytes")

    def __init__(
        self,
        fields: Optional[Dict[str, int]] = None,
        valid_headers: Optional[Iterable[str]] = None,
        size_bytes: int = 1500,
        ingress_port: int = 0,
    ):
        self.packet_id = next(_packet_ids)
        self.fields: Dict[str, int] = dict(_STANDARD_METADATA_ZERO)
        self.valid_headers: Set[str] = set(valid_headers or ())
        self.size_bytes = size_bytes
        self.fields["standard_metadata.ingress_port"] = ingress_port
        self.fields["standard_metadata.packet_length"] = size_bytes
        if fields:
            for key, value in fields.items():
                self.fields[key] = value
                self.valid_headers.add(key.split(".", 1)[0])

    def reinit(self, template: "PacketTemplate") -> "Packet":
        """Reset this packet in place from a precomputed template.

        The batch path reuses pooled packets instead of constructing
        fresh ones; the template already holds the merged
        standard_metadata + payload map, so reuse is two dict copies
        with no per-key splitting."""
        self.packet_id = next(_packet_ids)
        fields = self.fields
        fields.clear()
        fields.update(template.fields)
        headers = self.valid_headers
        headers.clear()
        headers.update(template.valid_headers)
        self.size_bytes = template.size_bytes
        return self

    # ---- field access ---------------------------------------------------

    def get(self, key: str) -> int:
        """Read ``"instance.field"``; unset fields read as 0 (bmv2
        semantics for uninitialized metadata)."""
        return self.fields.get(key, 0)

    def set(self, key: str, value: int, mask: Optional[int] = None) -> None:
        if mask is not None:
            value &= mask
        self.fields[key] = value

    # ---- intrinsic helpers ------------------------------------------------

    @property
    def ingress_port(self) -> int:
        return self.fields["standard_metadata.ingress_port"]

    @property
    def egress_spec(self) -> int:
        return self.fields["standard_metadata.egress_spec"]

    @egress_spec.setter
    def egress_spec(self, port: int) -> None:
        self.fields["standard_metadata.egress_spec"] = port

    @property
    def dropped(self) -> bool:
        return bool(self.fields["standard_metadata.drop_flag"])

    def mark_dropped(self) -> None:
        self.fields["standard_metadata.drop_flag"] = 1

    @property
    def recirculated(self) -> bool:
        return bool(self.fields["standard_metadata.recirculate_flag"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, in={self.ingress_port}, "
            f"out={self.egress_spec}, drop={self.dropped})"
        )


class PacketTemplate:
    """One packet shape, fully precomputed.

    Merging the standard_metadata zero map with the payload fields and
    deriving the valid-header set happens once here instead of once per
    packet, so a burst of same-shaped packets pays only
    :meth:`Packet.reinit` (dict copy) each."""

    __slots__ = ("fields", "valid_headers", "size_bytes")

    def __init__(
        self,
        fields: Optional[Dict[str, int]] = None,
        size_bytes: int = 1500,
        ingress_port: int = 0,
    ):
        prototype = Packet(
            fields, size_bytes=size_bytes, ingress_port=ingress_port
        )
        self.fields = prototype.fields
        self.valid_headers = frozenset(prototype.valid_headers)
        self.size_bytes = size_bytes


def collect_template_columns(
    templates: Sequence[PacketTemplate],
) -> tuple:
    """Column inventory for a set of templates: the union of field
    keys and of valid headers.  The columnar pool materializes one
    array per entry, so absent fields read as 0 and absent headers as
    invalid -- the same defaults :meth:`Packet.get` and valid-matching
    use."""
    keys: Set[str] = set()
    headers: Set[str] = set()
    for template in templates:
        keys.update(template.fields)
        headers.update(template.valid_headers)
    return keys, headers


class PacketPool:
    """A grow-only pool of reusable packets for batch processing."""

    def __init__(self, size: int = 0):
        self._packets: List[Packet] = [Packet() for _ in range(size)]

    def take(self, templates: Sequence[PacketTemplate]) -> List[Packet]:
        """One re-initialized packet per template.

        The returned packets alias pool storage: they are valid until
        the next :meth:`take`, which is exactly the lifetime the batch
        path needs (process, read results, move on)."""
        packets = self._packets
        missing = len(templates) - len(packets)
        if missing > 0:
            packets.extend(Packet() for _ in range(missing))
        return [
            packet.reinit(template)
            for packet, template in zip(packets, templates)
        ]
