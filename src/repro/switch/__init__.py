"""RMT switch emulator (the bmv2-style substrate).

This package stands in for the paper's Wedge100BF-32X Tofino switch.
It executes the P4-14 AST directly:

- :mod:`repro.switch.clock` -- simulated microsecond clock shared by
  the data plane, the driver, and the network simulator.
- :mod:`repro.switch.packet` -- symbolic packets (named header fields).
- :mod:`repro.switch.registers` -- stateful register arrays.
- :mod:`repro.switch.hashing` -- hash algorithms for
  ``field_list_calculation`` (crc16/crc32/xor/identity).
- :mod:`repro.switch.tables` -- match-action table runtime with
  exact/ternary/lpm/range/valid matching and priorities.
- :mod:`repro.switch.pipeline` -- interpreter for actions and control
  blocks.
- :mod:`repro.switch.asic` -- the assembled switch: ports, queues,
  ingress/egress pipelines, recirculation, stepped execution for
  isolation experiments.
- :mod:`repro.switch.driver` -- the control-plane driver with the
  calibrated PCIe latency cost model (Figures 10-12).
"""

from repro.switch.asic import STANDARD_METADATA_P4, SwitchAsic
from repro.switch.clock import SimClock
from repro.switch.driver import Driver, DriverCostModel
from repro.switch.packet import Packet
from repro.switch.registers import RegisterArray
from repro.switch.tables import TableEntry, TableRuntime

__all__ = [
    "Driver",
    "DriverCostModel",
    "Packet",
    "RegisterArray",
    "STANDARD_METADATA_P4",
    "SimClock",
    "SwitchAsic",
    "TableEntry",
    "TableRuntime",
]
