"""The assembled switch ASIC.

Loads a (plain, post-Mantis-compile) P4 program and provides:

- packet processing through ingress -> traffic manager -> egress,
- stepped execution that yields between table applications so
  isolation experiments can interleave control-plane writes mid-packet,
- recirculation (bounded),
- per-port queue statistics surfaced in ``standard_metadata``,
- access to tables/registers/counters for the driver.

All per-packet state lives on the packet; all cross-packet state lives
in registers/counters/tables, exactly as on the hardware.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SwitchError
from repro.p4 import ast
from repro.p4.validate import validate_program
from repro.switch.clock import SimClock
from repro.switch.compiled import CompiledPipeline
from repro.switch.packet import Packet, STANDARD_METADATA_FIELDS
from repro.switch.pipeline import PipelineExecutor
from repro.switch.registers import RegisterArray
from repro.switch.tables import TableRuntime

# P4-14 source for the intrinsic metadata; programs that reference
# standard_metadata fields should prepend this snippet.
STANDARD_METADATA_P4 = (
    "header_type standard_metadata_t {\n    fields {\n"
    + "".join(
        f"        {name} : {width};\n"
        for name, width in STANDARD_METADATA_FIELDS.items()
    )
    + "    }\n}\nmetadata standard_metadata_t standard_metadata;\n"
)

MAX_RECIRCULATIONS = 4

# Execution-engine selection: "compiled" (closure fast path, the
# default) or "interpreter" (the reference tree-walker).  The env var
# is read only when no constructor argument is given, so tests can pin
# a mode per-ASIC while operators flip the whole process.
EXECUTION_MODE_ENV = "MANTIS_PIPELINE"
EXECUTION_MODES = ("compiled", "interpreter")


@dataclass
class CounterRuntime:
    """A P4 counter: a register array plus its counting mode."""

    counter_type: str
    array: RegisterArray


@dataclass
class PortStats:
    """Per-port transmit statistics and a queue-depth signal.

    ``queue_depth`` is set by whoever owns the queueing model (the
    network simulator); standalone ASIC tests leave it at 0.
    """

    tx_packets: int = 0
    tx_bytes: int = 0
    queue_depth: int = 0


class SwitchAsic:
    """A software RMT switch executing one P4 program."""

    def __init__(
        self,
        program: ast.Program,
        clock: Optional[SimClock] = None,
        num_ports: int = 32,
        pipeline_latency_us: float = 0.4,
        seed: int = 0,
        execution_mode: Optional[str] = None,
    ):
        self.clock = clock or SimClock()
        self.num_ports = num_ports
        self.pipeline_latency_us = pipeline_latency_us
        self.program = program
        self._ensure_standard_metadata()
        validate_program(program)

        self.field_masks: Dict[str, int] = {}
        for instance in program.headers.values():
            header_type = program.header_types[instance.header_type]
            for fld in header_type.fields:
                self.field_masks[f"{instance.name}.{fld.name}"] = (
                    (1 << fld.width) - 1
                )

        self.registers: Dict[str, RegisterArray] = {
            name: RegisterArray(name, decl.width, decl.instance_count)
            for name, decl in program.registers.items()
        }
        self.counters: Dict[str, CounterRuntime] = {
            name: CounterRuntime(
                decl.counter_type, RegisterArray(name, 64, decl.instance_count)
            )
            for name, decl in program.counters.items()
        }
        self.tables: Dict[str, TableRuntime] = {
            name: TableRuntime(decl, self._key_widths(decl))
            for name, decl in program.tables.items()
        }
        self.ports: List[PortStats] = [PortStats() for _ in range(num_ports)]
        if execution_mode is None:
            execution_mode = os.environ.get(
                EXECUTION_MODE_ENV, EXECUTION_MODES[0]
            )
        if execution_mode not in EXECUTION_MODES:
            raise SwitchError(
                f"unknown execution mode {execution_mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.execution_mode = execution_mode
        # One RNG shared by both engines so modify_field_rng_uniform
        # draws the same stream regardless of mode (differential tests
        # depend on this).
        rng = random.Random(seed)
        self.interpreter = PipelineExecutor(self, seed=seed, rng=rng)
        self.executor = (
            CompiledPipeline(self, rng=rng)
            if execution_mode == "compiled"
            else self.interpreter
        )
        self.packets_processed = 0
        self.packets_dropped = 0
        # Total pipeline passes, including recirculations: the unit of
        # the switch's packet-level bandwidth (Section 2's point that
        # recirculation divides usable throughput).
        self.pipeline_passes = 0

    def _ensure_standard_metadata(self) -> None:
        if "standard_metadata" in self.program.headers:
            return
        header_type = ast.HeaderType(
            "standard_metadata_t",
            [
                ast.FieldDecl(name, width)
                for name, width in STANDARD_METADATA_FIELDS.items()
            ],
        )
        if "standard_metadata_t" not in self.program.header_types:
            self.program.add(header_type, front=True)
        self.program.add(
            ast.HeaderInstance(
                "standard_metadata", "standard_metadata_t", is_metadata=True
            ),
            front=True,
        )

    def _key_widths(self, decl: ast.TableDecl) -> List[int]:
        widths = []
        for read in decl.reads:
            if read.match_type is ast.MatchType.VALID:
                widths.append(1)
            elif isinstance(read.ref, ast.MalleableRef):
                raise SwitchError(
                    f"table {decl.name} still reads malleable {read.ref}; "
                    "run the Mantis compiler before loading"
                )
            else:
                widths.append(self.program.field_width(read.ref))
        return widths

    # ---- lookups used by the driver ---------------------------------------

    def get_register(self, name: str) -> RegisterArray:
        if name not in self.registers:
            raise SwitchError(f"unknown register {name!r}")
        return self.registers[name]

    def get_counter(self, name: str) -> CounterRuntime:
        if name not in self.counters:
            raise SwitchError(f"unknown counter {name!r}")
        return self.counters[name]

    def get_table(self, name: str) -> TableRuntime:
        if name not in self.tables:
            raise SwitchError(f"unknown table {name!r}")
        return self.tables[name]

    # ---- packet processing --------------------------------------------------

    def _stamp_ingress(self, packet: Packet) -> None:
        packet.fields["standard_metadata.ingress_global_timestamp"] = int(
            self.clock.now
        )

    def _traffic_manager(self, packet: Packet) -> None:
        """Between ingress and egress: resolve the egress port and
        expose its queue depth (the signal Mantis polls)."""
        port = packet.egress_spec
        if not 0 <= port < self.num_ports:
            raise SwitchError(f"egress_spec {port} out of range")
        packet.fields["standard_metadata.egress_port"] = port
        depth = self.ports[port].queue_depth
        packet.fields["standard_metadata.enq_qdepth"] = depth
        packet.fields["standard_metadata.deq_qdepth"] = depth
        packet.fields["standard_metadata.egress_global_timestamp"] = int(
            self.clock.now
        )

    def process(self, packet: Packet) -> Optional[Tuple[int, Packet]]:
        """Run a packet through the full pipeline.

        Returns ``(egress_port, packet)`` or ``None`` if dropped.
        Recirculated packets re-enter ingress up to
        ``MAX_RECIRCULATIONS`` times (each pass costs pipeline latency,
        modelling the paper's recirculation bandwidth concern).

        This is the hot path: it duplicates :meth:`process_stepped`
        without the generator machinery, calling the engine's
        ``run_control`` directly.
        """
        self.packets_processed += 1
        executor = self.executor
        fields = packet.fields
        for _pass in range(1 + MAX_RECIRCULATIONS):
            self.pipeline_passes += 1
            fields["standard_metadata.ingress_global_timestamp"] = int(
                self.clock.now
            )
            executor.run_control("ingress", packet)
            if fields["standard_metadata.drop_flag"]:
                break
            self._traffic_manager(packet)
            executor.run_control("egress", packet)
            if (
                fields["standard_metadata.drop_flag"]
                or not fields["standard_metadata.recirculate_flag"]
            ):
                break
            fields["standard_metadata.recirculate_flag"] = 0
        if fields["standard_metadata.drop_flag"]:
            self.packets_dropped += 1
            return None
        port_id = fields["standard_metadata.egress_port"]
        port = self.ports[port_id]
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes
        return port_id, packet

    def process_stepped(self, packet: Packet) -> Iterator[Tuple[str, str]]:
        """Stepped variant of :meth:`process`; yields
        ``("apply", table)`` before every table application."""
        self.packets_processed += 1
        for _pass in range(1 + MAX_RECIRCULATIONS):
            self.pipeline_passes += 1
            self._stamp_ingress(packet)
            yield from self.executor.iter_control("ingress", packet)
            if packet.dropped:
                break
            self._traffic_manager(packet)
            yield from self.executor.iter_control("egress", packet)
            if packet.dropped or not packet.recirculated:
                break
            packet.fields["standard_metadata.recirculate_flag"] = 0
        if packet.dropped:
            self.packets_dropped += 1
        else:
            port = self.ports[packet.fields["standard_metadata.egress_port"]]
            port.tx_packets += 1
            port.tx_bytes += packet.size_bytes

    def _result(self, packet: Packet) -> Optional[Tuple[int, Packet]]:
        if packet.dropped:
            return None
        return packet.fields["standard_metadata.egress_port"], packet
