"""The assembled switch ASIC.

Loads a (plain, post-Mantis-compile) P4 program and provides:

- packet processing through ingress -> traffic manager -> egress,
- stepped execution that yields between table applications so
  isolation experiments can interleave control-plane writes mid-packet,
- recirculation (bounded),
- per-port queue statistics surfaced in ``standard_metadata``,
- access to tables/registers/counters for the driver.

All per-packet state lives on the packet; all cross-packet state lives
in registers/counters/tables, exactly as on the hardware.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SwitchError
from repro.p4 import ast
from repro.p4.validate import validate_program
from repro.switch.clock import SimClock
from repro.switch import columnar as columnar_engine
from repro.switch.columnar import (
    ColumnarBatch,
    ColumnarPipeline,
    ColumnarResult,
)
from repro.switch.compiled import CompiledPipeline, PipelineProfile
from repro.switch.packet import Packet, STANDARD_METADATA_FIELDS
from repro.switch.pipeline import PipelineExecutor
from repro.switch.registers import RegisterArray
from repro.switch.tables import TableRuntime

# P4-14 source for the intrinsic metadata; programs that reference
# standard_metadata fields should prepend this snippet.
STANDARD_METADATA_P4 = (
    "header_type standard_metadata_t {\n    fields {\n"
    + "".join(
        f"        {name} : {width};\n"
        for name, width in STANDARD_METADATA_FIELDS.items()
    )
    + "    }\n}\nmetadata standard_metadata_t standard_metadata;\n"
)

MAX_RECIRCULATIONS = 4

# Execution-engine selection: "compiled" (closure fast path, the
# default), "interpreter" (the reference tree-walker), or "columnar"
# (numpy struct-of-arrays batch engine; scalar paths fall back to the
# compiled closures).  The env var is read only when no constructor
# argument is given, so tests can pin a mode per-ASIC while operators
# flip the whole process.
EXECUTION_MODE_ENV = "MANTIS_PIPELINE"
EXECUTION_MODES = ("compiled", "interpreter", "columnar")


@dataclass
class CounterRuntime:
    """A P4 counter: a register array plus its counting mode."""

    counter_type: str
    array: RegisterArray


@dataclass
class BatchStats:
    """Always-on aggregates for the batch path.

    ``fused`` counts packets fully handled by the single-pass fast
    loop; ``slow_path`` counts packets that fell back to the generic
    pass-by-pass loop (recirculation, a scalar table fallback, or the
    reference engine).  ``packets == fused + slow_path`` always holds,
    including on error paths.

    ``columnar`` counts packets that entered the columnar engine's
    vectorized sweeps; of those, ``columnar_fallback`` needed scalar
    assistance for at least one table, lane, or recirculation pass
    (per-reason detail lives in
    :attr:`ColumnarPipeline.fallback_counts`).
    """

    batches: int = 0
    packets: int = 0
    fused: int = 0
    slow_path: int = 0
    columnar: int = 0
    columnar_fallback: int = 0


# A packet's processing outcome: (egress_port, packet) or None if dropped.
ProcessResult = Optional[Tuple[int, Packet]]

# Pull-based queue-depth signal: (port, now_us) -> depth.  Installed by
# the network simulator so the traffic manager reads live queue state
# (with lazy departure accounting) instead of a pushed snapshot.
QueueModel = Callable[[int, float], int]


@dataclass
class PortStats:
    """Per-port transmit statistics and a queue-depth signal.

    ``queue_depth`` is set by whoever owns the queueing model (the
    network simulator); standalone ASIC tests leave it at 0.
    """

    tx_packets: int = 0
    tx_bytes: int = 0
    queue_depth: int = 0


class SwitchAsic:
    """A software RMT switch executing one P4 program."""

    def __init__(
        self,
        program: ast.Program,
        clock: Optional[SimClock] = None,
        num_ports: int = 32,
        pipeline_latency_us: float = 0.4,
        seed: int = 0,
        execution_mode: Optional[str] = None,
    ):
        self.clock = clock or SimClock()
        self.num_ports = num_ports
        self.pipeline_latency_us = pipeline_latency_us
        self.program = program
        self._ensure_standard_metadata()
        validate_program(program)

        self.field_masks: Dict[str, int] = {}
        for instance in program.headers.values():
            header_type = program.header_types[instance.header_type]
            for fld in header_type.fields:
                self.field_masks[f"{instance.name}.{fld.name}"] = (
                    (1 << fld.width) - 1
                )

        self.registers: Dict[str, RegisterArray] = {
            name: RegisterArray(name, decl.width, decl.instance_count)
            for name, decl in program.registers.items()
        }
        self.counters: Dict[str, CounterRuntime] = {
            name: CounterRuntime(
                decl.counter_type, RegisterArray(name, 64, decl.instance_count)
            )
            for name, decl in program.counters.items()
        }
        self.tables: Dict[str, TableRuntime] = {
            name: TableRuntime(decl, self._key_widths(decl))
            for name, decl in program.tables.items()
        }
        self.ports: List[PortStats] = [PortStats() for _ in range(num_ports)]
        if execution_mode is None:
            execution_mode = os.environ.get(
                EXECUTION_MODE_ENV, EXECUTION_MODES[0]
            )
        if execution_mode not in EXECUTION_MODES:
            raise SwitchError(
                f"unknown execution mode {execution_mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.execution_mode = execution_mode
        # One RNG shared by both engines so modify_field_rng_uniform
        # draws the same stream regardless of mode (differential tests
        # depend on this).
        rng = random.Random(seed)
        self._rng = rng
        self._seed = seed
        self.interpreter = PipelineExecutor(self, seed=seed, rng=rng)
        if execution_mode == "compiled":
            self.executor = CompiledPipeline(self, rng=rng)
        elif execution_mode == "columnar":
            self.executor = ColumnarPipeline(self, rng=rng)
        else:
            self.executor = self.interpreter
        self.packets_processed = 0
        self.packets_dropped = 0
        # Total pipeline passes, including recirculations: the unit of
        # the switch's packet-level bandwidth (Section 2's point that
        # recirculation divides usable throughput).
        self.pipeline_passes = 0
        self.batch_stats = BatchStats()
        # Set by whoever owns the queueing model; None means the pushed
        # PortStats.queue_depth snapshot is authoritative (standalone
        # ASIC tests, fastbench).
        self.queue_model: Optional[QueueModel] = None
        self.profile: Optional[PipelineProfile] = None

    def _ensure_standard_metadata(self) -> None:
        if "standard_metadata" in self.program.headers:
            return
        header_type = ast.HeaderType(
            "standard_metadata_t",
            [
                ast.FieldDecl(name, width)
                for name, width in STANDARD_METADATA_FIELDS.items()
            ],
        )
        if "standard_metadata_t" not in self.program.header_types:
            self.program.add(header_type, front=True)
        self.program.add(
            ast.HeaderInstance(
                "standard_metadata", "standard_metadata_t", is_metadata=True
            ),
            front=True,
        )

    def _key_widths(self, decl: ast.TableDecl) -> List[int]:
        widths = []
        for read in decl.reads:
            if read.match_type is ast.MatchType.VALID:
                widths.append(1)
            elif isinstance(read.ref, ast.MalleableRef):
                raise SwitchError(
                    f"table {decl.name} still reads malleable {read.ref}; "
                    "run the Mantis compiler before loading"
                )
            else:
                widths.append(self.program.field_width(read.ref))
        return widths

    # ---- lookups used by the driver ---------------------------------------

    def get_register(self, name: str) -> RegisterArray:
        if name not in self.registers:
            raise SwitchError(f"unknown register {name!r}")
        return self.registers[name]

    def get_counter(self, name: str) -> CounterRuntime:
        if name not in self.counters:
            raise SwitchError(f"unknown counter {name!r}")
        return self.counters[name]

    def get_table(self, name: str) -> TableRuntime:
        if name not in self.tables:
            raise SwitchError(f"unknown table {name!r}")
        return self.tables[name]

    # ---- profiling --------------------------------------------------------

    def enable_profiling(self) -> PipelineProfile:
        """Rebuild the compiled engine with hot-loop counters.

        Counting costs one dict increment per control run, table apply,
        and action execution, so it is opt-in.  The engine is rebuilt
        around the *same* RNG object, keeping the packet-visible random
        stream unchanged by profiling."""
        if self.execution_mode not in ("compiled", "columnar"):
            raise SwitchError(
                "hot-loop profiling requires the compiled or columnar engine"
            )
        profile = PipelineProfile()
        engine = (
            ColumnarPipeline
            if self.execution_mode == "columnar"
            else CompiledPipeline
        )
        self.executor = engine(self, rng=self._rng, profile=profile)
        self.profile = profile
        return profile

    # ---- packet processing --------------------------------------------------

    def _stamp_ingress(self, packet: Packet) -> None:
        packet.fields["standard_metadata.ingress_global_timestamp"] = int(
            self.clock.now
        )

    def _traffic_manager(self, packet: Packet) -> None:
        """Between ingress and egress: resolve the egress port and
        expose its queue depth (the signal Mantis polls)."""
        port = packet.egress_spec
        if not 0 <= port < self.num_ports:
            raise SwitchError(f"egress_spec {port} out of range")
        packet.fields["standard_metadata.egress_port"] = port
        queue_model = self.queue_model
        if queue_model is not None:
            depth = queue_model(port, self.clock.now)
        else:
            depth = self.ports[port].queue_depth
        packet.fields["standard_metadata.enq_qdepth"] = depth
        packet.fields["standard_metadata.deq_qdepth"] = depth
        packet.fields["standard_metadata.egress_global_timestamp"] = int(
            self.clock.now
        )

    def _traffic_manager_at(
        self, packet: Packet, now: float, ts: int
    ) -> None:
        """:meth:`_traffic_manager` with an explicit notional time
        (burst coalescing runs packets at their per-packet arrival
        times while the real clock sits at the burst start)."""
        port = packet.egress_spec
        if not 0 <= port < self.num_ports:
            raise SwitchError(f"egress_spec {port} out of range")
        fields = packet.fields
        fields["standard_metadata.egress_port"] = port
        queue_model = self.queue_model
        if queue_model is not None:
            depth = queue_model(port, now)
        else:
            depth = self.ports[port].queue_depth
        fields["standard_metadata.enq_qdepth"] = depth
        fields["standard_metadata.deq_qdepth"] = depth
        fields["standard_metadata.egress_global_timestamp"] = ts

    def process(self, packet: Packet) -> Optional[Tuple[int, Packet]]:
        """Run a packet through the full pipeline.

        Returns ``(egress_port, packet)`` or ``None`` if dropped.
        Recirculated packets re-enter ingress up to
        ``MAX_RECIRCULATIONS`` times (each pass costs pipeline latency,
        modelling the paper's recirculation bandwidth concern).

        This is the hot path: it duplicates :meth:`process_stepped`
        without the generator machinery, calling the engine's
        ``run_control`` directly.
        """
        self.packets_processed += 1
        executor = self.executor
        fields = packet.fields
        for _pass in range(1 + MAX_RECIRCULATIONS):
            self.pipeline_passes += 1
            fields["standard_metadata.ingress_global_timestamp"] = int(
                self.clock.now
            )
            executor.run_control("ingress", packet)
            if fields["standard_metadata.drop_flag"]:
                break
            self._traffic_manager(packet)
            executor.run_control("egress", packet)
            if (
                fields["standard_metadata.drop_flag"]
                or not fields["standard_metadata.recirculate_flag"]
            ):
                break
            fields["standard_metadata.recirculate_flag"] = 0
        if fields["standard_metadata.drop_flag"]:
            self.packets_dropped += 1
            return None
        port_id = fields["standard_metadata.egress_port"]
        port = self.ports[port_id]
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes
        return port_id, packet

    def process_batch(
        self,
        packets: Sequence[Packet],
        times: Optional[Sequence[float]] = None,
        sink: Optional[Callable[[int, ProcessResult], None]] = None,
        tm: Optional[object] = None,
    ) -> List[ProcessResult]:
        """Run a burst of packets through the pipeline in one call.

        Semantically identical to calling :meth:`process` per packet --
        same results, counters, timestamps, and port statistics -- but
        with the per-packet binding work hoisted out of the loop: the
        control closures, port list, and timestamp are resolved once
        per batch, and the common single-pass forward path runs fused.
        Drops stay inline; recirculation falls back to the generic
        pass-by-pass loop per packet.

        ``times`` optionally gives each packet a notional clock value
        (the network simulator's burst coalescing: one event, exact
        per-packet arrival times).  ``sink`` is called with
        ``(index, result)`` immediately after each packet, letting a
        caller interleave per-packet work -- queue accounting must see
        packet ``i`` enqueued before packet ``i + 1`` reads depths.

        ``tm`` is the columnar alternative to ``sink``: a traffic
        manager with ``admit(lanes, ports, times, sizes)`` (causal
        batched queue accounting at the TM point) and a per-lane
        ``sink`` fallback.  Only pass it when the caller has proved
        statically that no reachable egress action drops and nothing
        recirculates -- ``admit`` commits enqueues before the egress
        sweeps run, which is exactly the scalar interleaving only
        under that guarantee (the vectorized tail enforces it).
        """
        executor = self.executor
        get_plan = getattr(executor, "batch_ops", None)
        if get_plan is None:
            if tm is not None and sink is None:
                sink = tm.sink
            return self._batch_reference(packets, times, sink)
        get_columnar = getattr(executor, "columnar_ops", None)
        if get_columnar is not None:
            sweeps = get_columnar("ingress")
            if sweeps is not None:
                executor.begin_batch()
                batch = ColumnarBatch.from_packets(
                    packets if isinstance(packets, list) else list(packets)
                )
                return self._batch_columnar(
                    batch, times, sink, sweeps, True, tm
                )
        if tm is not None and sink is None:
            # Scalar engines take the traffic manager's per-lane view.
            sink = tm.sink
        get_major = getattr(executor, "batch_major_ops", None)
        if get_major is not None:
            major_ops = get_major("ingress")
            if major_ops is not None:
                executor.begin_batch()
                return self._batch_major(
                    packets, times, sink, major_ops, get_plan("egress") or ()
                )
        ingress_ops = get_plan("ingress")
        egress_ops = get_plan("egress")
        if ingress_ops is None:
            # Profiling: no fused plan; route each packet through the
            # counting control closures instead.
            bind = executor.bound_control
            control = bind("ingress")
            ingress_ops = (control,) if control is not None else ()
            control = bind("egress")
            egress_ops = (control,) if control is not None else ()
        else:
            executor.begin_batch()
        ports = self.ports
        num_ports = self.num_ports
        queue_model = self.queue_model
        clock_now = self.clock.now
        shared_ts = int(clock_now) if times is None else None
        results: List[ProcessResult] = []
        append = results.append
        processed = 0
        passes = 0
        dropped = 0
        fused = 0
        slow = 0
        drop_key = "standard_metadata.drop_flag"
        accounted = True
        try:
            for index, packet in enumerate(packets):
                processed += 1
                passes += 1
                # Until this lane lands in ``fused`` or ``slow``, an
                # engine error (e.g. out-of-range egress_spec) must
                # still bucket it so packets == fused + slow_path
                # survives the partial-batch counter flush below.
                accounted = False
                fields = packet.fields
                if shared_ts is None:
                    t_now = times[index]
                    ts = int(t_now)
                else:
                    t_now = clock_now
                    ts = shared_ts
                fields["standard_metadata.ingress_global_timestamp"] = ts
                for op in ingress_ops:
                    if fields[drop_key]:
                        break
                    op(packet)
                if fields[drop_key]:
                    dropped += 1
                    fused += 1
                    accounted = True
                    append(None)
                    if sink is not None:
                        sink(index, None)
                    continue
                port_id = fields["standard_metadata.egress_spec"]
                if not 0 <= port_id < num_ports:
                    raise SwitchError(
                        f"egress_spec {port_id} out of range"
                    )
                fields["standard_metadata.egress_port"] = port_id
                if queue_model is not None:
                    depth = queue_model(port_id, t_now)
                else:
                    depth = ports[port_id].queue_depth
                fields["standard_metadata.enq_qdepth"] = depth
                fields["standard_metadata.deq_qdepth"] = depth
                fields["standard_metadata.egress_global_timestamp"] = ts
                for op in egress_ops:
                    if fields[drop_key]:
                        break
                    op(packet)
                if fields[drop_key]:
                    dropped += 1
                    fused += 1
                    accounted = True
                    append(None)
                    if sink is not None:
                        sink(index, None)
                    continue
                if fields["standard_metadata.recirculate_flag"]:
                    slow += 1
                    accounted = True
                    extra, result = self._recirculate(packet, t_now, ts)
                    passes += extra
                    if result is None:
                        dropped += 1
                    append(result)
                    if sink is not None:
                        sink(index, result)
                    continue
                fused += 1
                accounted = True
                port = ports[port_id]
                port.tx_packets += 1
                port.tx_bytes += packet.size_bytes
                result = (port_id, packet)
                append(result)
                if sink is not None:
                    sink(index, result)
        except SwitchError:
            if not accounted:
                slow += 1
            raise
        finally:
            self.packets_processed += processed
            self.pipeline_passes += passes
            self.packets_dropped += dropped
            stats = self.batch_stats
            stats.batches += 1
            stats.packets += processed
            stats.fused += fused
            stats.slow_path += slow
        return results

    def _batch_major(
        self,
        packets: Sequence[Packet],
        times: Optional[Sequence[float]],
        sink: Optional[Callable[[int, ProcessResult], None]],
        ingress_ops: Sequence[Callable[[List[Packet]], None]],
        egress_ops: Sequence[Callable[[Packet], None]],
    ) -> List[ProcessResult]:
        """Op-major burst execution: each compiled ingress table sweeps
        the whole batch before the next runs, so the apply-frame cost is
        paid once per table per *batch* instead of per packet.

        Only reached when :meth:`CompiledPipeline.batch_major_ops`
        proved the reordering unobservable (straight-line exact-match
        ingress, pairwise-disjoint register/counter/RNG footprints, no
        stateful recirculation); per-packet traffic-manager and egress
        work still runs in arrival order so queue accounting via
        ``sink`` sees packet ``i`` enqueued before ``i + 1``.
        """
        batch = packets if isinstance(packets, list) else list(packets)
        ports = self.ports
        num_ports = self.num_ports
        queue_model = self.queue_model
        clock_now = self.clock.now
        if times is None:
            stamps: Optional[List[int]] = None
            shared_ts = int(clock_now)
            for packet in batch:
                packet.fields[
                    "standard_metadata.ingress_global_timestamp"
                ] = shared_ts
        else:
            stamps = [int(t) for t in times]
            shared_ts = 0
            for packet, ts in zip(batch, stamps):
                packet.fields[
                    "standard_metadata.ingress_global_timestamp"
                ] = ts
        results: List[ProcessResult] = []
        append = results.append
        processed = len(batch)
        passes = len(batch)
        dropped = 0
        fused = 0
        slow = 0
        drop_key = "standard_metadata.drop_flag"
        try:
            try:
                for batch_op in ingress_ops:
                    batch_op(batch)
            except SwitchError:
                # Every lane was mid-sweep; bucket them all so
                # packets == fused + slow_path holds in the flush.
                slow += len(batch)
                raise
            index = -1
            accounted = True
            try:
                for index, packet in enumerate(batch):
                    accounted = False
                    fields = packet.fields
                    if stamps is None:
                        t_now = clock_now
                        ts = shared_ts
                    else:
                        t_now = times[index]
                        ts = stamps[index]
                    if fields[drop_key]:
                        dropped += 1
                        fused += 1
                        accounted = True
                        append(None)
                        if sink is not None:
                            sink(index, None)
                        continue
                    port_id = fields["standard_metadata.egress_spec"]
                    if not 0 <= port_id < num_ports:
                        raise SwitchError(
                            f"egress_spec {port_id} out of range"
                        )
                    fields["standard_metadata.egress_port"] = port_id
                    if queue_model is not None:
                        depth = queue_model(port_id, t_now)
                    else:
                        depth = ports[port_id].queue_depth
                    fields["standard_metadata.enq_qdepth"] = depth
                    fields["standard_metadata.deq_qdepth"] = depth
                    fields["standard_metadata.egress_global_timestamp"] = ts
                    for op in egress_ops:
                        if fields[drop_key]:
                            break
                        op(packet)
                    if fields[drop_key]:
                        dropped += 1
                        fused += 1
                        accounted = True
                        append(None)
                        if sink is not None:
                            sink(index, None)
                        continue
                    if fields["standard_metadata.recirculate_flag"]:
                        slow += 1
                        accounted = True
                        extra, result = self._recirculate(packet, t_now, ts)
                        passes += extra
                        if result is None:
                            dropped += 1
                        append(result)
                        if sink is not None:
                            sink(index, result)
                        continue
                    fused += 1
                    accounted = True
                    port = ports[port_id]
                    port.tx_packets += 1
                    port.tx_bytes += packet.size_bytes
                    result = (port_id, packet)
                    append(result)
                    if sink is not None:
                        sink(index, result)
            except SwitchError:
                # The failing lane plus every unreached lane was
                # already counted in ``processed`` up front: bucket
                # the failing lane as slow, finished-by-ingress drops
                # as fused, and the rest as slow.
                if not accounted:
                    slow += 1
                for later in batch[index + 1:]:
                    if later.fields[drop_key]:
                        dropped += 1
                        fused += 1
                    else:
                        slow += 1
                raise
        finally:
            self.packets_processed += processed
            self.pipeline_passes += passes
            self.packets_dropped += dropped
            stats = self.batch_stats
            stats.batches += 1
            stats.packets += processed
            stats.fused += fused
            stats.slow_path += slow
        return results

    def process_batch_columnar(
        self,
        batch: ColumnarBatch,
        times: Optional[Sequence[float]] = None,
    ) -> ColumnarResult:
        """Native columnar entry: run a (typically pool-backed) batch
        and return per-lane egress ports without materializing
        ``Packet`` objects -- the benchmark fast path.  Requires the
        columnar engine with an op-major-admissible program; use
        :meth:`process_batch` for the always-available path."""
        executor = self.executor
        get_columnar = getattr(executor, "columnar_ops", None)
        sweeps = get_columnar("ingress") if get_columnar is not None else None
        if sweeps is None:
            raise SwitchError(
                "process_batch_columnar requires execution_mode='columnar' "
                "with an op-major-admissible program (and profiling off)"
            )
        executor.begin_batch()
        return self._batch_columnar(batch, times, None, sweeps, False)

    def _batch_columnar(
        self,
        batch: ColumnarBatch,
        times: Optional[Sequence[float]],
        sink: Optional[Callable[[int, ProcessResult], None]],
        sweeps,
        collect: bool,
        tm: Optional[object] = None,
    ):
        """Columnar burst execution: vectorized op-major ingress
        sweeps, then either a vectorized traffic-manager/egress tail
        (no sink, vectorizable egress, in-range specs, and either no
        queue model or a caller-provided batched ``tm``) or the
        scalar per-lane tail with exact :meth:`_batch_major`
        semantics.  Returns per-packet results (``collect``) or a
        :class:`ColumnarResult`."""
        np = columnar_engine.np
        executor = self.executor
        n = batch.n
        ports = self.ports
        num_ports = self.num_ports
        queue_model = self.queue_model
        clock_now = self.clock.now
        drop_key = "standard_metadata.drop_flag"
        if times is None:
            stamps = None
            shared_ts = int(clock_now)
            batch.store(
                "standard_metadata.ingress_global_timestamp", None, shared_ts
            )
        else:
            stamps = np.fromiter((int(t) for t in times), np.int64, count=n)
            shared_ts = 0
            batch.store(
                "standard_metadata.ingress_global_timestamp", None, stamps
            )
        state = columnar_engine._SweepState(batch, executor.fallback_counts)
        results: Optional[List[ProcessResult]] = (
            [None] * n if collect else None
        )
        processed = n
        passes = n
        dropped = 0
        try:
            try:
                for sweep in sweeps:
                    sweep.run(state)
            except SwitchError:
                # Every lane was mid-sweep: bucket them all so
                # packets == fused + slow_path holds in the flush.
                state.fallback[:] = True
                raise
            egress_sweeps = executor.columnar_ops("egress")
            drop = batch.col(drop_key)
            live_mask = drop == 0
            if sink is not None:
                tail_reason = "tail:sink"
            elif queue_model is not None and (tm is None or times is None):
                tail_reason = "tail:queue-model"
            elif egress_sweeps is None:
                tail_reason = "tail:egress-plan"
            else:
                tail_reason = None
            live_idx = None
            live_spec = None
            if tail_reason is None:
                if not bool(live_mask.all()):
                    live_idx = np.nonzero(live_mask)[0]
                try:
                    spec = batch.col("standard_metadata.egress_spec")
                except columnar_engine._Unvectorizable:
                    tail_reason = "tail:egress-spec"
                else:
                    live_spec = spec if live_idx is None else spec[live_idx]
                    if live_spec.size and bool(
                        ((live_spec < 0) | (live_spec >= num_ports)).any()
                    ):
                        # An out-of-range spec must raise with scalar
                        # semantics (lane position, partial effects).
                        tail_reason = "tail:egress-spec"
            if tail_reason is None:
                # ---- vectorized traffic manager + egress ----
                batch.store(
                    "standard_metadata.egress_port", live_idx, live_spec
                )
                if tm is not None:
                    # Caller-provided traffic manager: causal batched
                    # queue accounting (enqueues committed now; the
                    # caller guaranteed egress cannot drop them).
                    depth_vals = tm.admit(
                        live_idx, live_spec, times,
                        batch.sizes if live_idx is None
                        else batch.sizes[live_idx],
                    )
                else:
                    depths = np.fromiter(
                        (port.queue_depth for port in ports),
                        np.int64, count=num_ports,
                    )
                    depth_vals = (
                        depths[live_spec] if live_spec.size else live_spec
                    )
                batch.store(
                    "standard_metadata.enq_qdepth", live_idx, depth_vals
                )
                batch.store(
                    "standard_metadata.deq_qdepth", live_idx, depth_vals
                )
                if stamps is None:
                    egress_ts = shared_ts
                elif live_idx is None:
                    egress_ts = stamps
                else:
                    egress_ts = stamps[live_idx]
                batch.store(
                    "standard_metadata.egress_global_timestamp",
                    live_idx, egress_ts,
                )
                # Delivery uses the TM-time port even if egress
                # rewrites egress_spec; snapshot before the sweeps.
                tm_vals = (
                    live_spec.copy() if live_idx is None else live_spec
                )
                for sweep in egress_sweeps:
                    sweep.run(state)
                drop = batch.col(drop_key)
                live2 = drop == 0
                dropped = n - int(live2.sum())
                recirc = batch.col("standard_metadata.recirculate_flag")
                recirc_mask = live2 & (recirc != 0)
                has_recirc = bool(recirc_mask.any())
                if tm is not None and (
                    has_recirc or dropped != n - int(live_mask.sum())
                ):
                    # The caller's static no-drop/no-recirc guarantee
                    # was violated after enqueues were committed.
                    raise SwitchError(
                        "burst traffic manager requires egress without "
                        "drops or recirculation"
                    )
                deliver_mask = (
                    live2 & ~recirc_mask if has_recirc else live2
                )
                tm_ports = np.full(n, -1, np.int64)
                if live_idx is None:
                    tm_ports[:] = tm_vals
                else:
                    tm_ports[live_idx] = tm_vals
                if bool(deliver_mask.all()):
                    del_ports = tm_ports
                    del_sizes = batch.sizes
                else:
                    del_idx = np.nonzero(deliver_mask)[0]
                    del_ports = tm_ports[del_idx]
                    del_sizes = batch.sizes[del_idx]
                if del_ports.size:
                    tx_counts = np.bincount(del_ports, minlength=num_ports)
                    tx_bytes = np.bincount(
                        del_ports,
                        weights=del_sizes.astype(np.float64),
                        minlength=num_ports,
                    )
                    for port_id in np.nonzero(tx_counts)[0].tolist():
                        port = ports[port_id]
                        port.tx_packets += int(tx_counts[port_id])
                        port.tx_bytes += int(tx_bytes[port_id])
                packets = None
                if collect or has_recirc:
                    batch.flush()
                    packets = batch.packets
                if has_recirc:
                    # Columnar recirculation: compact the flagged
                    # lanes into a sub-batch and re-run the vectorized
                    # sweeps per pass instead of draining each lane.
                    lanes = np.nonzero(recirc_mask)[0]
                    extra, lane_ports = self._recirculate_columnar(
                        batch, lanes, times, stamps, shared_ts,
                        clock_now, sweeps, egress_sweeps, state,
                    )
                    passes += extra
                    tm_ports[lanes] = lane_ports
                    port_vals = lane_ports.tolist()
                    for pos, lane in enumerate(lanes.tolist()):
                        port_id = port_vals[pos]
                        if port_id < 0:
                            dropped += 1
                            if collect:
                                results[lane] = None
                        elif collect:
                            results[lane] = (port_id, packets[lane])
                if collect:
                    port_list = tm_ports.tolist()
                    for lane, alive in enumerate(deliver_mask.tolist()):
                        if alive:
                            results[lane] = (port_list[lane], packets[lane])
                    return results
                return ColumnarResult(tm_ports, n - dropped, dropped)
            # ---- scalar tail (exact _batch_major semantics) ----
            if tm is not None and sink is None:
                sink = tm.sink
            executor.count_fallback(tail_reason, n)
            batch.flush()
            packets = batch.packets
            egress_ops = executor.batch_ops("egress") or ()
            lane_ports = None if collect else np.full(n, -1, np.int64)
            index = -1
            accounted = True
            try:
                for index, packet in enumerate(packets):
                    accounted = False
                    fields = packet.fields
                    if stamps is None:
                        t_now = clock_now
                        ts = shared_ts
                    else:
                        t_now = times[index]
                        ts = int(stamps[index])
                    if fields[drop_key]:
                        dropped += 1
                        accounted = True
                        if sink is not None:
                            sink(index, None)
                        continue
                    port_id = fields["standard_metadata.egress_spec"]
                    if not 0 <= port_id < num_ports:
                        raise SwitchError(
                            f"egress_spec {port_id} out of range"
                        )
                    fields["standard_metadata.egress_port"] = port_id
                    if queue_model is not None:
                        depth = queue_model(port_id, t_now)
                    else:
                        depth = ports[port_id].queue_depth
                    fields["standard_metadata.enq_qdepth"] = depth
                    fields["standard_metadata.deq_qdepth"] = depth
                    fields["standard_metadata.egress_global_timestamp"] = ts
                    for op in egress_ops:
                        if fields[drop_key]:
                            break
                        op(packet)
                    if fields[drop_key]:
                        dropped += 1
                        accounted = True
                        if sink is not None:
                            sink(index, None)
                        continue
                    if fields["standard_metadata.recirculate_flag"]:
                        state.fallback[index] = True
                        state.reasons["recirc"] = (
                            state.reasons.get("recirc", 0) + 1
                        )
                        accounted = True
                        extra, result = self._recirculate(packet, t_now, ts)
                        passes += extra
                        if result is None:
                            dropped += 1
                        if collect:
                            results[index] = result
                        elif result is not None:
                            lane_ports[index] = result[0]
                        if sink is not None:
                            sink(index, result)
                        continue
                    accounted = True
                    port = ports[port_id]
                    port.tx_packets += 1
                    port.tx_bytes += packet.size_bytes
                    if collect:
                        results[index] = (port_id, packet)
                    else:
                        lane_ports[index] = port_id
                    if sink is not None:
                        sink(index, (port_id, packet))
            except SwitchError:
                # Same bucketing as _batch_major: the failing lane
                # counts slow, unreached lanes count by their
                # ingress-time drop flag.
                if not accounted:
                    state.fallback[index] = True
                for later_index in range(index + 1, n):
                    if packets[later_index].fields[drop_key]:
                        dropped += 1
                    else:
                        state.fallback[later_index] = True
                raise
            if collect:
                return results
            return ColumnarResult(lane_ports, n - dropped, dropped)
        finally:
            slow = int(state.fallback.sum())
            self.packets_processed += processed
            self.pipeline_passes += passes
            self.packets_dropped += dropped
            stats = self.batch_stats
            stats.batches += 1
            stats.packets += processed
            stats.fused += processed - slow
            stats.slow_path += slow
            stats.columnar += processed
            stats.columnar_fallback += slow

    def _batch_reference(
        self,
        packets: Sequence[Packet],
        times: Optional[Sequence[float]],
        sink: Optional[Callable[[int, ProcessResult], None]],
    ) -> List[ProcessResult]:
        """Batch entry for engines without a fused loop: the scalar
        path per packet (the differential reference)."""
        results: List[ProcessResult] = []
        stats = self.batch_stats
        stats.batches += 1
        stats.packets += len(packets)
        stats.slow_path += len(packets)
        for index, packet in enumerate(packets):
            if times is None:
                result = self.process(packet)
            else:
                result = self._process_at(packet, times[index])
            results.append(result)
            if sink is not None:
                sink(index, result)
        return results

    def _process_at(self, packet: Packet, now: float) -> ProcessResult:
        """:meth:`process` with an explicit notional clock value;
        mirrors its structure exactly (same counters, same pass
        bounds) so burst and per-packet runs stay bit-identical."""
        self.packets_processed += 1
        executor = self.executor
        fields = packet.fields
        ts = int(now)
        for _pass in range(1 + MAX_RECIRCULATIONS):
            self.pipeline_passes += 1
            fields["standard_metadata.ingress_global_timestamp"] = ts
            executor.run_control("ingress", packet)
            if fields["standard_metadata.drop_flag"]:
                break
            self._traffic_manager_at(packet, now, ts)
            executor.run_control("egress", packet)
            if (
                fields["standard_metadata.drop_flag"]
                or not fields["standard_metadata.recirculate_flag"]
            ):
                break
            fields["standard_metadata.recirculate_flag"] = 0
        if fields["standard_metadata.drop_flag"]:
            self.packets_dropped += 1
            return None
        port_id = fields["standard_metadata.egress_port"]
        port = self.ports[port_id]
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes
        return port_id, packet

    def _recirculate(
        self, packet: Packet, now: float, ts: int
    ) -> Tuple[int, ProcessResult]:
        """Passes 2..N of a packet whose first (fused) pass requested
        recirculation; mirrors the tail of :meth:`process`.  Returns
        ``(extra_passes, result)``; the caller owns the counters."""
        executor = self.executor
        fields = packet.fields
        extra = 0
        fields["standard_metadata.recirculate_flag"] = 0
        for _pass in range(MAX_RECIRCULATIONS):
            extra += 1
            fields["standard_metadata.ingress_global_timestamp"] = ts
            executor.run_control("ingress", packet)
            if fields["standard_metadata.drop_flag"]:
                break
            self._traffic_manager_at(packet, now, ts)
            executor.run_control("egress", packet)
            if (
                fields["standard_metadata.drop_flag"]
                or not fields["standard_metadata.recirculate_flag"]
            ):
                break
            fields["standard_metadata.recirculate_flag"] = 0
        if fields["standard_metadata.drop_flag"]:
            return extra, None
        port_id = fields["standard_metadata.egress_port"]
        port = self.ports[port_id]
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes
        return extra, (port_id, packet)

    def _recirculate_tail(
        self, packet: Packet, now: float, ts: int, budget: int
    ) -> Tuple[int, ProcessResult]:
        """Finish one recirculation pass from the traffic manager
        onward (the columnar loop already ran this pass's ingress),
        then continue for up to ``budget`` further full passes;
        mirrors :meth:`_recirculate` statement for statement.  Returns
        ``(extra_full_passes, result)``."""
        executor = self.executor
        fields = packet.fields
        extra = 0
        while True:
            self._traffic_manager_at(packet, now, ts)
            executor.run_control("egress", packet)
            if (
                fields["standard_metadata.drop_flag"]
                or not fields["standard_metadata.recirculate_flag"]
            ):
                break
            fields["standard_metadata.recirculate_flag"] = 0
            if budget == 0:
                break
            budget -= 1
            extra += 1
            fields["standard_metadata.ingress_global_timestamp"] = ts
            executor.run_control("ingress", packet)
            if fields["standard_metadata.drop_flag"]:
                break
        if fields["standard_metadata.drop_flag"]:
            return extra, None
        port_id = fields["standard_metadata.egress_port"]
        port = self.ports[port_id]
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes
        return extra, (port_id, packet)

    def _recirculate_columnar(
        self,
        parent: ColumnarBatch,
        lanes,
        times,
        stamps,
        shared_ts: int,
        clock_now: float,
        sweeps,
        egress_sweeps,
        parent_state,
    ):
        """Columnar recirculation: compact the recirculate-flagged
        lanes into a sub-batch (sharing the parent's packet objects)
        and re-run the vectorized sweeps pass by pass instead of
        draining each lane through the fused scalar steps.

        Only reachable for programs whose admitted footprint is
        recirc-alone -- no registers, counters, or RNG anywhere -- so
        sweeping all still-recirculating lanes together each pass is
        unobservable.  Lanes that need scalar semantics mid-flight (an
        out-of-range ``egress_spec`` must raise at its exact lane
        position with per-lane partial effects) drain in ascending
        lane order and count as fallbacks; everything else stays
        vectorized.  Returns ``(extra_passes, lane_ports)`` where
        ``lane_ports[k] == -1`` marks a dropped lane."""
        np = columnar_engine.np
        executor = self.executor
        ports = self.ports
        num_ports = self.num_ports
        packets = parent.packets
        sub_packets = [packets[int(lane)] for lane in lanes.tolist()]
        sub = ColumnarBatch.from_packets(sub_packets)
        m = sub.n
        state = columnar_engine._SweepState(sub, executor.fallback_counts)
        active = np.ones(m, bool)
        lane_ports = np.full(m, -1, np.int64)
        vec_tx = np.zeros(m, bool)
        tm_latest = np.full(m, -1, np.int64)
        extra_passes = 0
        sub_ts = None if stamps is None else stamps[lanes]
        drop_key = "standard_metadata.drop_flag"
        recirc_key = "standard_metadata.recirculate_flag"
        for pass_no in range(MAX_RECIRCULATIONS):
            act_idx = np.nonzero(active)[0]
            if not act_idx.size:
                break
            extra_passes += int(act_idx.size)
            sub.store(recirc_key, act_idx, 0)
            sub.store(
                "standard_metadata.ingress_global_timestamp", act_idx,
                shared_ts if sub_ts is None else sub_ts[act_idx],
            )
            for sweep in sweeps:
                sweep.run(state, active)
            drop = sub.col(drop_key)
            alive = active & (drop == 0)
            active = alive  # ingress-dropped lanes finish as None
            if not bool(alive.any()):
                continue
            alive_idx = np.nonzero(alive)[0]
            spec = sub.col("standard_metadata.egress_spec")
            aspec = spec[alive_idx]
            if bool(((aspec < 0) | (aspec >= num_ports)).any()):
                # Scalar continuation: the bad lane must raise at its
                # own position, with earlier lanes fully committed.
                parent_state.mark_fallback(
                    lanes[alive_idx], int(alive_idx.size), "recirc"
                )
                sub.flush()
                budget = MAX_RECIRCULATIONS - pass_no - 1
                for k in alive_idx.tolist():
                    lane = int(lanes[k])
                    t_now = clock_now if times is None else times[lane]
                    ts = shared_ts if sub_ts is None else int(sub_ts[k])
                    tail_extra, result = self._recirculate_tail(
                        sub_packets[k], t_now, ts, budget
                    )
                    extra_passes += tail_extra
                    lane_ports[k] = -1 if result is None else result[0]
                active[:] = False
                sub.resync()  # the packet dicts are authoritative now
                break
            # Vectorized traffic manager: static depth snapshot (the
            # queue model is statically absent on this tail).
            sub.store("standard_metadata.egress_port", alive_idx, aspec)
            depths = np.fromiter(
                (port.queue_depth for port in ports),
                np.int64, count=num_ports,
            )
            depth_vals = depths[aspec]
            sub.store("standard_metadata.enq_qdepth", alive_idx, depth_vals)
            sub.store("standard_metadata.deq_qdepth", alive_idx, depth_vals)
            sub.store(
                "standard_metadata.egress_global_timestamp", alive_idx,
                shared_ts if sub_ts is None else sub_ts[alive_idx],
            )
            tm_latest[alive_idx] = aspec
            for sweep in egress_sweeps:
                sweep.run(state, alive)
            drop = sub.col(drop_key)
            alive = active & (drop == 0)
            recirc = sub.col(recirc_key)
            again = alive & (recirc != 0)
            deliver = alive & ~again
            if bool(deliver.any()):
                didx = np.nonzero(deliver)[0]
                lane_ports[didx] = tm_latest[didx]
                vec_tx[didx] = True
            active = again
        if bool(active.any()):
            # Budget exhausted with the flag still raised: the scalar
            # loop clears it on its way out and delivers at the final
            # pass's traffic-manager port.
            aidx = np.nonzero(active)[0]
            sub.store(recirc_key, aidx, 0)
            lane_ports[aidx] = tm_latest[aidx]
            vec_tx[aidx] = True
        sub.flush()
        if bool(vec_tx.any()):
            vidx = np.nonzero(vec_tx)[0]
            vports = lane_ports[vidx]
            tx_counts = np.bincount(vports, minlength=num_ports)
            tx_bytes = np.bincount(
                vports,
                weights=sub.sizes[vidx].astype(np.float64),
                minlength=num_ports,
            )
            for port_id in np.nonzero(tx_counts)[0].tolist():
                port = ports[port_id]
                port.tx_packets += int(tx_counts[port_id])
                port.tx_bytes += int(tx_bytes[port_id])
        if bool(state.fallback.any()):
            parent_state.fallback[lanes[np.nonzero(state.fallback)[0]]] = True
        return extra_passes, lane_ports

    def process_stepped(self, packet: Packet) -> Iterator[Tuple[str, str]]:
        """Stepped variant of :meth:`process`; yields
        ``("apply", table)`` before every table application."""
        self.packets_processed += 1
        for _pass in range(1 + MAX_RECIRCULATIONS):
            self.pipeline_passes += 1
            self._stamp_ingress(packet)
            yield from self.executor.iter_control("ingress", packet)
            if packet.dropped:
                break
            self._traffic_manager(packet)
            yield from self.executor.iter_control("egress", packet)
            if packet.dropped or not packet.recirculated:
                break
            packet.fields["standard_metadata.recirculate_flag"] = 0
        if packet.dropped:
            self.packets_dropped += 1
        else:
            port = self.ports[packet.fields["standard_metadata.egress_port"]]
            port.tx_packets += 1
            port.tx_bytes += packet.size_bytes

    def _result(self, packet: Packet) -> Optional[Tuple[int, Packet]]:
        if packet.dropped:
            return None
        return packet.fields["standard_metadata.egress_port"], packet
