"""Simulated clock.

All latency numbers in the reproduction are expressed in microseconds
of simulated time.  A single :class:`SimClock` instance is shared by
the switch ASIC, the driver, the Mantis agent, and the discrete-event
network simulator, so cross-component orderings (e.g. "did the table
update commit before this packet entered the pipeline?") are
well-defined.
"""

from __future__ import annotations


class SimClock:
    """A monotonically increasing microsecond clock.

    Listeners registered with :meth:`add_listener` are invoked after
    every advance -- the network simulator uses this to interleave
    packet events with control-plane driver operations at operation
    granularity.
    """

    def __init__(self, start_us: float = 0.0):
        self._now = float(start_us)
        self._listeners = []
        self._notifying = False

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def add_listener(self, callback) -> None:
        """Register ``callback(now_us)`` to run after each advance."""
        self._listeners.append(callback)

    def _notify(self) -> None:
        if self._notifying:
            return
        self._notifying = True
        try:
            for callback in self._listeners:
                callback(self._now)
        finally:
            self._notifying = False

    def advance(self, delta_us: float) -> float:
        """Move time forward by ``delta_us`` and return the new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        self._now += delta_us
        self._notify()
        return self._now

    def advance_to(self, time_us: float) -> float:
        """Move time forward to ``time_us`` (no-op if already later)."""
        if time_us > self._now:
            self._now = time_us
            self._notify()
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}us)"
