"""Interpreter for P4 actions and control blocks.

Executes the same AST the parser produced -- there is no separate IR,
so the emulator's semantics are exactly the language's semantics.  The
Mantis compiler output (generated init tables, measurement actions,
specialized actions) runs through this interpreter unchanged.

This tree-walker is the *reference* implementation: it favours a
direct correspondence with the AST over speed.  The production packet
path is :class:`repro.switch.compiled.CompiledPipeline`, which lowers
the same AST into closures once at load time and must stay
behaviourally identical to this class (enforced by the differential
tests in ``tests/switch/test_compiled.py``).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.hashing import compute_hash
from repro.switch.packet import Packet


class PipelineExecutor:
    """Executes control blocks and actions against packets.

    The executor holds references to its owner ASIC's tables, registers
    and counters; it has no state of its own besides an RNG used by
    ``modify_field_rng_uniform``.  Pass ``rng`` to share one stream
    with another executor (the ASIC shares its RNG between this
    interpreter and the compiled fast path so the two stay in lockstep).
    """

    def __init__(self, asic, seed: int = 0, rng: Optional[random.Random] = None):
        self.asic = asic
        self.rng = rng if rng is not None else random.Random(seed)

    # ---- control blocks ---------------------------------------------------

    def run_control(self, control_name: str, packet: Packet) -> None:
        """Run a control block to completion on one packet."""
        for _ in self.iter_control(control_name, packet):
            pass

    def iter_control(
        self, control_name: str, packet: Packet
    ) -> Iterator[Tuple[str, str]]:
        """Stepped execution: yields ``("apply", table)`` *before* each
        table application so callers can interleave control-plane
        operations mid-pipeline (used by isolation experiments)."""
        program = self.asic.program
        if control_name not in program.controls:
            return
        yield from self._iter_statements(
            program.controls[control_name].body, packet
        )

    def _iter_statements(
        self, statements: List[ast.Statement], packet: Packet
    ) -> Iterator[Tuple[str, str]]:
        for stmt in statements:
            if packet.dropped:
                return
            if isinstance(stmt, ast.ApplyCall):
                yield ("apply", stmt.table)
                self.apply_table(stmt.table, packet)
            elif isinstance(stmt, ast.IfBlock):
                if self._eval_cond(stmt.cond, packet):
                    yield from self._iter_statements(stmt.then_body, packet)
                else:
                    yield from self._iter_statements(stmt.else_body, packet)
            else:  # pragma: no cover - parser emits only the kinds above
                raise SwitchError(f"unknown statement {stmt!r}")

    def apply_table(self, table_name: str, packet: Packet) -> None:
        table = self.asic.tables[table_name]
        result = table.lookup(packet)
        if result is None:
            return
        action_name, action_args = result
        self.run_action(action_name, action_args, packet)

    def _eval_cond(self, cond: ast.Operand, packet: Packet) -> bool:
        return bool(self._eval_expr(cond, packet))

    def _eval_expr(self, expr, packet: Packet) -> int:
        if isinstance(expr, int):
            return expr
        if isinstance(expr, ast.FieldRef):
            return packet.get(f"{expr.header}.{expr.field}")
        if isinstance(expr, ast.ValidRef):
            return 1 if expr.header in packet.valid_headers else 0
        if isinstance(expr, ast.BinOp):
            left = self._eval_expr(expr.left, packet)
            right = self._eval_expr(expr.right, packet)
            op = expr.op
            if op == "==":
                return 1 if left == right else 0
            if op == "!=":
                return 1 if left != right else 0
            if op == "<":
                return 1 if left < right else 0
            if op == "<=":
                return 1 if left <= right else 0
            if op == ">":
                return 1 if left > right else 0
            if op == ">=":
                return 1 if left >= right else 0
            if op == "&&":
                return 1 if left and right else 0
            if op == "||":
                return 1 if left or right else 0
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            if op == "^":
                return left ^ right
            if op == "<<":
                return left << right
            if op == ">>":
                return left >> right
            raise SwitchError(f"unknown condition operator {op!r}")
        if isinstance(expr, ast.MalleableRef):
            raise SwitchError(
                f"malleable reference {expr} reached the data plane; "
                "the program was not compiled by the Mantis compiler"
            )
        raise SwitchError(f"cannot evaluate expression {expr!r}")

    # ---- actions ------------------------------------------------------------

    def run_action(
        self, action_name: str, action_args: List[int], packet: Packet
    ) -> None:
        program = self.asic.program
        if action_name not in program.actions:
            raise SwitchError(f"unknown action {action_name!r}")
        action = program.actions[action_name]
        if len(action_args) != len(action.params):
            raise SwitchError(
                f"action {action_name}: expected {len(action.params)} args, "
                f"got {len(action_args)}"
            )
        params = dict(zip(action.params, action_args))
        for call in action.body:
            self._run_primitive(call, params, packet)

    def _resolve(self, arg, params: Dict[str, int], packet: Packet) -> int:
        """Resolve a primitive argument to an integer value."""
        if isinstance(arg, int):
            return arg
        if isinstance(arg, ast.FieldRef):
            return packet.get(f"{arg.header}.{arg.field}")
        if isinstance(arg, str):
            if arg in params:
                return params[arg]
            raise SwitchError(f"unresolved action parameter {arg!r}")
        if isinstance(arg, ast.MalleableRef):
            raise SwitchError(
                f"malleable reference {arg} reached the data plane; "
                "compile the program with the Mantis compiler first"
            )
        raise SwitchError(f"cannot resolve primitive argument {arg!r}")

    def _dst_ref(self, arg) -> ast.FieldRef:
        if not isinstance(arg, ast.FieldRef):
            raise SwitchError(
                f"primitive destination must be a field, got {arg!r}"
            )
        return arg

    def _write_field(self, ref: ast.FieldRef, value: int, packet: Packet) -> None:
        key = f"{ref.header}.{ref.field}"
        packet.set(key, value, self.asic.field_masks.get(key))

    def _run_primitive(
        self, call: ast.PrimitiveCall, params: Dict[str, int], packet: Packet
    ) -> None:
        name = call.name
        args = call.args
        if name == "no_op":
            return
        if name == "drop":
            packet.mark_dropped()
            return
        if name == "modify_field":
            value = self._resolve(args[1], params, packet)
            if len(args) > 2:
                value &= self._resolve(args[2], params, packet)
            self._write_field(self._dst_ref(args[0]), value, packet)
            return
        if name in ("add", "subtract", "bit_and", "bit_or", "bit_xor",
                    "shift_left", "shift_right", "min", "max"):
            left = self._resolve(args[1], params, packet)
            right = self._resolve(args[2], params, packet)
            value = {
                "add": lambda: left + right,
                "subtract": lambda: left - right,
                "bit_and": lambda: left & right,
                "bit_or": lambda: left | right,
                "bit_xor": lambda: left ^ right,
                "shift_left": lambda: left << right,
                "shift_right": lambda: left >> right,
                "min": lambda: min(left, right),
                "max": lambda: max(left, right),
            }[name]()
            self._write_field(self._dst_ref(args[0]), value, packet)
            return
        if name == "add_to_field":
            dst = self._dst_ref(args[0])
            key = f"{dst.header}.{dst.field}"
            value = packet.get(key) + self._resolve(args[1], params, packet)
            # Width-mask explicitly: read-modify-write must wrap at the
            # declared field width or counters grow without bound.
            packet.set(key, value, self.asic.field_masks.get(key))
            return
        if name == "subtract_from_field":
            dst = self._dst_ref(args[0])
            key = f"{dst.header}.{dst.field}"
            value = packet.get(key) - self._resolve(args[1], params, packet)
            packet.set(key, value, self.asic.field_masks.get(key))
            return
        if name == "register_write":
            register = self.asic.get_register(args[0])
            index = self._resolve(args[1], params, packet)
            value = self._resolve(args[2], params, packet)
            register.write(index, value)
            return
        if name == "register_read":
            dst = self._dst_ref(args[0])
            register = self.asic.get_register(args[1])
            index = self._resolve(args[2], params, packet)
            self._write_field(dst, register.read(index), packet)
            return
        if name == "count":
            counter = self.asic.get_counter(args[0])
            index = self._resolve(args[1], params, packet)
            delta = packet.size_bytes if counter.counter_type == "bytes" else 1
            counter.array.increment(index, delta)
            return
        if name == "modify_field_with_hash_based_offset":
            self._run_hash(call, params, packet)
            return
        if name == "modify_field_rng_uniform":
            dst = self._dst_ref(args[0])
            lo = self._resolve(args[1], params, packet)
            hi = self._resolve(args[2], params, packet)
            self._write_field(dst, self.rng.randint(lo, hi), packet)
            return
        if name == "recirculate":
            packet.fields["standard_metadata.recirculate_flag"] = 1
            return
        if name == "clone_ingress_pkt_to_egress":
            packet.fields["standard_metadata.clone_flag"] = 1
            return
        if name == "mark_ecn":
            packet.fields["standard_metadata.ecn_marked"] = 1
            return
        raise SwitchError(f"unsupported primitive action {name!r}")

    def _run_hash(
        self, call: ast.PrimitiveCall, params: Dict[str, int], packet: Packet
    ) -> None:
        dst = self._dst_ref(call.args[0])
        base = self._resolve(call.args[1], params, packet)
        calc_name = call.args[2]
        size = self._resolve(call.args[3], params, packet)
        program = self.asic.program
        if calc_name not in program.field_list_calcs:
            raise SwitchError(f"unknown field_list_calculation {calc_name!r}")
        calc = program.field_list_calcs[calc_name]
        values = []
        for list_name in calc.inputs:
            for ref in program.field_lists[list_name].entries:
                key = f"{ref.header}.{ref.field}"
                width_mask = self.asic.field_masks.get(key, (1 << 32) - 1)
                values.append(
                    (packet.get(key), width_mask.bit_length())
                )
        hashed = compute_hash(calc.algorithm, values, calc.output_width)
        self._write_field(dst, base + (hashed % size if size else hashed), packet)
