"""Match-action table runtime.

Implements the lookup semantics Mantis relies on:

- exact matches via a hash index (SRAM),
- ternary/lpm/range matches via a priority-ordered scan (TCAM),
- atomic single-entry add/modify/delete (the hardware guarantee that
  Section 5.1.1 builds its serialization point on).

Entries are referenced by handles (integers) as with real switch SDKs,
so the Mantis agent's three-phase update engine can mirror and flip
shadow copies deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.packet import Packet

# One key component, by match kind:
#   exact:   int
#   ternary: (value, mask)      -- mask 0 means wildcard
#   lpm:     (value, prefix_len)
#   range:   (lo, hi)
#   valid:   bool
KeyPart = Union[int, Tuple[int, int], bool]


@dataclass
class TableEntry:
    """One installed entry."""

    entry_id: int
    key: Tuple[KeyPart, ...]
    action_name: str
    action_args: List[int] = field(default_factory=list)
    priority: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableEntry(#{self.entry_id}, key={self.key}, "
            f"{self.action_name}{tuple(self.action_args)}, prio={self.priority})"
        )


class TableRuntime:
    """Runtime state and matching logic for one table."""

    def __init__(self, decl: ast.TableDecl, key_widths: Sequence[int]):
        self.decl = decl
        self.name = decl.name
        self.key_widths = list(key_widths)
        self.entries: Dict[int, TableEntry] = {}
        self.default_action: Optional[Tuple[str, List[int]]] = (
            (decl.default_action[0], list(decl.default_action[1]))
            if decl.default_action
            else None
        )
        self._ids = itertools.count(1)
        self._exact_only = all(
            r.match_type in (ast.MatchType.EXACT, ast.MatchType.VALID)
            for r in decl.reads
        )
        self._exact_index: Dict[Tuple[KeyPart, ...], TableEntry] = {}
        # hit/miss counters for observability and resource benches
        self.hits = 0
        self.misses = 0

    # ---- entry management (atomic per call) -----------------------------

    def _check_key(self, key: Sequence[KeyPart]) -> Tuple[KeyPart, ...]:
        if len(key) != len(self.decl.reads):
            raise SwitchError(
                f"table {self.name}: key arity {len(key)} != "
                f"{len(self.decl.reads)} reads"
            )
        normalized: List[KeyPart] = []
        for part, read in zip(key, self.decl.reads):
            if read.match_type in (ast.MatchType.EXACT,):
                if not isinstance(part, int):
                    raise SwitchError(
                        f"table {self.name}: exact key part must be int, "
                        f"got {part!r}"
                    )
            elif read.match_type is ast.MatchType.VALID:
                part = bool(part)
            elif not (isinstance(part, tuple) and len(part) == 2):
                raise SwitchError(
                    f"table {self.name}: {read.match_type.value} key part "
                    f"must be a 2-tuple, got {part!r}"
                )
            normalized.append(part)
        return tuple(normalized)

    def add_entry(
        self,
        key: Sequence[KeyPart],
        action_name: str,
        action_args: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> int:
        """Install an entry; returns its handle.  Atomic."""
        if action_name not in self.decl.action_names:
            raise SwitchError(
                f"table {self.name}: action {action_name!r} not in table's "
                f"action list {self.decl.action_names}"
            )
        normalized = self._check_key(key)
        if self.decl.size is not None and len(self.entries) >= self.decl.size:
            raise SwitchError(f"table {self.name}: full ({self.decl.size})")
        entry = TableEntry(
            next(self._ids), normalized, action_name,
            list(action_args or []), priority,
        )
        self.entries[entry.entry_id] = entry
        if self._exact_only:
            self._exact_index[normalized] = entry
        return entry.entry_id

    def modify_entry(
        self,
        entry_id: int,
        action_name: Optional[str] = None,
        action_args: Optional[Sequence[int]] = None,
    ) -> None:
        """Change an entry's action/args in place.  Atomic."""
        entry = self._get(entry_id)
        if action_name is not None:
            if action_name not in self.decl.action_names:
                raise SwitchError(
                    f"table {self.name}: action {action_name!r} not allowed"
                )
            entry.action_name = action_name
        if action_args is not None:
            entry.action_args = list(action_args)

    def delete_entry(self, entry_id: int) -> None:
        entry = self._get(entry_id)
        del self.entries[entry_id]
        if self._exact_only and self._exact_index.get(entry.key) is entry:
            del self._exact_index[entry.key]

    def set_default(self, action_name: str, action_args: Sequence[int] = ()) -> None:
        if action_name not in self.decl.action_names:
            raise SwitchError(
                f"table {self.name}: default action {action_name!r} not allowed"
            )
        self.default_action = (action_name, list(action_args))

    def find_entry(self, key: Sequence[KeyPart]) -> Optional[TableEntry]:
        """Find an installed entry with exactly this key (not a lookup)."""
        normalized = self._check_key(key)
        for entry in self.entries.values():
            if entry.key == normalized:
                return entry
        return None

    def _get(self, entry_id: int) -> TableEntry:
        if entry_id not in self.entries:
            raise SwitchError(f"table {self.name}: no entry #{entry_id}")
        return self.entries[entry_id]

    # ---- lookup -----------------------------------------------------------

    def build_lookup_key(self, packet: Packet) -> Tuple[KeyPart, ...]:
        parts: List[KeyPart] = []
        for read in self.decl.reads:
            if read.match_type is ast.MatchType.VALID:
                parts.append(read.ref.header in packet.valid_headers)
            else:
                ref = read.ref
                value = packet.get(f"{ref.header}.{ref.field}")
                if read.mask is not None:
                    value &= read.mask
                parts.append(value)
        return tuple(parts)

    def lookup(self, packet: Packet) -> Optional[Tuple[str, List[int]]]:
        """Match the packet; returns ``(action, args)`` or the default.

        Returns ``None`` when the table misses and has no default.
        """
        key = self.build_lookup_key(packet)
        entry = self._match(key)
        if entry is not None:
            self.hits += 1
            return entry.action_name, entry.action_args
        self.misses += 1
        return self.default_action

    def _match(self, key: Tuple[KeyPart, ...]) -> Optional[TableEntry]:
        if self._exact_only:
            return self._exact_index.get(key)
        best: Optional[TableEntry] = None
        best_rank: Tuple[int, int] = (0, 0)
        for entry in self.entries.values():
            rank = self._entry_matches(entry, key)
            if rank is None:
                continue
            if best is None or rank > best_rank:
                best, best_rank = entry, rank
        return best

    def _entry_matches(
        self, entry: TableEntry, key: Tuple[KeyPart, ...]
    ) -> Optional[Tuple[int, int]]:
        """Return a comparable rank (higher wins) or None on mismatch.

        Rank is ``(priority, total_lpm_prefix)`` so explicit priorities
        dominate and longest-prefix breaks ties among lpm entries.
        """
        prefix_total = 0
        for part, pattern, read, width in zip(
            key, entry.key, self.decl.reads, self.key_widths
        ):
            match_type = read.match_type
            if match_type in (ast.MatchType.EXACT, ast.MatchType.VALID):
                if part != pattern:
                    return None
            elif match_type is ast.MatchType.TERNARY:
                value, mask = pattern
                if (part & mask) != (value & mask):
                    return None
            elif match_type is ast.MatchType.LPM:
                value, prefix_len = pattern
                if prefix_len:
                    mask = ((1 << prefix_len) - 1) << (width - prefix_len)
                    if (part & mask) != (value & mask):
                        return None
                prefix_total += prefix_len
            elif match_type is ast.MatchType.RANGE:
                lo, hi = pattern
                if not lo <= part <= hi:
                    return None
        return (entry.priority, prefix_total)

    # ---- accounting ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    def key_bits(self) -> int:
        """Total key width in bits (for SRAM/TCAM accounting)."""
        return sum(self.key_widths)
