"""Match-action table runtime.

Implements the lookup semantics Mantis relies on:

- exact matches via a hash index (SRAM),
- ternary/lpm/range matches via a rank-ordered TCAM view kept sorted
  on add/delete, so lookups early-exit at the first hit in priority
  order instead of scanning every entry,
- single-lpm-key tables additionally via per-prefix-length hash
  buckets (classic LPM lookup: probe prefix lengths longest-first),
- atomic single-entry add/modify/delete (the hardware guarantee that
  Section 5.1.1 builds its serialization point on).

Every index is updated inside the same add/modify/delete call that
mutates ``entries``, so the Mantis agent's shadow-flip writes observe
a consistent table at every point -- there is no deferred rebuild.

Entries are referenced by handles (integers) as with real switch SDKs,
so the Mantis agent's three-phase update engine can mirror and flip
shadow copies deterministically.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.packet import Packet

# One key component, by match kind:
#   exact:   int
#   ternary: (value, mask)      -- mask 0 means wildcard
#   lpm:     (value, prefix_len)
#   range:   (lo, hi)
#   valid:   bool
KeyPart = Union[int, Tuple[int, int], bool]


@dataclass
class TableEntry:
    """One installed entry."""

    entry_id: int
    key: Tuple[KeyPart, ...]
    action_name: str
    action_args: List[int] = field(default_factory=list)
    priority: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableEntry(#{self.entry_id}, key={self.key}, "
            f"{self.action_name}{tuple(self.action_args)}, prio={self.priority})"
        )


class TableRuntime:
    """Runtime state and matching logic for one table."""

    def __init__(self, decl: ast.TableDecl, key_widths: Sequence[int]):
        self.decl = decl
        self.name = decl.name
        self.key_widths = list(key_widths)
        self.entries: Dict[int, TableEntry] = {}
        self.default_action: Optional[Tuple[str, List[int]]] = (
            (decl.default_action[0], list(decl.default_action[1]))
            if decl.default_action
            else None
        )
        self._ids = itertools.count(1)
        self._exact_only = all(
            r.match_type in (ast.MatchType.EXACT, ast.MatchType.VALID)
            for r in decl.reads
        )
        self._exact_index: Dict[Tuple[KeyPart, ...], TableEntry] = {}
        # TCAM view: entries sorted by descending (priority, lpm prefix
        # total), insertion order breaking ties.  ``_tcam_sort_keys`` is
        # the parallel bisect key list.
        self._tcam_order: List[TableEntry] = []
        self._tcam_sort_keys: List[Tuple[int, int]] = []
        # Single-lpm fast path: per-prefix-length hash buckets, usable
        # while no entry carries an explicit priority.
        self._lpm_position: Optional[int] = None
        self._lpm_width = 0
        self._lpm_indexable = False
        self._lpm_buckets: Dict[int, Dict[Tuple[KeyPart, ...], List[TableEntry]]] = {}
        self._lpm_masks: Dict[int, int] = {}
        self._lpm_lens: List[int] = []
        if not self._exact_only:
            kinds = [r.match_type for r in decl.reads]
            lpm_positions = [
                i for i, k in enumerate(kinds) if k is ast.MatchType.LPM
            ]
            bucketable = all(
                k in (ast.MatchType.EXACT, ast.MatchType.VALID, ast.MatchType.LPM)
                for k in kinds
            )
            if len(lpm_positions) == 1 and bucketable:
                self._lpm_position = lpm_positions[0]
                self._lpm_width = self.key_widths[self._lpm_position]
                self._lpm_indexable = True
        # hit/miss counters for observability and resource benches
        self.hits = 0
        self.misses = 0
        # Bumped on every entry/default mutation; the columnar engine
        # keys its packed lookup index on this to avoid rebuilding per
        # batch while staying coherent with control-plane writes.
        self.generation = 0

    # ---- entry management (atomic per call) -----------------------------

    def _check_key(self, key: Sequence[KeyPart]) -> Tuple[KeyPart, ...]:
        if len(key) != len(self.decl.reads):
            raise SwitchError(
                f"table {self.name}: key arity {len(key)} != "
                f"{len(self.decl.reads)} reads"
            )
        normalized: List[KeyPart] = []
        for part, read in zip(key, self.decl.reads):
            if read.match_type in (ast.MatchType.EXACT,):
                if not isinstance(part, int):
                    raise SwitchError(
                        f"table {self.name}: exact key part must be int, "
                        f"got {part!r}"
                    )
            elif read.match_type is ast.MatchType.VALID:
                part = bool(part)
            elif not (isinstance(part, tuple) and len(part) == 2):
                raise SwitchError(
                    f"table {self.name}: {read.match_type.value} key part "
                    f"must be a 2-tuple, got {part!r}"
                )
            normalized.append(part)
        return tuple(normalized)

    def add_entry(
        self,
        key: Sequence[KeyPart],
        action_name: str,
        action_args: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> int:
        """Install an entry; returns its handle.  Atomic."""
        if action_name not in self.decl.action_names:
            raise SwitchError(
                f"table {self.name}: action {action_name!r} not in table's "
                f"action list {self.decl.action_names}"
            )
        normalized = self._check_key(key)
        if self.decl.size is not None and len(self.entries) >= self.decl.size:
            raise SwitchError(f"table {self.name}: full ({self.decl.size})")
        entry = TableEntry(
            next(self._ids), normalized, action_name,
            list(action_args or []), priority,
        )
        self.entries[entry.entry_id] = entry
        if self._exact_only:
            self._exact_index[normalized] = entry
        else:
            self._index_tcam_entry(entry)
        self.generation += 1
        return entry.entry_id

    def modify_entry(
        self,
        entry_id: int,
        action_name: Optional[str] = None,
        action_args: Optional[Sequence[int]] = None,
    ) -> None:
        """Change an entry's action/args in place.  Atomic."""
        entry = self._get(entry_id)
        if action_name is not None:
            if action_name not in self.decl.action_names:
                raise SwitchError(
                    f"table {self.name}: action {action_name!r} not allowed"
                )
            entry.action_name = action_name
        if action_args is not None:
            entry.action_args = list(action_args)
        self.generation += 1

    def delete_entry(self, entry_id: int) -> None:
        entry = self._get(entry_id)
        del self.entries[entry_id]
        if self._exact_only:
            if self._exact_index.get(entry.key) is entry:
                del self._exact_index[entry.key]
        else:
            self._unindex_tcam_entry(entry)
        self.generation += 1

    # ---- TCAM index maintenance -----------------------------------------

    def _static_rank(self, entry: TableEntry) -> Tuple[int, int]:
        """The rank :meth:`_entry_matches` assigns on a hit; computable
        from the entry alone since priority and prefix lengths are
        fixed at install time."""
        prefix_total = 0
        for part, read in zip(entry.key, self.decl.reads):
            if read.match_type is ast.MatchType.LPM:
                prefix_total += part[1]
        return (entry.priority, prefix_total)

    def _index_tcam_entry(self, entry: TableEntry) -> None:
        priority, prefix_total = self._static_rank(entry)
        # Descending rank; bisect_right keeps insertion order among
        # equal ranks, matching the old scan's first-installed-wins.
        sort_key = (-priority, -prefix_total)
        position = bisect_right(self._tcam_sort_keys, sort_key)
        self._tcam_sort_keys.insert(position, sort_key)
        self._tcam_order.insert(position, entry)
        if self._lpm_position is None or not self._lpm_indexable:
            return
        prefix_len = entry.key[self._lpm_position][1]
        if priority != 0 or prefix_len > self._lpm_width:
            # Explicit priorities (or malformed prefixes, which the
            # scan path reports like the old code) break the pure
            # longest-prefix order the buckets encode; fall back to the
            # sorted scan for the lifetime of the table.
            self._lpm_indexable = False
            self._lpm_buckets.clear()
            self._lpm_masks.clear()
            self._lpm_lens = []
            return
        self._lpm_bucket_add(entry)

    def _lpm_bucket_key(self, entry_key: Tuple[KeyPart, ...]) -> Tuple[KeyPart, ...]:
        position = self._lpm_position
        value, prefix_len = entry_key[position]
        mask = self._lpm_masks[prefix_len]
        return (
            entry_key[:position]
            + (value & mask,)
            + entry_key[position + 1:]
        )

    def _lpm_bucket_add(self, entry: TableEntry) -> None:
        prefix_len = entry.key[self._lpm_position][1]
        if prefix_len not in self._lpm_masks:
            self._lpm_masks[prefix_len] = (
                ((1 << prefix_len) - 1) << (self._lpm_width - prefix_len)
                if prefix_len
                else 0
            )
            insort(self._lpm_lens, -prefix_len)
            self._lpm_buckets[prefix_len] = {}
        bucket = self._lpm_buckets[prefix_len]
        bucket.setdefault(self._lpm_bucket_key(entry.key), []).append(entry)

    def _unindex_tcam_entry(self, entry: TableEntry) -> None:
        position = self._tcam_order.index(entry)
        del self._tcam_order[position]
        del self._tcam_sort_keys[position]
        if self._lpm_position is None or not self._lpm_indexable:
            return
        prefix_len = entry.key[self._lpm_position][1]
        bucket = self._lpm_buckets.get(prefix_len)
        if bucket is None:
            return
        bucket_key = self._lpm_bucket_key(entry.key)
        candidates = bucket.get(bucket_key)
        if candidates and entry in candidates:
            candidates.remove(entry)
            if not candidates:
                del bucket[bucket_key]
            if not bucket:
                del self._lpm_buckets[prefix_len]
                del self._lpm_masks[prefix_len]
                self._lpm_lens.remove(-prefix_len)

    def set_default(self, action_name: str, action_args: Sequence[int] = ()) -> None:
        if action_name not in self.decl.action_names:
            raise SwitchError(
                f"table {self.name}: default action {action_name!r} not allowed"
            )
        self.default_action = (action_name, list(action_args))
        self.generation += 1

    def find_entry(self, key: Sequence[KeyPart]) -> Optional[TableEntry]:
        """Find an installed entry with exactly this key (not a lookup)."""
        normalized = self._check_key(key)
        if self._exact_only:
            return self._exact_index.get(normalized)
        for entry in self._tcam_order:
            if entry.key == normalized:
                return entry
        return None

    def _get(self, entry_id: int) -> TableEntry:
        if entry_id not in self.entries:
            raise SwitchError(f"table {self.name}: no entry #{entry_id}")
        return self.entries[entry_id]

    # ---- lookup -----------------------------------------------------------

    def build_lookup_key(self, packet: Packet) -> Tuple[KeyPart, ...]:
        parts: List[KeyPart] = []
        for read in self.decl.reads:
            if read.match_type is ast.MatchType.VALID:
                parts.append(read.ref.header in packet.valid_headers)
            else:
                ref = read.ref
                value = packet.get(f"{ref.header}.{ref.field}")
                if read.mask is not None:
                    value &= read.mask
                parts.append(value)
        return tuple(parts)

    def lookup(self, packet: Packet) -> Optional[Tuple[str, List[int]]]:
        """Match the packet; returns ``(action, args)`` or the default.

        Returns ``None`` when the table misses and has no default.
        """
        return self.lookup_key(self.build_lookup_key(packet))

    def lookup_key(
        self, key: Tuple[KeyPart, ...]
    ) -> Optional[Tuple[str, List[int]]]:
        """Match an already-built lookup key (the compiled pipeline
        extracts keys with its own precompiled closures)."""
        entry = self._match(key)
        if entry is not None:
            self.hits += 1
            return entry.action_name, entry.action_args
        self.misses += 1
        return self.default_action

    def _match(self, key: Tuple[KeyPart, ...]) -> Optional[TableEntry]:
        if self._exact_only:
            return self._exact_index.get(key)
        if self._lpm_indexable:
            return self._match_lpm_buckets(key)
        # Rank-sorted scan: the first matching entry has the highest
        # (priority, prefix_total) rank, earliest-installed on ties.
        for entry in self._tcam_order:
            if self._entry_matches(entry, key):
                return entry
        return None

    def _match_lpm_buckets(
        self, key: Tuple[KeyPart, ...]
    ) -> Optional[TableEntry]:
        position = self._lpm_position
        part = key[position]
        prefix = key[:position]
        suffix = key[position + 1:]
        for neg_len in self._lpm_lens:
            mask = self._lpm_masks[-neg_len]
            candidates = self._lpm_buckets[-neg_len].get(
                prefix + (part & mask,) + suffix
            )
            if candidates:
                return candidates[0]
        return None

    def _entry_matches(
        self, entry: TableEntry, key: Tuple[KeyPart, ...]
    ) -> bool:
        """True when every key component matches the entry's pattern."""
        for part, pattern, read, width in zip(
            key, entry.key, self.decl.reads, self.key_widths
        ):
            match_type = read.match_type
            if match_type in (ast.MatchType.EXACT, ast.MatchType.VALID):
                if part != pattern:
                    return False
            elif match_type is ast.MatchType.TERNARY:
                value, mask = pattern
                if (part & mask) != (value & mask):
                    return False
            elif match_type is ast.MatchType.LPM:
                value, prefix_len = pattern
                if prefix_len:
                    mask = ((1 << prefix_len) - 1) << (width - prefix_len)
                    if (part & mask) != (value & mask):
                        return False
            elif match_type is ast.MatchType.RANGE:
                lo, hi = pattern
                if not lo <= part <= hi:
                    return False
        return True

    # ---- accounting ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    def key_bits(self) -> int:
        """Total key width in bits (for SRAM/TCAM accounting)."""
        return sum(self.key_widths)
