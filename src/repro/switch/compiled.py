"""Compile-to-closure fast path for the packet pipeline.

:class:`CompiledPipeline` lowers a loaded program once, at
construction time, into nests of closed-over Python closures:

- every ``"instance.field"`` key string is built exactly once and
  interned into the closure that reads or writes it (the interpreter
  re-builds these with an f-string on every access);
- every field-width mask is resolved from ``asic.field_masks`` at
  compile time, so per-packet writes are a dict store plus at most one
  ``&``;
- primitive dispatch (the interpreter's string-comparison ladder) is
  resolved once per action body; executing an action is a loop over
  pre-specialized step closures;
- expression trees in ``if`` conditions are folded into flat lambdas,
  with constant subtrees evaluated at compile time;
- table applies bind the :class:`~repro.switch.tables.TableRuntime`
  and a precompiled key-extraction closure directly, so lookups skip
  the per-packet ``reads`` walk.

What is *not* baked in: table entries, default actions, and register
contents.  Those stay live behind the closures, so the Mantis agent's
shadow-flip writes (add/modify/delete/set_default) take effect on the
very next lookup with no recompilation or invalidation protocol.

The tree-walking :class:`~repro.switch.pipeline.PipelineExecutor`
remains the reference semantics; :func:`run_differential` replays one
workload through both engines and asserts identical packet and ASIC
state, and the tests in ``tests/switch/test_compiled.py`` keep the two
in lockstep.

:class:`~repro.switch.columnar.ColumnarPipeline` builds on this
engine: it reuses the op-major admission (:meth:`batch_major_ops`),
the fused scalar sweeps as its fallback path, and the resolved step
closures for per-lane drains, replacing only the batch inner loops
with numpy struct-of-arrays sweeps.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import SwitchError
from repro.p4 import ast
from repro.switch.hashing import compute_hash
from repro.switch.packet import Packet

_DROP = "standard_metadata.drop_flag"

# A compiled primitive step: (action_args, packet) -> None.
StepFn = Callable[[List[int], Packet], None]
# A compiled control-block op: (packet) -> None.
OpFn = Callable[[Packet], None]

# An op-major batch op: one table applied across a whole burst
# (dropped packets skipped), amortizing the per-packet apply frame.
BatchOpFn = Callable[[List[Packet]], None]

# Binary operators with the interpreter's exact semantics: comparisons
# and boolean connectives produce ints, arithmetic is unbounded (width
# masking happens at field writes, not inside expressions).
_BIN_FNS: Dict[str, Callable[[int, int], int]] = {
    "==": lambda l, r: 1 if l == r else 0,
    "!=": lambda l, r: 1 if l != r else 0,
    "<": lambda l, r: 1 if l < r else 0,
    "<=": lambda l, r: 1 if l <= r else 0,
    ">": lambda l, r: 1 if l > r else 0,
    ">=": lambda l, r: 1 if l >= r else 0,
    "&&": lambda l, r: 1 if l and r else 0,
    "||": lambda l, r: 1 if l or r else 0,
    "+": lambda l, r: l + r,
    "-": lambda l, r: l - r,
    "&": lambda l, r: l & r,
    "|": lambda l, r: l | r,
    "^": lambda l, r: l ^ r,
    "<<": lambda l, r: l << r,
    ">>": lambda l, r: l >> r,
}

_ARITH_FNS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda l, r: l + r,
    "subtract": lambda l, r: l - r,
    "bit_and": lambda l, r: l & r,
    "bit_or": lambda l, r: l | r,
    "bit_xor": lambda l, r: l ^ r,
    "shift_left": lambda l, r: l << r,
    "shift_right": lambda l, r: l >> r,
    "min": min,
    "max": max,
}

# Source templates mirroring _ARITH_FNS for the action fuser, which
# emits flat Python instead of stacking closures.
_ARITH_EXPRS: Dict[str, str] = {
    "add": "({l} + {r})",
    "subtract": "({l} - {r})",
    "bit_and": "({l} & {r})",
    "bit_or": "({l} | {r})",
    "bit_xor": "({l} ^ {r})",
    "shift_left": "({l} << {r})",
    "shift_right": "({l} >> {r})",
    "min": "min({l}, {r})",
    "max": "max({l}, {r})",
}

_FLAG_KEYS = {
    "recirculate": "standard_metadata.recirculate_flag",
    "clone_ingress_pkt_to_egress": "standard_metadata.clone_flag",
    "mark_ecn": "standard_metadata.ecn_marked",
}


class PipelineProfile:
    """Hot-loop counters for one compiled pipeline.

    The emulator runs on pre-parsed packets, so the classic
    parse/match/action phases map onto what the engine actually
    executes: control-block runs (per-pass framing), table applies
    (match), and action executions (action).  Counting costs one dict
    increment per event, so profiles are opt-in via
    ``SwitchAsic.enable_profiling``."""

    __slots__ = ("control_runs", "table_applies", "action_runs")

    def __init__(self):
        self.control_runs: Dict[str, int] = {}
        self.table_applies: Dict[str, int] = {}
        self.action_runs: Dict[str, int] = {}

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            "control_runs": dict(self.control_runs),
            "table_applies": dict(self.table_applies),
            "action_runs": dict(self.action_runs),
        }


def _counting_op(fn: "OpFn", counts: Dict[str, int], name: str) -> "OpFn":
    counts[name] = 0

    def counted(packet: Packet, _fn=fn, _counts=counts, _name=name) -> None:
        _counts[_name] += 1
        _fn(packet)

    return counted


def _counting_step(fn: "StepFn", counts: Dict[str, int], name: str) -> "StepFn":
    counts[name] = 0

    def counted(
        args: List[int], packet: Packet, _fn=fn, _counts=counts, _name=name
    ) -> None:
        _counts[_name] += 1
        _fn(args, packet)

    return counted


_UNSET = object()


def _const_int(arg, params: Dict[str, int]) -> Optional[int]:
    """The compile-time integer value of a primitive argument once
    action parameters are bound, or ``None`` if it is packet-dependent."""
    if isinstance(arg, int):
        return arg
    if isinstance(arg, str):
        return params.get(arg)
    return None


def _tables_in(statements) -> Iterator[str]:
    """All table names applied anywhere in a statement list (recursing
    through conditionals)."""
    for stmt in statements:
        if isinstance(stmt, ast.ApplyCall):
            yield stmt.table
        elif isinstance(stmt, ast.IfBlock):
            yield from _tables_in(stmt.then_body)
            yield from _tables_in(stmt.else_body)


def _raising_step(message: str) -> StepFn:
    """A step that raises when *executed* -- semantic errors the
    interpreter only reports at run time must not become load-time
    failures in the compiled engine."""

    def step(args: List[int], packet: Packet) -> None:
        raise SwitchError(message)

    return step


class CompiledPipeline:
    """The compiled execution engine for one ASIC's program.

    API-compatible with :class:`~repro.switch.pipeline.PipelineExecutor`
    (``run_control`` / ``iter_control`` / ``apply_table`` /
    ``run_action``), so :class:`~repro.switch.asic.SwitchAsic` can
    select either engine behind one attribute.
    """

    def __init__(
        self,
        asic,
        rng: Optional[random.Random] = None,
        profile: Optional[PipelineProfile] = None,
    ):
        self.asic = asic
        self.rng = rng if rng is not None else random.Random(0)
        self.profile = profile
        program = asic.program
        # Raw (steps, n_params) per action, recorded by _compile_action:
        # the batch applies execute resolved step tuples directly,
        # skipping the per-call action frame.
        self._action_steps: Dict[str, Tuple[Tuple[StepFn, ...], int]] = {}
        self._actions: Dict[str, StepFn] = {
            name: self._compile_action(decl)
            for name, decl in program.actions.items()
        }
        if profile is not None:
            # Wrap actions before applies compile (applies capture the
            # actions dict) and applies before controls compile
            # (controls capture apply closures), so every execution
            # path routes through the counters.
            self._actions = {
                name: _counting_step(fn, profile.action_runs, name)
                for name, fn in self._actions.items()
            }
        self._applies: Dict[str, OpFn] = {
            name: self._compile_apply(runtime)
            for name, runtime in asic.tables.items()
        }
        if profile is not None:
            self._applies = {
                name: _counting_op(fn, profile.table_applies, name)
                for name, fn in self._applies.items()
            }
        self._controls: Dict[str, OpFn] = {}
        self._stepped: Dict[str, List] = {}
        for name, decl in program.controls.items():
            compiled = self._compile_block(decl.body)
            if profile is not None:
                compiled = _counting_op(compiled, profile.control_runs, name)
            self._controls[name] = compiled
            self._stepped[name] = self._compile_stepped(decl.body)
        # Batch execution plans: one op tuple per control, with fused
        # memoizing applies for exact-match tables.  Not built under
        # profiling -- the profiled run must route every packet through
        # the counting closures, so batch_ops() reports no plan and the
        # batch driver falls back to the instrumented scalar path.
        self._batch_memos: List[Dict[object, tuple]] = []
        self._batch_plans: Dict[str, Tuple[OpFn, ...]] = {}
        self._batch_major_plans: Dict[str, Optional[Tuple[BatchOpFn, ...]]] = {}
        # Fused (action, args) specializations.  Keyed by resolved
        # action name + concrete argument tuple; safe to keep across
        # batches because the generated code depends only on the action
        # declaration and stable asic containers (register/counter
        # value lists), never on table entries.
        self._fused_runners: Dict[Tuple[Optional[str], tuple], object] = {}
        self._fused_sweeps: Dict[Tuple[Optional[str], tuple], object] = {}
        if profile is None:
            for name, decl in program.controls.items():
                self._batch_plans[name] = tuple(
                    self._compile_batch_ops(decl.body)
                )
            self._batch_major_plans["ingress"] = self._compile_batch_major(
                program.controls.get("ingress"),
                program.controls.get("egress"),
            )

    # ---- control blocks ---------------------------------------------------

    def run_control(self, control_name: str, packet: Packet) -> None:
        """Run a control block to completion on one packet."""
        run = self._controls.get(control_name)
        if run is not None:
            run(packet)

    def bound_control(self, control_name: str) -> Optional[OpFn]:
        """The compiled closure for one control block, or ``None`` if
        the program does not define it.

        The batch path hoists this lookup out of its packet loop: one
        bind per burst instead of a dict probe (plus a call frame for
        absent controls) per packet."""
        return self._controls.get(control_name)

    def iter_control(
        self, control_name: str, packet: Packet
    ) -> Iterator[Tuple[str, str]]:
        """Stepped execution with the interpreter's contract: yields
        ``("apply", table)`` *before* each table application so callers
        can interleave control-plane operations mid-pipeline."""
        steps = self._stepped.get(control_name)
        if steps is not None:
            yield from _run_stepped(steps, packet)

    def _compile_block(self, statements: List[ast.Statement]) -> OpFn:
        ops = self._compile_ops(statements)
        if not ops:
            return _noop
        if len(ops) == 1:
            only = ops[0]

            def run_one(packet: Packet, _op: OpFn = only) -> None:
                if not packet.fields[_DROP]:
                    _op(packet)

            return run_one

        def run(packet: Packet, _ops: Tuple[OpFn, ...] = tuple(ops)) -> None:
            fields = packet.fields
            for op in _ops:
                if fields[_DROP]:
                    return
                op(packet)

        return run

    def _compile_ops(self, statements: List[ast.Statement]) -> List[OpFn]:
        ops: List[OpFn] = []
        for stmt in statements:
            if isinstance(stmt, ast.ApplyCall):
                ops.append(self._apply_fn(stmt.table))
            elif isinstance(stmt, ast.IfBlock):
                cond = self._compile_expr(stmt.cond)
                then_fn = self._compile_block(stmt.then_body)
                else_fn = self._compile_block(stmt.else_body)
                if isinstance(cond, int):  # constant condition: fold
                    ops.append(then_fn if cond else else_fn)
                else:

                    def branch(
                        packet: Packet,
                        _c=cond,
                        _t: OpFn = then_fn,
                        _e: OpFn = else_fn,
                    ) -> None:
                        if _c(packet):
                            _t(packet)
                        else:
                            _e(packet)

                    ops.append(branch)
            else:  # pragma: no cover - parser emits only the kinds above
                raise SwitchError(f"unknown statement {stmt!r}")
        return ops

    # ---- batch execution --------------------------------------------------

    def begin_batch(self) -> None:
        """Reset the per-batch table-resolution memos.

        Table entries and default actions are control-plane state, and
        the control plane cannot run inside a batch, so for the life of
        one batch each key resolves to a fixed (action steps, args)
        pair.  The memos must not outlive the batch -- the agent may
        rewrite entries between bursts."""
        for memo in self._batch_memos:
            memo.clear()

    def batch_ops(self, control_name: str) -> Optional[Tuple[OpFn, ...]]:
        """The batch execution plan for one control block: one op per
        statement, with exact-match applies replaced by fused,
        batch-memoized versions.  Returns ``None`` when no plan exists
        (profiling enabled); an undefined control is an empty plan."""
        if self.profile is not None:
            return None
        return self._batch_plans.get(control_name, ())

    def _compile_batch_ops(
        self, statements: List[ast.Statement]
    ) -> List[OpFn]:
        ops: List[OpFn] = []
        for stmt in statements:
            if isinstance(stmt, ast.ApplyCall):
                runtime = self.asic.tables.get(stmt.table)
                if runtime is None:
                    raise SwitchError(f"unknown table {stmt.table!r}")
                ops.append(self._compile_batch_apply(runtime))
            elif isinstance(stmt, ast.IfBlock):
                # Branches are off the common forward path: reuse the
                # scalar op (its sub-blocks go through scalar applies).
                ops.extend(self._compile_ops([stmt]))
            else:  # pragma: no cover - parser emits only the kinds above
                raise SwitchError(f"unknown statement {stmt!r}")
        return ops

    def _make_resolver(self, runtime):
        """A ``key_tuple -> (matched, steps, args, fused)`` resolver
        for one exact-only table; memoized per batch by the callers.

        ``fused`` is the flat specialized runner for the resolved
        (action, args) pair -- see :meth:`_fuse_runner` -- or ``None``
        when the action body has a shape the fuser does not cover, in
        which case callers fall back to the generic step loop."""
        resolve_steps = self._resolve_steps
        fuse = self._fuse_runner
        index = runtime._exact_index

        def resolve(key_tuple, _runtime=runtime, _index=index):
            entry = _index.get(key_tuple)
            if entry is None:
                result = _runtime.default_action
                if result is None:
                    return (False, (), (), None)
                name, args = result
                return (
                    False,
                    resolve_steps(name, args),
                    args,
                    fuse(name, tuple(args)),
                )
            name = entry.action_name
            args = entry.action_args
            return (
                True,
                resolve_steps(name, args),
                args,
                fuse(name, tuple(args)),
            )

        return resolve

    def _resolve_steps(
        self, action_name: str, action_args: List[int]
    ) -> Tuple[StepFn, ...]:
        """Pre-flight an action for memoized execution: same unknown-
        action and arity errors as the compiled run fns, paid once per
        (table, key) per batch instead of once per packet."""
        entry = self._action_steps.get(action_name)
        if entry is None:
            raise SwitchError(f"unknown action {action_name!r}")
        steps, n_params = entry
        if len(action_args) != n_params:
            raise SwitchError(
                f"action {action_name}: expected {n_params} args, "
                f"got {len(action_args)}"
            )
        return steps

    # ---- action fusion ----------------------------------------------------
    #
    # Once a batch resolver has pinned a (action, args) pair, every
    # action parameter is a known integer, so the whole primitive
    # sequence can be emitted as one flat Python function -- no step
    # dispatch, no argument closures, constants folded in the source.
    # This is the reproduction's version of the paper's precomputation
    # argument (SS6): resolve once, then run straight-line code.

    def _fuse_runner(self, action_name, args: tuple):
        """A fused per-packet runner ``fn(packet, fields)`` for one
        resolved action, or ``None`` if the body is not fusable."""
        cache = self._fused_runners
        key = (action_name, args)
        fn = cache.get(key, _UNSET)
        if fn is _UNSET:
            fn = cache[key] = self._build_fused(action_name, args, False)
        return fn

    def _fuse_sweep(self, action_name, args: tuple):
        """A fused whole-batch sweep ``fn(packets) -> live_count`` for
        one resolved keyless action (``None`` action name means
        miss-with-no-default: count live packets, run nothing)."""
        cache = self._fused_sweeps
        key = (action_name, args)
        fn = cache.get(key, _UNSET)
        if fn is _UNSET:
            fn = cache[key] = self._build_fused(action_name, args, True)
        return fn

    def _build_fused(self, action_name, args: tuple, sweep: bool):
        if action_name is None:
            body: List[str] = []
        else:
            decl = self.asic.program.actions.get(action_name)
            if decl is None or len(decl.params) != len(args):
                return None
            params = dict(zip(decl.params, args))
            env: Dict[str, object] = {"min": min, "max": max}
            body = []
            for call in decl.body:
                if not self._fuse_call(call, params, env, body):
                    return None
        if sweep:
            inner = "".join(f"        {line}\n" for line in body)
            src = (
                "def _fused(packets):\n"
                "    live = 0\n"
                "    for p in packets:\n"
                "        f = p.fields\n"
                f"        if f[{_DROP!r}]:\n"
                "            continue\n"
                "        live += 1\n"
                f"{inner}"
                "    return live\n"
            )
        else:
            inner = "".join(f"    {line}\n" for line in body) or "    pass\n"
            src = f"def _fused(p, f):\n{inner}"
        namespace: Dict[str, object] = {"__builtins__": {}}
        if action_name is not None:
            namespace.update(env)
        exec(  # noqa: S102 - source assembled from parsed P4 only
            compile(src, f"<fused {action_name}>", "exec"), namespace
        )
        return namespace["_fused"]

    def _fuse_value(self, arg, params: Dict[str, int]) -> Optional[str]:
        """Render a primitive argument as a source expression over the
        per-packet locals ``p``/``f``; ``None`` if not renderable."""
        if isinstance(arg, int):
            return repr(arg)
        if isinstance(arg, ast.FieldRef):
            return f"f.get({arg.header + '.' + arg.field!r}, 0)"
        if isinstance(arg, str) and arg in params:
            return repr(params[arg])
        return None

    def _fuse_call(
        self,
        call: ast.PrimitiveCall,
        params: Dict[str, int],
        env: Dict[str, object],
        body: List[str],
    ) -> bool:
        """Emit source lines for one primitive call; ``False`` when the
        shape is outside the fusable subset (caller falls back to the
        generic step loop)."""
        name = call.name
        args = call.args
        asic = self.asic

        if name == "no_op":
            return True
        if name == "drop":
            body.append(f"f[{_DROP!r}] = 1")
            return True
        if name in _FLAG_KEYS:
            body.append(f"f[{_FLAG_KEYS[name]!r}] = 1")
            return True

        if name == "modify_field":
            dst = self._dst(args[0])
            if dst is None:
                return False
            key, mask = dst
            value = self._fuse_value(args[1], params)
            if value is None:
                return False
            if len(args) > 2:
                extra = self._fuse_value(args[2], params)
                if extra is None:
                    return False
                value = f"({value} & {extra})"
            if mask is not None:
                value = f"({value}) & {mask}"
            body.append(f"f[{key!r}] = {value}")
            return True

        if name in _ARITH_EXPRS:
            dst = self._dst(args[0])
            if dst is None:
                return False
            key, mask = dst
            left = self._fuse_value(args[1], params)
            right = self._fuse_value(args[2], params)
            if left is None or right is None:
                return False
            value = _ARITH_EXPRS[name].format(l=left, r=right)
            if mask is not None:
                value = f"{value} & {mask}"
            body.append(f"f[{key!r}] = {value}")
            return True

        if name in ("add_to_field", "subtract_from_field"):
            dst = self._dst(args[0])
            if dst is None:
                return False
            key, mask = dst
            delta = self._fuse_value(args[1], params)
            if delta is None:
                return False
            sign = "+" if name == "add_to_field" else "-"
            value = f"(f.get({key!r}, 0) {sign} {delta})"
            if mask is not None:
                value = f"{value} & {mask}"
            body.append(f"f[{key!r}] = {value}")
            return True

        if name == "register_write":
            register = asic.get_register(args[0])
            values = register.values
            size = len(values)
            width_mask = register.mask
            index = self._fuse_value(args[1], params)
            value = self._fuse_value(args[2], params)
            if index is None or value is None:
                return False
            vals_name = f"_o{len(env)}"
            env[vals_name] = values
            const_index = _const_int(args[1], params)
            if const_index is not None and 0 <= const_index < size:
                body.append(
                    f"{vals_name}[{const_index}] = ({value}) & {width_mask}"
                )
                return True
            reg_name = f"_o{len(env)}"
            env[reg_name] = register
            body.extend(
                [
                    f"_i = {index}",
                    f"_v = {value}",
                    f"if 0 <= _i < {size}:",
                    f"    {vals_name}[_i] = _v & {width_mask}",
                    "else:",
                    f"    {reg_name}.write(_i, _v)",
                ]
            )
            return True

        if name == "register_read":
            dst = self._dst(args[0])
            if dst is None:
                return False
            key, mask = dst
            register = asic.get_register(args[1])
            values = register.values
            size = len(values)
            index = self._fuse_value(args[2], params)
            if index is None:
                return False
            vals_name = f"_o{len(env)}"
            env[vals_name] = values
            const_index = _const_int(args[2], params)
            if const_index is not None and 0 <= const_index < size:
                value = f"{vals_name}[{const_index}]"
                if mask is not None:
                    value = f"{value} & {mask}"
                body.append(f"f[{key!r}] = {value}")
                return True
            reg_name = f"_o{len(env)}"
            env[reg_name] = register
            value = (
                f"({vals_name}[_i] if 0 <= _i < {size} "
                f"else {reg_name}.read(_i))"
            )
            if mask is not None:
                value = f"{value} & {mask}"
            body.extend([f"_i = {index}", f"f[{key!r}] = {value}"])
            return True

        if name == "count":
            counter = asic.get_counter(args[0])
            array = counter.array
            values = array.values
            width_mask = array.mask
            amount = "p.size_bytes" if counter.counter_type == "bytes" else "1"
            index = self._fuse_value(args[1], params)
            if index is None:
                return False
            const_index = _const_int(args[1], params)
            if const_index is not None and 0 <= const_index < len(values):
                vals_name = f"_o{len(env)}"
                env[vals_name] = values
                body.append(
                    f"{vals_name}[{const_index}] = "
                    f"({vals_name}[{const_index}] + {amount}) & {width_mask}"
                )
                return True
            arr_name = f"_o{len(env)}"
            env[arr_name] = array
            body.append(f"{arr_name}.increment({index}, {amount})")
            return True

        if name == "modify_field_rng_uniform":
            dst = self._dst(args[0])
            if dst is None:
                return False
            key, mask = dst
            lo = self._fuse_value(args[1], params)
            hi = self._fuse_value(args[2], params)
            if lo is None or hi is None:
                return False
            env["_rng"] = self.rng
            value = f"_rng.randint({lo}, {hi})"
            if mask is not None:
                value = f"({value}) & {mask}"
            body.append(f"f[{key!r}] = {value}")
            return True

        # Hash offsets and anything unrecognized keep their compiled
        # step closures.
        return False

    def _compile_batch_apply(self, runtime) -> OpFn:
        """A batch-specialized table apply.

        Exact-only tables get (key -> resolved action) memoization for
        the life of one batch, and the dominant single-unmasked-field
        shape additionally gets its key extraction inlined (no
        extractor frames).  Other match kinds fall back to the scalar
        apply -- ``lookup_key`` owns their matching semantics."""
        if not runtime._exact_only:
            return self._apply_fn(runtime.decl.name)
        reads = runtime.decl.reads
        memo: Dict[object, tuple] = {}
        self._batch_memos.append(memo)
        resolve = self._make_resolver(runtime)

        if (
            len(reads) == 1
            and reads[0].match_type is not ast.MatchType.VALID
            and reads[0].mask is None
        ):
            ref = reads[0].ref
            field_key = f"{ref.header}.{ref.field}"

            def apply_fused(
                packet: Packet,
                _fk=field_key,
                _memo=memo,
                _resolve=resolve,
                _runtime=runtime,
            ) -> None:
                fields = packet.fields
                key = fields.get(_fk, 0)
                hit = _memo.get(key)
                if hit is None:
                    hit = _memo[key] = _resolve((key,))
                matched, steps, args, fused = hit
                if matched:
                    _runtime.hits += 1
                else:
                    _runtime.misses += 1
                if fused is not None:
                    fused(packet, fields)
                else:
                    for step in steps:
                        step(args, packet)

            return apply_fused

        build_key = self._compile_key(reads)

        def apply_memoized(
            packet: Packet,
            _key=build_key,
            _memo=memo,
            _resolve=resolve,
            _runtime=runtime,
        ) -> None:
            key = _key(packet)
            hit = _memo.get(key)
            if hit is None:
                hit = _memo[key] = _resolve(key)
            matched, steps, args, fused = hit
            if matched:
                _runtime.hits += 1
            else:
                _runtime.misses += 1
            if fused is not None:
                fused(packet, packet.fields)
            else:
                for step in steps:
                    step(args, packet)

        return apply_memoized

    # ---- op-major batch execution -----------------------------------------

    def batch_major_ops(
        self, control_name: str
    ) -> Optional[Tuple[BatchOpFn, ...]]:
        """The op-major plan for a control block: each op sweeps the
        whole batch, so the per-packet apply frame is paid once per
        table per *batch*.  ``None`` when unavailable -- profiling, a
        non-straight-line control, non-exact tables, or tables whose
        cross-packet state (registers, counters, the RNG) overlaps, in
        which case op-major would reorder observable effects."""
        if self.profile is not None:
            return None
        return self._batch_major_plans.get(control_name)

    def _action_resources(self, action_name: str) -> Optional[set]:
        """Cross-packet state an action touches.  ``None`` for unknown
        actions (unanalyzable)."""
        decl = self.asic.program.actions.get(action_name)
        if decl is None:
            return None
        resources = set()
        for call in decl.body:
            name = call.name
            if name == "register_write":
                resources.add(f"reg:{call.args[0]}")
            elif name == "register_read":
                resources.add(f"reg:{call.args[1]}")
            elif name == "count":
                resources.add(f"ctr:{call.args[0]}")
            elif name == "modify_field_rng_uniform":
                resources.add("rng")
            elif name == "recirculate":
                resources.add("recirc")
        return resources

    def _table_resources(self, runtime) -> Optional[set]:
        """Cross-packet state reachable from any action this table can
        invoke (entries and the rebindable default are both validated
        against ``decl.action_names``, so this union is sound)."""
        names = set(runtime.decl.action_names)
        default = runtime.decl.default_action
        if default:
            names.add(default[0])
        resources = set()
        for name in names:
            action_resources = self._action_resources(name)
            if action_resources is None:
                return None
            resources |= action_resources
        return resources

    def _compile_batch_major(
        self, ingress_decl, egress_decl
    ) -> Optional[Tuple[BatchOpFn, ...]]:
        """Build the op-major ingress plan, or ``None`` if per-packet
        order must be preserved.

        Op-major execution runs table k over every packet before table
        k+1 sees any.  That is observably identical to packet-major
        execution iff no cross-packet state (register, counter, RNG) is
        shared between two ops -- including every table the egress
        control might apply, since egress runs per packet *after* the
        op-major ingress sweep.  Recirculation replays ingress out of
        sweep order, so it too forces the fallback unless the pipeline
        is entirely stateless."""
        body = ingress_decl.body if ingress_decl is not None else []
        runtimes = []
        for stmt in body:
            if not isinstance(stmt, ast.ApplyCall):
                return None
            runtime = self.asic.tables.get(stmt.table)
            if runtime is None or not runtime._exact_only:
                return None
            runtimes.append(runtime)
        footprints = []
        for runtime in runtimes:
            resources = self._table_resources(runtime)
            if resources is None:
                return None
            footprints.append(resources)
        egress_resources = set()
        if egress_decl is not None:
            for table_name in _tables_in(egress_decl.body):
                runtime = self.asic.tables.get(table_name)
                if runtime is None:
                    return None
                resources = self._table_resources(runtime)
                if resources is None:
                    return None
                egress_resources |= resources
        footprints.append(egress_resources)
        shared = set()
        for resources in footprints:
            if resources & shared:
                return None
            shared |= resources
        if "recirc" in shared and shared != {"recirc"}:
            return None
        return tuple(self._compile_major_apply(rt) for rt in runtimes)

    def _compile_major_apply(self, runtime) -> BatchOpFn:
        """One table's op-major sweep: apply it to every live packet in
        the batch, with hit/miss accounting accumulated locally and
        flushed once."""
        reads = runtime.decl.reads
        resolve = self._make_resolver(runtime)

        if not reads:
            # Keyless (Mantis init/collect tables, RMW accounting): one
            # resolution covers the whole sweep, and the fused variant
            # runs the entire action body inline inside one batch loop.
            resolve_steps = self._resolve_steps
            fuse_sweep = self._fuse_sweep
            memo: Dict[object, tuple] = {}
            self._batch_memos.append(memo)
            index = runtime._exact_index

            def major_keyless(
                packets: List[Packet],
                _memo=memo,
                _index=index,
                _runtime=runtime,
            ) -> None:
                hit = _memo.get(())
                if hit is None:
                    entry = _index.get(())
                    if entry is not None:
                        matched = True
                        name = entry.action_name
                        args = entry.action_args
                    else:
                        matched = False
                        default = _runtime.default_action
                        name, args = default if default else (None, ())
                    if name is None:
                        steps: tuple = ()
                    else:
                        steps = resolve_steps(name, args)
                    sweep = fuse_sweep(name, tuple(args))
                    hit = _memo[()] = (matched, steps, tuple(args), sweep)
                matched, steps, args, sweep = hit
                if sweep is not None:
                    live = sweep(packets)
                else:
                    live = 0
                    for packet in packets:
                        if packet.fields[_DROP]:
                            continue
                        live += 1
                        for step in steps:
                            step(args, packet)
                if matched:
                    _runtime.hits += live
                else:
                    _runtime.misses += live

            return major_keyless

        memo: Dict[object, tuple] = {}
        self._batch_memos.append(memo)
        simple = all(
            read.match_type is not ast.MatchType.VALID and read.mask is None
            for read in reads
        )

        if simple and len(reads) == 1:
            ref = reads[0].ref
            field_key = f"{ref.header}.{ref.field}"

            def major_single(
                packets: List[Packet],
                _fk=field_key,
                _memo=memo,
                _resolve=resolve,
                _runtime=runtime,
            ) -> None:
                hits = 0
                misses = 0
                get = _memo.get
                for packet in packets:
                    fields = packet.fields
                    if fields[_DROP]:
                        continue
                    key = fields.get(_fk, 0)
                    hit = get(key)
                    if hit is None:
                        hit = _memo[key] = _resolve((key,))
                    matched, steps, args, fused = hit
                    if matched:
                        hits += 1
                    else:
                        misses += 1
                    if fused is not None:
                        fused(packet, fields)
                    else:
                        for step in steps:
                            step(args, packet)
                _runtime.hits += hits
                _runtime.misses += misses

            return major_single

        if simple and len(reads) == 2:
            first = reads[0].ref
            second = reads[1].ref

            def major_pair(
                packets: List[Packet],
                _fa=f"{first.header}.{first.field}",
                _fb=f"{second.header}.{second.field}",
                _memo=memo,
                _resolve=resolve,
                _runtime=runtime,
            ) -> None:
                hits = 0
                misses = 0
                get = _memo.get
                for packet in packets:
                    fields = packet.fields
                    if fields[_DROP]:
                        continue
                    key = (fields.get(_fa, 0), fields.get(_fb, 0))
                    hit = get(key)
                    if hit is None:
                        hit = _memo[key] = _resolve(key)
                    matched, steps, args, fused = hit
                    if matched:
                        hits += 1
                    else:
                        misses += 1
                    if fused is not None:
                        fused(packet, fields)
                    else:
                        for step in steps:
                            step(args, packet)
                _runtime.hits += hits
                _runtime.misses += misses

            return major_pair

        build_key = self._compile_key(reads)

        def major_generic(
            packets: List[Packet],
            _key=build_key,
            _memo=memo,
            _resolve=resolve,
            _runtime=runtime,
        ) -> None:
            hits = 0
            misses = 0
            get = _memo.get
            for packet in packets:
                if packet.fields[_DROP]:
                    continue
                key = _key(packet)
                hit = get(key)
                if hit is None:
                    hit = _memo[key] = _resolve(key)
                matched, steps, args, fused = hit
                if matched:
                    hits += 1
                else:
                    misses += 1
                if fused is not None:
                    fused(packet, packet.fields)
                else:
                    for step in steps:
                        step(args, packet)
            _runtime.hits += hits
            _runtime.misses += misses

        return major_generic

    def _compile_stepped(self, statements: List[ast.Statement]) -> List:
        """Compile to generator-producing steps for ``iter_control``."""
        steps = []
        for stmt in statements:
            if isinstance(stmt, ast.ApplyCall):
                apply_fn = self._apply_fn(stmt.table)

                def step(packet: Packet, _name=stmt.table, _apply=apply_fn):
                    yield ("apply", _name)
                    _apply(packet)

                steps.append(step)
            elif isinstance(stmt, ast.IfBlock):
                cond = self._compile_expr(stmt.cond)
                then_steps = self._compile_stepped(stmt.then_body)
                else_steps = self._compile_stepped(stmt.else_body)

                def step(
                    packet: Packet,
                    _c=cond,
                    _t=then_steps,
                    _e=else_steps,
                ):
                    taken = _t if (_c if isinstance(_c, int) else _c(packet)) else _e
                    yield from _run_stepped(taken, packet)

                steps.append(step)
            else:  # pragma: no cover - parser emits only the kinds above
                raise SwitchError(f"unknown statement {stmt!r}")
        return steps

    # ---- tables -----------------------------------------------------------

    def _apply_fn(self, table_name: str) -> OpFn:
        if table_name not in self._applies:
            raise SwitchError(f"unknown table {table_name!r}")
        return self._applies[table_name]

    def apply_table(self, table_name: str, packet: Packet) -> None:
        self._apply_fn(table_name)(packet)

    def _compile_apply(self, runtime) -> OpFn:
        build_key = self._compile_key(runtime.decl.reads)
        actions = self._actions

        if runtime._exact_only:
            # Exact-only tables: probe the hash index directly.  The
            # dict object itself is stable (TableRuntime mutates it in
            # place, never rebinds it), so closing over it keeps entry
            # adds/deletes live; hit/miss accounting and the
            # (rebindable) default action go through the runtime.
            index = runtime._exact_index

            def apply_exact(
                packet: Packet,
                _runtime=runtime,
                _key=build_key,
                _index=index,
                _actions=actions,
            ) -> None:
                entry = _index.get(_key(packet))
                if entry is None:
                    _runtime.misses += 1
                    result = _runtime.default_action
                    if result is None:
                        return
                    action_name, action_args = result
                else:
                    _runtime.hits += 1
                    action_name = entry.action_name
                    action_args = entry.action_args
                action = _actions.get(action_name)
                if action is None:
                    raise SwitchError(f"unknown action {action_name!r}")
                action(action_args, packet)

            return apply_exact

        def apply(
            packet: Packet,
            _runtime=runtime,
            _key=build_key,
            _actions=actions,
        ) -> None:
            result = _runtime.lookup_key(_key(packet))
            if result is None:
                return
            action_name, action_args = result
            action = _actions.get(action_name)
            if action is None:
                raise SwitchError(f"unknown action {action_name!r}")
            action(action_args, packet)

        return apply

    def _compile_key(
        self, reads: List[ast.TableRead]
    ) -> Callable[[Packet], tuple]:
        extractors = []
        for read in reads:
            if read.match_type is ast.MatchType.VALID:
                extractors.append(
                    lambda p, _h=read.ref.header: _h in p.valid_headers
                )
            else:
                ref = read.ref
                key = f"{ref.header}.{ref.field}"
                if read.mask is None:
                    extractors.append(lambda p, _k=key: p.fields.get(_k, 0))
                else:
                    extractors.append(
                        lambda p, _k=key, _m=read.mask: p.fields.get(_k, 0) & _m
                    )
        if not extractors:
            return lambda packet: ()
        if len(extractors) == 1:
            only = extractors[0]
            return lambda packet, _e=only: (_e(packet),)
        if len(extractors) == 2:
            first, second = extractors
            return lambda packet, _a=first, _b=second: (
                _a(packet), _b(packet),
            )
        if len(extractors) == 3:
            first, second, third = extractors
            return lambda packet, _a=first, _b=second, _c=third: (
                _a(packet), _b(packet), _c(packet),
            )
        parts = tuple(extractors)
        return lambda packet, _parts=parts: tuple(e(packet) for e in _parts)

    # ---- expressions ------------------------------------------------------

    def _compile_expr(self, expr):
        """Compile an ``if`` condition operand.

        Returns an ``int`` for constant subtrees (folded) or a closure
        ``packet -> int``.
        """
        if isinstance(expr, int):
            return expr
        if isinstance(expr, ast.FieldRef):
            key = f"{expr.header}.{expr.field}"
            return lambda p, _k=key: p.fields.get(_k, 0)
        if isinstance(expr, ast.ValidRef):
            header = expr.header
            return lambda p, _h=header: 1 if _h in p.valid_headers else 0
        if isinstance(expr, ast.BinOp):
            fn = _BIN_FNS.get(expr.op)
            if fn is None:
                raise SwitchError(f"unknown condition operator {expr.op!r}")
            left = self._compile_expr(expr.left)
            right = self._compile_expr(expr.right)
            if isinstance(left, int) and isinstance(right, int):
                return fn(left, right)
            lf = _expr_fn(left)
            rf = _expr_fn(right)
            return lambda p, _l=lf, _r=rf, _f=fn: _f(_l(p), _r(p))
        if isinstance(expr, ast.MalleableRef):
            message = (
                f"malleable reference {expr} reached the data plane; "
                "the program was not compiled by the Mantis compiler"
            )

            def leaked(p, _m=message):
                raise SwitchError(_m)

            return leaked
        raise SwitchError(f"cannot evaluate expression {expr!r}")

    # ---- actions ----------------------------------------------------------

    def run_action(
        self, action_name: str, action_args: List[int], packet: Packet
    ) -> None:
        action = self._actions.get(action_name)
        if action is None:
            raise SwitchError(f"unknown action {action_name!r}")
        action(action_args, packet)

    def _compile_action(self, action: ast.ActionDecl) -> StepFn:
        param_index = {name: i for i, name in enumerate(action.params)}
        steps = tuple(
            self._compile_primitive(call, param_index) for call in action.body
        )
        n_params = len(action.params)
        name = action.name
        self._action_steps[name] = (steps, n_params)

        if len(steps) == 1:
            only = steps[0]

            def run_one(
                args: List[int], packet: Packet, _step: StepFn = only
            ) -> None:
                if len(args) != n_params:
                    raise SwitchError(
                        f"action {name}: expected {n_params} args, "
                        f"got {len(args)}"
                    )
                _step(args, packet)

            return run_one

        def run(args: List[int], packet: Packet) -> None:
            if len(args) != n_params:
                raise SwitchError(
                    f"action {name}: expected {n_params} args, "
                    f"got {len(args)}"
                )
            for step in steps:
                step(args, packet)

        return run

    # ---- primitive arguments ---------------------------------------------

    def _compile_arg(self, arg, param_index: Dict[str, int]):
        """Compile a primitive argument to an ``int`` constant or a
        closure ``(args, packet) -> int``."""
        if isinstance(arg, int):
            return arg
        if isinstance(arg, ast.FieldRef):
            key = f"{arg.header}.{arg.field}"
            return lambda a, p, _k=key: p.fields.get(_k, 0)
        if isinstance(arg, str):
            if arg in param_index:
                index = param_index[arg]
                return lambda a, p, _i=index: a[_i]

            def unresolved(a, p, _arg=arg):
                raise SwitchError(f"unresolved action parameter {_arg!r}")

            return unresolved
        if isinstance(arg, ast.MalleableRef):
            message = (
                f"malleable reference {arg} reached the data plane; "
                "compile the program with the Mantis compiler first"
            )

            def leaked(a, p, _m=message):
                raise SwitchError(_m)

            return leaked

        def bad(a, p, _arg=arg):
            raise SwitchError(f"cannot resolve primitive argument {_arg!r}")

        return bad

    def _dst(self, arg) -> Optional[Tuple[str, Optional[int]]]:
        """Pre-resolve a destination field to ``(key, width_mask)``;
        ``None`` when the argument is not a field reference."""
        if not isinstance(arg, ast.FieldRef):
            return None
        key = f"{arg.header}.{arg.field}"
        return key, self.asic.field_masks.get(key)

    def _store(self, key: str, mask: Optional[int], value_fn) -> StepFn:
        """A step writing ``value_fn(args, packet)`` to a field, with
        the width mask (resolved at compile time) applied inline."""
        if mask is None:

            def step(a, p, _k=key, _v=value_fn):
                p.fields[_k] = _v(a, p)

        else:

            def step(a, p, _k=key, _m=mask, _v=value_fn):
                p.fields[_k] = _v(a, p) & _m

        return step

    # ---- primitives -------------------------------------------------------

    def _compile_primitive(
        self, call: ast.PrimitiveCall, params: Dict[str, int]
    ) -> StepFn:
        name = call.name
        args = call.args
        asic = self.asic

        if name == "no_op":
            return _noop_step
        if name == "drop":

            def drop_step(a, p):
                p.fields[_DROP] = 1

            return drop_step

        if name in ("recirculate", "clone_ingress_pkt_to_egress", "mark_ecn"):
            flag = {
                "recirculate": "standard_metadata.recirculate_flag",
                "clone_ingress_pkt_to_egress": "standard_metadata.clone_flag",
                "mark_ecn": "standard_metadata.ecn_marked",
            }[name]

            def flag_step(a, p, _k=flag):
                p.fields[_k] = 1

            return flag_step

        if name == "modify_field":
            dst = self._dst(args[0])
            if dst is None:
                return _raising_step(
                    f"primitive destination must be a field, got {args[0]!r}"
                )
            key, mask = dst
            value = self._compile_arg(args[1], params)
            extra = (
                self._compile_arg(args[2], params) if len(args) > 2 else None
            )
            if extra is None and isinstance(value, int):
                constant = value if mask is None else value & mask

                def const_step(a, p, _k=key, _c=constant):
                    p.fields[_k] = _c

                return const_step
            value_fn = _arg_fn(value)
            if extra is None:
                return self._store(key, mask, value_fn)
            extra_fn = _arg_fn(extra)
            return self._store(
                key,
                mask,
                lambda a, p, _v=value_fn, _e=extra_fn: _v(a, p) & _e(a, p),
            )

        if name in _ARITH_FNS:
            dst = self._dst(args[0])
            if dst is None:
                return _raising_step(
                    f"primitive destination must be a field, got {args[0]!r}"
                )
            key, mask = dst
            op = _ARITH_FNS[name]
            if isinstance(args[1], ast.FieldRef) and isinstance(
                args[2], ast.FieldRef
            ):
                # Both sources are fields (the dominant shape, e.g.
                # ``add(x, x, pkt_len)``): one flat closure, no
                # per-operand indirection.
                left_key = f"{args[1].header}.{args[1].field}"
                right_key = f"{args[2].header}.{args[2].field}"
                if mask is None:

                    def arith_ff(
                        a, p, _k=key, _a=left_key, _b=right_key, _op=op
                    ):
                        fields = p.fields
                        fields[_k] = _op(
                            fields.get(_a, 0), fields.get(_b, 0)
                        )

                    return arith_ff

                def arith_ff_masked(
                    a, p, _k=key, _a=left_key, _b=right_key, _op=op, _m=mask
                ):
                    fields = p.fields
                    fields[_k] = (
                        _op(fields.get(_a, 0), fields.get(_b, 0)) & _m
                    )

                return arith_ff_masked
            left = _arg_fn(self._compile_arg(args[1], params))
            right = _arg_fn(self._compile_arg(args[2], params))
            return self._store(
                key,
                mask,
                lambda a, p, _l=left, _r=right, _op=op: _op(_l(a, p), _r(a, p)),
            )

        if name in ("add_to_field", "subtract_from_field"):
            dst = self._dst(args[0])
            if dst is None:
                return _raising_step(
                    f"primitive destination must be a field, got {args[0]!r}"
                )
            key, mask = dst
            delta = _arg_fn(self._compile_arg(args[1], params))
            sign = 1 if name == "add_to_field" else -1
            return self._store(
                key,
                mask,
                lambda a, p, _k=key, _d=delta, _s=sign: (
                    p.fields.get(_k, 0) + _s * _d(a, p)
                ),
            )

        if name == "register_write":
            register = asic.get_register(args[0])
            # The values list is a stable object (RegisterArray only
            # mutates it in place), so closing over it skips the
            # read/write method dispatch on every packet.
            values = register.values
            width_mask = register.mask
            index = self._compile_arg(args[1], params)
            value = self._compile_arg(args[2], params)
            if isinstance(index, int) and 0 <= index < len(values):
                if isinstance(args[2], ast.FieldRef):
                    value_key = f"{args[2].header}.{args[2].field}"

                    def reg_write_const_field(
                        a, p, _vals=values, _i=index, _vk=value_key,
                        _m=width_mask,
                    ):
                        _vals[_i] = p.fields.get(_vk, 0) & _m

                    return reg_write_const_field
                value_fn = _arg_fn(value)

                def reg_write_const(
                    a, p, _vals=values, _i=index, _v=value_fn, _m=width_mask
                ):
                    _vals[_i] = _v(a, p) & _m

                return reg_write_const
            index_fn = _arg_fn(index)
            value_fn = _arg_fn(value)
            size = len(values)

            def reg_write_step(
                a, p, _vals=values, _i=index_fn, _v=value_fn,
                _m=width_mask, _n=size, _r=register,
            ):
                idx = _i(a, p)
                val = _v(a, p)
                if 0 <= idx < _n:
                    _vals[idx] = val & _m
                else:
                    _r.write(idx, val)  # raises the range error

            return reg_write_step

        if name == "register_read":
            dst = self._dst(args[0])
            if dst is None:
                return _raising_step(
                    f"primitive destination must be a field, got {args[0]!r}"
                )
            key, mask = dst
            register = asic.get_register(args[1])
            values = register.values
            index = self._compile_arg(args[2], params)
            if isinstance(index, int) and 0 <= index < len(values):
                if mask is None:

                    def reg_read_const(a, p, _k=key, _vals=values, _i=index):
                        p.fields[_k] = _vals[_i]

                    return reg_read_const

                def reg_read_const_masked(
                    a, p, _k=key, _vals=values, _i=index, _m=mask
                ):
                    p.fields[_k] = _vals[_i] & _m

                return reg_read_const_masked
            index_fn = _arg_fn(index)
            size = len(values)
            if mask is None:

                def reg_read_step(
                    a, p, _k=key, _vals=values, _i=index_fn, _n=size,
                    _r=register,
                ):
                    idx = _i(a, p)
                    p.fields[_k] = (
                        _vals[idx] if 0 <= idx < _n else _r.read(idx)
                    )

                return reg_read_step

            def reg_read_step_masked(
                a, p, _k=key, _vals=values, _i=index_fn, _n=size,
                _r=register, _m=mask,
            ):
                idx = _i(a, p)
                p.fields[_k] = (
                    _vals[idx] if 0 <= idx < _n else _r.read(idx)
                ) & _m

            return reg_read_step_masked

        if name == "count":
            counter = asic.get_counter(args[0])
            array = counter.array
            values = array.values
            width_mask = array.mask
            count_bytes = counter.counter_type == "bytes"
            index = self._compile_arg(args[1], params)
            if isinstance(index, int) and 0 <= index < len(values):
                if count_bytes:

                    def count_bytes_const(
                        a, p, _vals=values, _i=index, _m=width_mask
                    ):
                        _vals[_i] = (_vals[_i] + p.size_bytes) & _m

                    return count_bytes_const

                def count_pkts_const(
                    a, p, _vals=values, _i=index, _m=width_mask
                ):
                    _vals[_i] = (_vals[_i] + 1) & _m

                return count_pkts_const
            index_fn = _arg_fn(index)

            def count_step(a, p, _arr=array, _i=index_fn, _bytes=count_bytes):
                _arr.increment(_i(a, p), p.size_bytes if _bytes else 1)

            return count_step

        if name == "modify_field_with_hash_based_offset":
            return self._compile_hash(call, params)

        if name == "modify_field_rng_uniform":
            dst = self._dst(args[0])
            if dst is None:
                return _raising_step(
                    f"primitive destination must be a field, got {args[0]!r}"
                )
            key, mask = dst
            lo = _arg_fn(self._compile_arg(args[1], params))
            hi = _arg_fn(self._compile_arg(args[2], params))
            rng = self.rng
            return self._store(
                key,
                mask,
                lambda a, p, _lo=lo, _hi=hi, _rng=rng: _rng.randint(
                    _lo(a, p), _hi(a, p)
                ),
            )

        return _raising_step(f"unsupported primitive action {name!r}")

    def _compile_hash(
        self, call: ast.PrimitiveCall, params: Dict[str, int]
    ) -> StepFn:
        program = self.asic.program
        dst = self._dst(call.args[0])
        if dst is None:
            return _raising_step(
                f"primitive destination must be a field, got {call.args[0]!r}"
            )
        key, mask = dst
        base = _arg_fn(self._compile_arg(call.args[1], params))
        calc_name = call.args[2]
        size = _arg_fn(self._compile_arg(call.args[3], params))
        if calc_name not in program.field_list_calcs:
            return _raising_step(
                f"unknown field_list_calculation {calc_name!r}"
            )
        calc = program.field_list_calcs[calc_name]
        inputs: List[Tuple[str, int]] = []
        for list_name in calc.inputs:
            for ref in program.field_lists[list_name].entries:
                if not isinstance(ref, ast.FieldRef):
                    return _raising_step(
                        f"cannot hash non-field reference {ref!r}"
                    )
                field_key = f"{ref.header}.{ref.field}"
                width_mask = self.asic.field_masks.get(field_key, (1 << 32) - 1)
                inputs.append((field_key, width_mask.bit_length()))
        algorithm = calc.algorithm
        output_width = calc.output_width
        input_plan = tuple(inputs)

        def value_fn(a, p, _in=input_plan, _alg=algorithm, _w=output_width,
                     _base=base, _size=size):
            fields = p.fields
            hashed = compute_hash(
                _alg, [(fields.get(k, 0), bits) for k, bits in _in], _w
            )
            modulus = _size(a, p)
            return _base(a, p) + (hashed % modulus if modulus else hashed)

        return self._store(key, mask, value_fn)


# ---- module helpers -------------------------------------------------------


def _noop(packet: Packet) -> None:
    return None


def _noop_step(args: List[int], packet: Packet) -> None:
    return None


def _expr_fn(value):
    """Wrap a folded constant as a ``packet -> int`` closure."""
    if isinstance(value, int):
        return lambda p, _c=value: _c
    return value


def _arg_fn(value):
    """Wrap a folded constant as an ``(args, packet) -> int`` closure."""
    if isinstance(value, int):
        return lambda a, p, _c=value: _c
    return value


def _run_stepped(steps, packet: Packet):
    fields = packet.fields
    for step in steps:
        if fields[_DROP]:
            return
        yield from step(packet)


# ---- differential testing hook --------------------------------------------


def asic_state_snapshot(asic) -> Dict[str, object]:
    """All cross-packet ASIC state, in a comparable form."""
    return {
        "registers": {
            name: list(reg.values) for name, reg in asic.registers.items()
        },
        "counters": {
            name: list(counter.array.values)
            for name, counter in asic.counters.items()
        },
        "tables": {
            name: {
                "hits": table.hits,
                "misses": table.misses,
                "default": table.default_action,
                "entries": {
                    entry_id: (
                        entry.key,
                        entry.action_name,
                        tuple(entry.action_args),
                        entry.priority,
                    )
                    for entry_id, entry in table.entries.items()
                },
            }
            for name, table in asic.tables.items()
        },
        "ports": [
            (port.tx_packets, port.tx_bytes) for port in asic.ports
        ],
        "packets_processed": asic.packets_processed,
        "packets_dropped": asic.packets_dropped,
        "pipeline_passes": asic.pipeline_passes,
    }


def packet_snapshot(packet: Packet) -> Dict[str, object]:
    """A packet's observable outcome, in a comparable form."""
    return {
        "fields": dict(packet.fields),
        "valid_headers": frozenset(packet.valid_headers),
        "dropped": packet.dropped,
    }


def run_differential(
    build: Callable[[str], "object"],
    drive: Callable[[object], object],
) -> object:
    """Replay one workload through both execution engines and assert
    identical behaviour.

    ``build(execution_mode)`` must return a fresh
    :class:`~repro.switch.asic.SwitchAsic` (or any object exposing the
    same registers/counters/tables/ports surface) configured for the
    given mode; ``drive(asic)`` runs the workload and returns the
    per-packet observables to compare (a list of
    :func:`packet_snapshot` results, say).  Raises
    :class:`~repro.errors.SwitchError` naming the first divergence;
    returns the compiled run's observables on agreement.
    """
    reference = build("interpreter")
    observed_ref = drive(reference)
    compiled = build("compiled")
    observed_fast = drive(compiled)
    if observed_ref != observed_fast:
        raise SwitchError(
            "differential mismatch in workload observables:\n"
            f"  interpreter: {observed_ref!r}\n"
            f"  compiled:    {observed_fast!r}"
        )
    state_ref = asic_state_snapshot(reference)
    state_fast = asic_state_snapshot(compiled)
    for section in state_ref:
        if state_ref[section] != state_fast[section]:
            raise SwitchError(
                f"differential mismatch in ASIC state ({section}):\n"
                f"  interpreter: {state_ref[section]!r}\n"
                f"  compiled:    {state_fast[section]!r}"
            )
    return observed_fast
