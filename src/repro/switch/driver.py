"""Control-plane driver with a calibrated PCIe latency cost model.

This module substitutes for the paper's modified Barefoot driver.  The
*shape* of its cost model is what Figures 10-12 measure:

- every non-batched operation pays one PCIe round trip;
- software preparation cost drops by ~an order of magnitude for
  *memoized* operations (instruction buffers precomputed in the
  prologue -- the paper's "caching/memoization of device instructions");
- reads of consecutive entries of one register array are DMA-bursts:
  the first word is included in the base cost, each additional byte
  costs only tens of nanoseconds (Figure 10a's register-argument line);
- reads/updates of *distinct* objects each pay their own base cost
  (Figure 10a's field-argument line is linear in packed registers);
- batched operations share a single PCIe round trip.

The driver serializes all operations (the dialogue loop is
single-threaded; legacy clients queue behind at most one in-flight
Mantis operation -- Section 6).  With ``record_timeline=True`` every
operation's ``(start, end, channel)`` interval is logged so the
Figure 12 experiment can measure legacy-update interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DriverError
from repro.switch.asic import SwitchAsic
from repro.switch.tables import KeyPart


@dataclass
class DriverCostModel:
    """Latency parameters, in microseconds of simulated time.

    Defaults are calibrated so that the end-to-end reaction times of
    the paper's use cases land in the reported "10s of us" range; see
    EXPERIMENTS.md for the calibration notes.
    """

    pcie_rtt_us: float = 0.9
    op_prep_us: float = 0.6
    memoized_prep_us: float = 0.08
    table_modify_us: float = 0.5
    table_add_us: float = 1.3
    table_delete_us: float = 0.6
    table_set_default_us: float = 0.5
    register_read_base_us: float = 0.5
    register_read_per_byte_us: float = 0.012
    register_write_us: float = 0.4

    def register_read_cost(self, entries: int, width_bits: int) -> float:
        """Device cost of a burst read of ``entries`` consecutive
        entries of one array (excluding PCIe/prep)."""
        total_bytes = entries * ((width_bits + 7) // 8)
        extra_bytes = max(0, total_bytes - 4)
        return self.register_read_base_us + extra_bytes * self.register_read_per_byte_us


@dataclass
class OpRecord:
    """One completed driver operation (for interference analysis).

    ``excl_start_us``/``excl_end_us`` bound the *device-exclusive*
    window -- the ASIC access itself.  Software preparation and the
    PCIe transfer are pipelined per requester and do not block a
    concurrent legacy client; only the device window serializes
    (Section 6's "queue behind at most one set of operations").
    """

    start_us: float
    end_us: float
    kind: str
    target: str
    channel: str
    excl_start_us: float = 0.0
    excl_end_us: float = 0.0


@dataclass
class MemoHandle:
    """Prologue-precomputed instruction buffer for one device object.

    Operations issued with a memo skip most software preparation
    (``memoized_prep_us`` instead of ``op_prep_us``).
    """

    kind: str
    name: str


class Driver:
    """Single serialized access path to the switch ASIC."""

    def __init__(
        self,
        asic: SwitchAsic,
        model: Optional[DriverCostModel] = None,
        record_timeline: bool = False,
    ):
        self.asic = asic
        self.clock = asic.clock
        self.model = model or DriverCostModel()
        self.record_timeline = record_timeline
        self.timeline: List[OpRecord] = []
        self.ops_issued = 0
        # Ablation knob: when False, every operation pays the full
        # (unmemoized) software preparation cost.
        self.memoization_enabled = True
        self._batch_depth = 0
        self._batch_pcie_paid = False
        self._memos: Dict[Tuple[str, str], MemoHandle] = {}

    # ---- memoization (prologue) -------------------------------------------

    def memoize(self, kind: str, name: str) -> MemoHandle:
        """Precompute the instruction buffer for one object.

        Costs one op's preparation time (paid in the prologue, where
        latency does not matter) and returns a reusable handle.
        """
        key = (kind, name)
        if key not in self._memos:
            self._check_target(kind, name)
            self.clock.advance(self.model.op_prep_us)
            self._memos[key] = MemoHandle(kind, name)
        return self._memos[key]

    def _check_target(self, kind: str, name: str) -> None:
        if kind == "table":
            self.asic.get_table(name)
        elif kind == "register":
            self.asic.get_register(name)
        elif kind == "counter":
            self.asic.get_counter(name)
        else:
            raise DriverError(f"unknown memo kind {kind!r}")

    # ---- batching -------------------------------------------------------------

    def batch(self) -> "_BatchContext":
        """Group subsequent operations into one PCIe transaction."""
        return _BatchContext(self)

    # ---- cost accounting -------------------------------------------------------

    def _execute(
        self,
        kind: str,
        target: str,
        device_cost: float,
        memo: Optional[MemoHandle],
        channel: str,
    ) -> None:
        prep = (
            self.model.memoized_prep_us
            if memo is not None and self.memoization_enabled
            else self.model.op_prep_us
        )
        pcie = 0.0
        if self._batch_depth == 0:
            pcie = self.model.pcie_rtt_us
        elif not self._batch_pcie_paid:
            pcie = self.model.pcie_rtt_us
            self._batch_pcie_paid = True
        start = self.clock.now
        self.clock.advance(prep + device_cost + pcie)
        self.ops_issued += 1
        if self.record_timeline:
            self.timeline.append(
                OpRecord(
                    start, self.clock.now, kind, target, channel,
                    excl_start_us=start + prep,
                    excl_end_us=start + prep + device_cost,
                )
            )

    def _use_memo(
        self, memo: Optional[MemoHandle], kind: str, name: str
    ) -> Optional[MemoHandle]:
        if memo is None:
            return self._memos.get((kind, name))
        if memo.kind != kind or memo.name != name:
            raise DriverError(
                f"memo for {memo.kind}/{memo.name} used on {kind}/{name}"
            )
        return memo

    # ---- table operations ---------------------------------------------------------

    def add_entry(
        self,
        table: str,
        key: Sequence[KeyPart],
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> int:
        memo = self._use_memo(memo, "table", table)
        entry_id = self.asic.get_table(table).add_entry(key, action, args, priority)
        self._execute("table_add", table, self.model.table_add_us, memo, channel)
        return entry_id

    def modify_entry(
        self,
        table: str,
        entry_id: int,
        action: Optional[str] = None,
        args: Optional[Sequence[int]] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        self.asic.get_table(table).modify_entry(entry_id, action, args)
        self._execute(
            "table_modify", table, self.model.table_modify_us, memo, channel
        )

    def delete_entry(
        self,
        table: str,
        entry_id: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        self.asic.get_table(table).delete_entry(entry_id)
        self._execute(
            "table_delete", table, self.model.table_delete_us, memo, channel
        )

    def set_default(
        self,
        table: str,
        action: str,
        args: Sequence[int] = (),
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        self.asic.get_table(table).set_default(action, args)
        self._execute(
            "table_set_default", table, self.model.table_set_default_us,
            memo, channel,
        )

    # ---- register operations ----------------------------------------------------------

    def read_registers(
        self,
        name: str,
        lo: int = 0,
        hi: Optional[int] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> List[int]:
        """Burst-read entries ``lo..hi`` (inclusive) of one array."""
        memo = self._use_memo(memo, "register", name)
        register = self.asic.get_register(name)
        if hi is None:
            hi = register.instance_count - 1
        values = register.read_range(lo, hi)
        device_cost = self.model.register_read_cost(hi - lo + 1, register.width)
        self._execute("register_read", name, device_cost, memo, channel)
        return values

    def write_register(
        self,
        name: str,
        index: int,
        value: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "register", name)
        self.asic.get_register(name).write(index, value)
        self._execute(
            "register_write", name, self.model.register_write_us, memo, channel
        )

    def read_counter(
        self, name: str, index: int, channel: str = "mantis"
    ) -> int:
        counter = self.asic.get_counter(name)
        value = counter.array.read(index)
        self._execute(
            "counter_read",
            name,
            self.model.register_read_cost(1, 64),
            None,
            channel,
        )
        return value


class _BatchContext:
    """Context manager implementing request batching."""

    def __init__(self, driver: Driver):
        self.driver = driver

    def __enter__(self) -> Driver:
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
        self.driver._batch_depth += 1
        return self.driver

    def __exit__(self, *exc_info) -> None:
        self.driver._batch_depth -= 1
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
