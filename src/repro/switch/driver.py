"""Control-plane driver with a calibrated PCIe latency cost model.

This module substitutes for the paper's modified Barefoot driver.  The
*shape* of its cost model is what Figures 10-12 measure:

- every non-batched operation pays one PCIe round trip;
- software preparation cost drops by ~an order of magnitude for
  *memoized* operations (instruction buffers precomputed in the
  prologue -- the paper's "caching/memoization of device instructions");
- reads of consecutive entries of one register array are DMA-bursts:
  the first word is included in the base cost, each additional byte
  costs only tens of nanoseconds (Figure 10a's register-argument line);
- reads/updates of *distinct* objects each pay their own base cost
  (Figure 10a's field-argument line is linear in packed registers);
- batched operations share a single PCIe round trip.

The driver serializes all operations (the dialogue loop is
single-threaded; legacy clients queue behind at most one in-flight
Mantis operation -- Section 6).  With ``record_timeline=True`` every
operation's ``(start, end, channel)`` interval is logged so the
Figure 12 experiment can measure legacy-update interference.

Failure model: every operation runs through :meth:`Driver._execute`,
which admits the op past an optional fault injector (see
``repro.faults``) *before* touching ASIC state -- an injected failure
therefore never leaves a mutation behind, and the cost model and
device state cannot desync.  An optional :class:`RetryPolicy` retries
:class:`TransientDriverError` with exponential backoff in simulated
microseconds and converts exhausted budgets into
:class:`DriverTimeoutError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DriverError, DriverTimeoutError, TransientDriverError
from repro.switch.asic import SwitchAsic
from repro.switch.tables import KeyPart


@dataclass
class DriverCostModel:
    """Latency parameters, in microseconds of simulated time.

    Defaults are calibrated so that the end-to-end reaction times of
    the paper's use cases land in the reported "10s of us" range; see
    EXPERIMENTS.md for the calibration notes.
    """

    pcie_rtt_us: float = 0.9
    op_prep_us: float = 0.6
    memoized_prep_us: float = 0.08
    table_modify_us: float = 0.5
    table_add_us: float = 1.3
    table_delete_us: float = 0.6
    table_set_default_us: float = 0.5
    table_read_base_us: float = 0.5
    table_read_per_entry_us: float = 0.02
    register_read_base_us: float = 0.5
    register_read_per_byte_us: float = 0.012
    register_write_us: float = 0.4

    def register_read_cost(self, entries: int, width_bits: int) -> float:
        """Device cost of a burst read of ``entries`` consecutive
        entries of one array (excluding PCIe/prep)."""
        total_bytes = entries * ((width_bits + 7) // 8)
        extra_bytes = max(0, total_bytes - 4)
        return self.register_read_base_us + extra_bytes * self.register_read_per_byte_us

    def table_read_cost(self, entries: int) -> float:
        """Device cost of reading back ``entries`` installed entries."""
        return self.table_read_base_us + entries * self.table_read_per_entry_us


@dataclass
class RetryPolicy:
    """Retry semantics for transient control-channel failures.

    ``backoff_base_us * backoff_multiplier ** (attempt - 1)`` (capped
    at ``backoff_max_us``) of simulated time separates attempts; an op
    that would exceed ``deadline_us`` of total elapsed time, or that
    uses up ``max_attempts``, raises :class:`DriverTimeoutError`.
    """

    max_attempts: int = 4
    backoff_base_us: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_max_us: float = 50.0
    deadline_us: Optional[float] = 400.0


@dataclass
class OpRecord:
    """One completed driver operation (for interference analysis).

    ``excl_start_us``/``excl_end_us`` bound the *device-exclusive*
    window -- the ASIC access itself.  Software preparation and the
    PCIe transfer are pipelined per requester and do not block a
    concurrent legacy client; only the device window serializes
    (Section 6's "queue behind at most one set of operations").
    """

    start_us: float
    end_us: float
    kind: str
    target: str
    channel: str
    excl_start_us: float = 0.0
    excl_end_us: float = 0.0


@dataclass
class MemoHandle:
    """Prologue-precomputed instruction buffer for one device object.

    Operations issued with a memo skip most software preparation
    (``memoized_prep_us`` instead of ``op_prep_us``).
    """

    kind: str
    name: str


class Driver:
    """Single serialized access path to the switch ASIC."""

    def __init__(
        self,
        asic: SwitchAsic,
        model: Optional[DriverCostModel] = None,
        record_timeline: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.asic = asic
        self.clock = asic.clock
        self.model = model or DriverCostModel()
        self.record_timeline = record_timeline
        self.retry_policy = retry_policy
        self.timeline: List[OpRecord] = []
        self.ops_issued = 0
        # Ablation knob: when False, every operation pays the full
        # (unmemoized) software preparation cost.
        self.memoization_enabled = True
        self._batch_depth = 0
        self._batch_pcie_paid = False
        self._memos: Dict[Tuple[str, str], MemoHandle] = {}
        # Fault surface: an object with an ``intercept(kind, target,
        # channel, op_index, now)`` method (repro.faults.FaultInjector
        # installs itself here); ``post_op_hooks`` run after every
        # *successful* op (used by invariant checkers).
        self.fault_injector = None
        self.post_op_hooks: List[Callable[[str, str, str], None]] = []
        # Error accounting (surfaced through MantisAgent.health()).
        self.op_attempts = 0
        self.ops_failed = 0
        self.errors_total = 0
        self.retries_total = 0
        self.timeouts_total = 0
        self.op_errors: Dict[str, int] = {}
        self.op_retries: Dict[str, int] = {}
        self.last_error: Optional[str] = None
        self.last_error_us: float = 0.0

    # ---- memoization (prologue) -------------------------------------------

    def memoize(self, kind: str, name: str) -> MemoHandle:
        """Precompute the instruction buffer for one object.

        Costs one op's preparation time (paid in the prologue, where
        latency does not matter) and returns a reusable handle.
        """
        key = (kind, name)
        if key not in self._memos:
            self._check_target(kind, name)
            self.clock.advance(self.model.op_prep_us)
            self._memos[key] = MemoHandle(kind, name)
        return self._memos[key]

    def _check_target(self, kind: str, name: str) -> None:
        if kind == "table":
            self.asic.get_table(name)
        elif kind == "register":
            self.asic.get_register(name)
        elif kind == "counter":
            self.asic.get_counter(name)
        else:
            raise DriverError(f"unknown memo kind {kind!r}")

    # ---- batching -------------------------------------------------------------

    def batch(self) -> "_BatchContext":
        """Group subsequent operations into one PCIe transaction."""
        return _BatchContext(self)

    # ---- cost accounting -------------------------------------------------------

    def _record_error(self, kind: str, message: str) -> None:
        self.ops_failed += 1
        self.errors_total += 1
        self.op_errors[kind] = self.op_errors.get(kind, 0) + 1
        self.last_error = message
        self.last_error_us = self.clock.now

    def _execute(
        self,
        kind: str,
        target: str,
        device_cost: float,
        memo: Optional[MemoHandle],
        channel: str,
        apply: Optional[Callable[[], object]] = None,
    ) -> object:
        """Run one operation: fault admission, then the ASIC mutation
        (``apply``), then cost accounting.

        The mutation runs strictly *after* the fault decision, so an
        injected failure can never leave device state behind, and
        strictly *before* the clock charge, so an ``apply`` that
        raises (e.g. a full table) costs nothing -- device state and
        the cost model stay in lockstep either way.
        """
        policy = self.retry_policy
        deadline = None
        if policy is not None and policy.deadline_us is not None:
            deadline = self.clock.now + policy.deadline_us
        attempt = 0
        while True:
            attempt += 1
            self.op_attempts += 1
            prep = (
                self.model.memoized_prep_us
                if memo is not None and self.memoization_enabled
                else self.model.op_prep_us
            )
            pcie = 0.0
            if self._batch_depth == 0:
                pcie = self.model.pcie_rtt_us
            elif not self._batch_pcie_paid:
                pcie = self.model.pcie_rtt_us
                self._batch_pcie_paid = True
            fault = None
            if self.fault_injector is not None:
                fault = self.fault_injector.intercept(
                    kind, target, channel, self.op_attempts, self.clock.now
                )
            if fault is not None and fault.kind == "transient":
                # The round trip happened but the device rejected the
                # op: pay prep + PCIe, mutate nothing.
                self.clock.advance(prep + pcie)
                message = f"injected transient failure on {kind} {target!r}"
                self._record_error(kind, message)
                error = TransientDriverError(message)
                if policy is None:
                    raise error
                if attempt >= policy.max_attempts:
                    self.timeouts_total += 1
                    raise DriverTimeoutError(
                        f"{kind} {target!r} failed after {attempt} attempts"
                    ) from error
                backoff = min(
                    policy.backoff_base_us
                    * policy.backoff_multiplier ** (attempt - 1),
                    policy.backoff_max_us,
                )
                if deadline is not None and self.clock.now + backoff > deadline:
                    self.timeouts_total += 1
                    raise DriverTimeoutError(
                        f"{kind} {target!r} exceeded its "
                        f"{policy.deadline_us} us deadline"
                    ) from error
                self.clock.advance(backoff)
                self.retries_total += 1
                self.op_retries[kind] = self.op_retries.get(kind, 0) + 1
                continue
            start = self.clock.now
            result = None
            if fault is not None and fault.kind == "drop":
                # Silently lost write: cost is paid, success is
                # reported, nothing lands.  Restricted by the injector
                # to value writes (no result, safe to lose).
                pass
            elif apply is not None:
                result = apply()
            extra = (
                fault.extra_us
                if fault is not None and fault.kind == "latency"
                else 0.0
            )
            self.clock.advance(prep + device_cost + pcie + extra)
            if fault is not None and fault.kind == "corrupt":
                result = fault.corrupt(result)
            self.ops_issued += 1
            if self.record_timeline:
                self.timeline.append(
                    OpRecord(
                        start, self.clock.now, kind, target, channel,
                        excl_start_us=start + prep,
                        excl_end_us=start + prep + device_cost + extra,
                    )
                )
            for hook in self.post_op_hooks:
                hook(kind, target, channel)
            return result

    def _use_memo(
        self, memo: Optional[MemoHandle], kind: str, name: str
    ) -> Optional[MemoHandle]:
        if memo is None:
            return self._memos.get((kind, name))
        if memo.kind != kind or memo.name != name:
            raise DriverError(
                f"memo for {memo.kind}/{memo.name} used on {kind}/{name}"
            )
        return memo

    # ---- table operations ---------------------------------------------------------

    def add_entry(
        self,
        table: str,
        key: Sequence[KeyPart],
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> int:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        return self._execute(
            "table_add", table, self.model.table_add_us, memo, channel,
            apply=lambda: runtime.add_entry(key, action, args, priority),
        )

    def modify_entry(
        self,
        table: str,
        entry_id: int,
        action: Optional[str] = None,
        args: Optional[Sequence[int]] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_modify", table, self.model.table_modify_us, memo, channel,
            apply=lambda: runtime.modify_entry(entry_id, action, args),
        )

    def delete_entry(
        self,
        table: str,
        entry_id: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_delete", table, self.model.table_delete_us, memo, channel,
            apply=lambda: runtime.delete_entry(entry_id),
        )

    def set_default(
        self,
        table: str,
        action: str,
        args: Sequence[int] = (),
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_set_default", table, self.model.table_set_default_us,
            memo, channel,
            apply=lambda: runtime.set_default(action, args),
        )

    # ---- table read-back (crash recovery / commit verification) ------------

    def read_entries(
        self,
        table: str,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> List[Tuple[int, Tuple[KeyPart, ...], str, List[int], int]]:
        """Read back every installed entry of one table as
        ``(entry_id, key, action, args, priority)`` tuples."""
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            return [
                (
                    entry.entry_id,
                    tuple(entry.key),
                    entry.action_name,
                    list(entry.action_args),
                    entry.priority,
                )
                for entry in runtime.entries.values()
            ]

        device_cost = self.model.table_read_cost(len(runtime.entries))
        return self._execute(
            "table_read", table, device_cost, memo, channel, apply=apply
        )

    def read_entry(
        self,
        table: str,
        entry_id: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> Optional[Tuple[int, Tuple[KeyPart, ...], str, List[int], int]]:
        """Read back one installed entry by id (or None if absent).

        The dirty-diff commit path verifies only the entries it wrote;
        this costs a single-entry read instead of a whole-table dump.
        """
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            entry = runtime.entries.get(entry_id)
            if entry is None:
                return None
            return (
                entry.entry_id,
                tuple(entry.key),
                entry.action_name,
                list(entry.action_args),
                entry.priority,
            )

        return self._execute(
            "table_read", table, self.model.table_read_cost(1), memo, channel,
            apply=apply,
        )

    def read_default(
        self,
        table: str,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> Optional[Tuple[str, List[int]]]:
        """Read back a table's default action as ``(action, args)``."""
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            default = runtime.default_action
            return None if default is None else (default[0], list(default[1]))

        return self._execute(
            "table_read", table, self.model.table_read_cost(0), memo, channel,
            apply=apply,
        )

    # ---- register operations ----------------------------------------------------------

    def read_registers(
        self,
        name: str,
        lo: int = 0,
        hi: Optional[int] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> List[int]:
        """Burst-read entries ``lo..hi`` (inclusive) of one array."""
        memo = self._use_memo(memo, "register", name)
        register = self.asic.get_register(name)
        if hi is None:
            hi = register.instance_count - 1
        device_cost = self.model.register_read_cost(hi - lo + 1, register.width)
        return self._execute(
            "register_read", name, device_cost, memo, channel,
            apply=lambda: register.read_range(lo, hi),
        )

    def write_register(
        self,
        name: str,
        index: int,
        value: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> None:
        memo = self._use_memo(memo, "register", name)
        register = self.asic.get_register(name)
        self._execute(
            "register_write", name, self.model.register_write_us, memo, channel,
            apply=lambda: register.write(index, value),
        )

    def read_counter(
        self,
        name: str,
        index: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
    ) -> int:
        memo = self._use_memo(memo, "counter", name)
        counter = self.asic.get_counter(name)
        return self._execute(
            "counter_read",
            name,
            self.model.register_read_cost(1, 64),
            memo,
            channel,
            apply=lambda: counter.array.read(index),
        )


class _BatchContext:
    """Context manager implementing request batching."""

    def __init__(self, driver: Driver):
        self.driver = driver

    def __enter__(self) -> Driver:
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
        self.driver._batch_depth += 1
        return self.driver

    def __exit__(self, *exc_info) -> None:
        self.driver._batch_depth -= 1
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
